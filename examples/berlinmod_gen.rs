//! Generate BerlinMOD-Hanoi datasets and print their Table-2/Table-3
//! statistics, demonstrating the §5 data-generation pipeline.
//!
//! ```sh
//! cargo run --release -p mduck-examples --bin berlinmod_gen [sf ...]
//! ```

use berlinmod::{BerlinModData, RoadNetwork, ScaleFactor};

fn main() {
    let sfs: Vec<f64> = {
        let args: Vec<f64> =
            std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![0.001, 0.002, 0.005, 0.01]
        } else {
            args
        }
    };
    println!("== BerlinMOD-Hanoi generator ==\n");
    let net = RoadNetwork::generate(42);
    println!(
        "road network: {} nodes, {} districts ({} named after Hanoi's urban districts)\n",
        net.num_nodes(),
        net.districts.len(),
        net.districts.iter().map(|d| d.name).collect::<Vec<_>>().join(", "),
    );
    println!(
        "{:>10}  {:>8}  {:>5}  {:>7}  {:>12}  {:>10}",
        "SF", "vehicles", "days", "trips", "trip points", "approx size"
    );
    for sf in sfs {
        let data = BerlinModData::generate(&net, ScaleFactor(sf), 42);
        println!(
            "{:>10}  {:>8}  {:>5}  {:>7}  {:>12}  {:>10}",
            format!("SF-{sf}"),
            data.vehicles.len(),
            ScaleFactor(sf).num_days(),
            data.trips.len(),
            data.total_trip_points(),
            mduck_bench_human(data.approx_size_bytes()),
        );
    }
    println!("\n(vehicles = round(2000·√SF), days = round(28·√SF) + 2 — the Tables 2–3 model)");
}

fn mduck_bench_human(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GB", bytes as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} MB", bytes as f64 / (1u64 << 20) as f64)
    }
}
