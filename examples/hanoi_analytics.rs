//! The §6.2 use-case demonstration: load a BerlinMOD-Hanoi dataset and run
//! the six analytics operations behind Figures 6–11, printing result
//! tables and writing the GeoJSON exports the paper publishes for
//! Kepler.gl.
//!
//! ```sh
//! cargo run --release -p mduck-examples --bin hanoi_analytics [scale_factor]
//! ```

use berlinmod::{usecase_queries, BerlinModData, RoadNetwork, ScaleFactor};
use quackdb::Database;

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0.001);
    println!("== BerlinMOD-Hanoi use case demo (SF-{sf}) ==\n");

    let net = RoadNetwork::generate(42);
    let data = BerlinModData::generate(&net, ScaleFactor(sf), 42);
    println!(
        "generated {} vehicles, {} trips, {} trip points",
        data.vehicles.len(),
        data.trips.len(),
        data.total_trip_points()
    );

    let db = Database::new();
    mobilityduck::load(&db);
    data.load_into_quack(&db).unwrap();
    println!("loaded into quackdb\n");

    for (name, sql) in usecase_queries() {
        println!("---- {name} ----");
        match db.execute(sql) {
            Ok(r) => {
                let preview = 8.min(r.rows.len());
                for row in &r.rows[..preview] {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|v| {
                            let s = v.to_string();
                            if s.len() > 60 {
                                format!("{}…", &s[..59])
                            } else {
                                s
                            }
                        })
                        .collect();
                    println!("  {}", cells.join(" | "));
                }
                if r.rows.len() > preview {
                    println!("  … {} more rows", r.rows.len() - preview);
                }
            }
            Err(e) => println!("  error: {e}"),
        }
        println!();
    }

    // GeoJSON exports (the paper's Kepler.gl inputs, §5.2).
    let out_dir = std::path::Path::new("target/hanoi_geojson");
    std::fs::create_dir_all(out_dir).unwrap();
    std::fs::write(
        out_dir.join("trips.geojson"),
        berlinmod::geojson::trips_geojson(&data, 200),
    )
    .unwrap();
    std::fs::write(
        out_dir.join("districts.geojson"),
        berlinmod::geojson::districts_geojson(&data),
    )
    .unwrap();
    println!("wrote GeoJSON exports to {}", out_dir.display());
}
