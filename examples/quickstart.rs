//! Quickstart: open an in-process database, load the MobilityDuck
//! extension, and run the paper's §3.5 sample queries.
//!
//! ```sh
//! cargo run -p mduck-examples --bin quickstart
//! ```

use quackdb::Database;

fn show(db: &Database, sql: &str) {
    println!("> {sql}");
    match db.execute(sql) {
        Ok(r) => {
            for row in &r.rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
        }
        Err(e) => println!("  error: {e}"),
    }
    println!();
}

fn main() {
    // A database is just a value — no server, no files (§2.4's
    // embeddability).
    let db = Database::new();
    mobilityduck::load(&db);

    println!("== MobilityDuck quickstart ==\n");

    // The §3.5 sample queries.
    show(&db, "SELECT duration('{1@2025-01-01, 2@2025-01-02, 1@2025-01-03}'::TINT, true)");
    show(
        &db,
        "SELECT shiftScale(tstzset '{2025-01-01, 2025-01-02, 2025-01-03}', \
         interval '1 day', interval '1 hour')",
    );
    show(
        &db,
        "SELECT asEWKT(transform(geomset 'SRID=4326;{Point(2.340088 49.400250), \
         Point(6.575317 51.553167)}', 3812), 6)",
    );
    show(
        &db,
        "SELECT expandSpace(stbox 'STBOX XT(((1.0,2.0),(1.0,2.0)),[2025-01-01,2025-01-01])', 2.0)",
    );
    show(
        &db,
        "SELECT expandTime(tbox 'TBOXFLOAT XT([1.0,2.0],[2025-01-01,2025-01-02])', interval '1 day')",
    );
    show(
        &db,
        "SELECT asEWKT(tgeometry('Point(1 1)', tstzspan '[2025-01-01, 2025-01-02]', 'step'))",
    );
    show(
        &db,
        "SELECT tgeompoint '{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, \
         Point(1 1)@2025-01-03], [Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}' \
         && stbox 'STBOX X((10.0,20.0),(10.0,20.0))'",
    );
    show(
        &db,
        "SELECT asText(atTime(tgeompoint '{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, \
         Point(1 1)@2025-01-03],[Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}', \
         tstzspan '[2025-01-01,2025-01-02]'))",
    );

    // Temporal tables: store trips, ask spatiotemporal questions.
    println!("== a tiny trips table ==\n");
    db.execute("CREATE TABLE trips(vehicle VARCHAR, trip TGEOMPOINT)").unwrap();
    db.execute(
        "INSERT INTO trips VALUES \
         ('29A-123', '[Point(0 0)@2025-01-01 08:00:00, Point(4000 0)@2025-01-01 08:30:00]'::tgeompoint), \
         ('30F-456', '[Point(0 500)@2025-01-01 08:00:00, Point(4000 500)@2025-01-01 08:20:00]'::tgeompoint), \
         ('29A-789', '[Point(9000 9000)@2025-01-01 09:00:00, Point(9500 9500)@2025-01-01 09:10:00]'::tgeompoint)",
    )
    .unwrap();
    show(&db, "SELECT vehicle, length(trip) AS meters, duration(trip, true) FROM trips ORDER BY vehicle");
    show(
        &db,
        "SELECT t1.vehicle, t2.vehicle, eDwithin(t1.trip, t2.trip, 600.0) AS ever_close \
         FROM trips t1, trips t2 WHERE t1.vehicle < t2.vehicle ORDER BY 1, 2",
    );
    show(
        &db,
        "SELECT vehicle, ST_AsText(valueAtTimestamp(trip, timestamptz '2025-01-01 08:15:00')) AS at_815 \
         FROM trips WHERE trip::tstzspan @> timestamptz '2025-01-01 08:15:00' ORDER BY vehicle",
    );

    // Observability: profile a spatiotemporal range query, then read the
    // engine's own counters back through SQL.
    println!("== EXPLAIN ANALYZE + PRAGMA metrics ==\n");
    show(
        &db,
        "EXPLAIN ANALYZE SELECT vehicle FROM trips \
         WHERE trip && stbox 'STBOX X((0.0,0.0),(5000.0,1000.0))' ORDER BY vehicle",
    );
    show(
        &db,
        "PRAGMA metrics",
    );
    show(&db, "SELECT name, depth, duration_us FROM mduck_spans() WHERE depth = 1 ORDER BY span_id");
}
