//! The §4.4 indexing walk-through: create a table, create a TRTREE index,
//! insert synthetic data (index-first path), query with `&&`, and show the
//! Figure-1 execution plan; then compare against a sequential scan and the
//! geometry-RTREE variant (the Figure-2 setup at one scale).
//!
//! ```sh
//! cargo run --release -p mduck-examples --bin index_demo [rows]
//! ```

use std::time::Instant;

use quackdb::Database;

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);

    println!("== §4.4 indexing example ({rows} rows) ==\n");
    let db = Database::new();
    mobilityduck::load(&db);
    db.execute("CREATE TABLE test_geo(\"times\" timestamptz, \"box\" stbox)").unwrap();
    db.execute("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)").unwrap();
    let t = Instant::now();
    db.execute(&format!(
        "INSERT INTO test_geo \
         SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')) AS times, \
                ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) || \
                '),(' || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) || \
                '))')::stbox \
         FROM generate_series(1, {rows}) AS t(i)"
    ))
    .unwrap();
    println!("inserted {rows} rows through the index-first Append path in {:.2?}\n", t.elapsed());

    let lo = rows as f64 * 0.9;
    let hi = rows as f64 * 0.9 + 100.0;
    let query =
        format!("SELECT * FROM test_geo WHERE box && STBOX('STBOX X(({lo},{lo}),({hi},{hi}))')");

    println!("{query};\n");
    let plan = db.execute(&format!("EXPLAIN {query}")).unwrap();
    println!("{}", plan.rows[0][0]);

    let t = Instant::now();
    let r = db.execute(&query).unwrap();
    let with_index = t.elapsed();
    println!("index scan:      {:>10.2?}  ({} rows)", with_index, r.rows.len());

    // Sequential scan: same data, no index.
    let plain = Database::new();
    mobilityduck::load(&plain);
    plain.execute("CREATE TABLE test_geo(times timestamptz, box stbox)").unwrap();
    plain
        .execute(&format!(
            "INSERT INTO test_geo \
             SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')), \
                    ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) || \
                    '),(' || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) || \
                    '))')::stbox \
             FROM generate_series(1, {rows}) AS t(i)"
        ))
        .unwrap();
    let t = Instant::now();
    let r2 = plain.execute(&query).unwrap();
    let seq = t.elapsed();
    println!("sequential scan: {:>10.2?}  ({} rows)", seq, r2.rows.len());
    assert_eq!(r.rows.len(), r2.rows.len(), "index and seq scan must agree");
    println!(
        "\nspeedup: {:.0}× (Figure 2's gap at this scale)",
        seq.as_secs_f64() / with_index.as_secs_f64().max(1e-9)
    );
}
