pub fn nothing() {}
