//! Shared helpers for the integration and fuzz test suites.

pub mod fuzz {
    //! Deterministic fuzzing support: a regression corpus on disk plus a
    //! no-panic runner.
    //!
    //! Every fuzz target follows the same protocol:
    //!   1. replay every input in `tests/corpus/<surface>/` (regressions),
    //!   2. generate ≥ 1000 fresh inputs from a fixed PRNG seed,
    //!   3. feed each through [`check_no_panic`] — a panic (or an
    //!      `Internal` error from an engine backstop) records the input as
    //!      a crasher file and fails the test.
    //!
    //! Because the PRNG is seeded, a failure reproduces exactly; because
    //! crashers are persisted, fixed bugs stay fixed.

    use std::fs;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    /// The on-disk regression corpus for one fuzz surface.
    pub fn corpus_dir(surface: &str) -> PathBuf {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")).join(surface)
    }

    /// Run `f` over every previously recorded crasher for `surface`.
    pub fn replay_corpus(surface: &str, mut f: impl FnMut(&[u8])) -> usize {
        let dir = corpus_dir(surface);
        let Ok(entries) = fs::read_dir(&dir) else {
            return 0;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_none_or(|x| x != "md"))
            .collect();
        paths.sort();
        let n = paths.len();
        for p in paths {
            let data = fs::read(&p).unwrap_or_default();
            f(&data);
        }
        n
    }

    /// Persist a crashing input so it becomes a regression test.
    pub fn record_crasher(surface: &str, data: &[u8], label: &str) -> PathBuf {
        let dir = corpus_dir(surface);
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("crash-{label}"));
        let _ = fs::write(&path, data);
        path
    }

    /// Run one fuzz case. `f` must return without panicking; a panic is
    /// recorded to the corpus and converted into a test failure that
    /// names the reproducer file.
    pub fn check_no_panic(surface: &str, label: &str, data: &[u8], f: impl FnOnce()) {
        if catch_unwind(AssertUnwindSafe(f)).is_err() {
            let path = record_crasher(surface, data, label);
            panic!(
                "fuzz target {surface} panicked on input {label}; reproducer saved to {}",
                path.display()
            );
        }
    }

    /// Byte-level mutation of a seed input: flips, splices, truncations,
    /// duplications. Output is arbitrary bytes; callers wanting text run
    /// it through `String::from_utf8_lossy`.
    pub fn mutate(rng: &mut mduck_prng::StdRng, seed: &[u8]) -> Vec<u8> {
        use mduck_prng::RngExt;
        let mut out = seed.to_vec();
        let rounds = rng.random_range(1..5usize);
        for _ in 0..rounds {
            if out.is_empty() {
                out.push(rng.random_range(0..=255u8));
                continue;
            }
            match rng.random_range(0..6u32) {
                // Flip one bit.
                0 => {
                    let i = rng.random_range(0..out.len());
                    out[i] ^= 1 << rng.random_range(0..8u32);
                }
                // Overwrite with a random byte (biased toward syntax).
                1 => {
                    let i = rng.random_range(0..out.len());
                    out[i] = if rng.random_bool(0.7) {
                        *rng.choose(b"()[]{},;:'\"@.-+eE0123456789 ").unwrap_or(&b'!')
                    } else {
                        rng.random_range(0..=255u8)
                    };
                }
                // Truncate.
                2 => {
                    let i = rng.random_range(0..out.len());
                    out.truncate(i);
                }
                // Duplicate a short slice somewhere else.
                3 => {
                    let a = rng.random_range(0..out.len());
                    let b = (a + rng.random_range(1..16usize)).min(out.len());
                    let slice = out[a..b].to_vec();
                    let at = rng.random_range(0..=out.len());
                    for (k, byte) in slice.into_iter().enumerate() {
                        out.insert(at + k, byte);
                    }
                }
                // Delete a slice.
                4 => {
                    let a = rng.random_range(0..out.len());
                    let b = (a + rng.random_range(1..8usize)).min(out.len());
                    out.drain(a..b);
                }
                // Insert random bytes.
                _ => {
                    let at = rng.random_range(0..=out.len());
                    for k in 0..rng.random_range(1..4usize) {
                        out.insert(at + k, rng.random_range(0..=255u8));
                    }
                }
            }
            if out.len() > 4096 {
                out.truncate(4096);
            }
        }
        out
    }
}
