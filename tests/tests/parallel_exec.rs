//! Morsel-driven parallel execution.
//!
//! The contract under test: with `PRAGMA threads = N` (N > 1) the
//! vectorized engine must produce results **byte-identical** to its own
//! serial execution — same rows, same order, same values — across the
//! full BerlinMOD workload, while the shared [`quackdb::ExecGuard`]
//! keeps budgets, deadlines, and cancellation global to the statement no
//! matter how many workers are in flight.

use std::time::Duration;

use berlinmod::{benchmark_queries, BerlinModData, RoadNetwork, ScaleFactor};
use mduck_rowdb::RowDatabase;
use mduck_sql::{SqlError, Value};
use quackdb::{Database, ExecGuard, ExecLimits};

const PARALLEL_THREADS: usize = 4;

fn berlinmod_envs() -> (Database, RowDatabase) {
    let net = RoadNetwork::generate(42);
    let data = BerlinModData::generate(&net, ScaleFactor(0.001), 42);
    let vdb = Database::new();
    mobilityduck::load(&vdb);
    data.load_into_quack(&vdb).expect("load quackdb");
    let rdb = RowDatabase::new();
    mobilityduck::load_row(&rdb);
    data.load_into_row(&rdb, false).expect("load rowdb");
    (vdb, rdb)
}

fn string_rows(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

/// All 17 BerlinMOD queries at SF-0.001, three ways: parallel vecdb,
/// serial vecdb, and the row engine. Parallel must equal serial exactly
/// (value-for-value, in order); both must match the row engine's result
/// set.
#[test]
fn berlinmod_parallel_is_byte_identical_to_serial() {
    let (vdb, rdb) = berlinmod_envs();
    for (id, _question, sql) in benchmark_queries() {
        vdb.set_threads(1);
        let serial = vdb
            .execute(sql)
            .unwrap_or_else(|e| panic!("Q{id} serial: {e}\n{sql}"));
        vdb.set_threads(PARALLEL_THREADS);
        let parallel = vdb
            .execute(sql)
            .unwrap_or_else(|e| panic!("Q{id} parallel: {e}\n{sql}"));
        assert_eq!(
            serial.rows, parallel.rows,
            "Q{id}: parallel result differs from serial\n{sql}"
        );
        // Cross-engine: same result *set* (ties within ORDER BY keys may
        // legitimately order differently between engines).
        let rows_r = rdb
            .execute(sql)
            .unwrap_or_else(|e| panic!("Q{id} rowdb: {e}\n{sql}"));
        let mut a = string_rows(&parallel.rows);
        let mut b = string_rows(&rows_r.rows);
        a.sort();
        b.sort();
        assert_eq!(a, b, "Q{id}: vecdb and rowdb disagree\n{sql}");
    }
}

/// A multi-chunk scan + filter + aggregate actually fans out (visible in
/// the global morsel counters) and still matches the serial answer.
#[test]
fn parallel_stages_run_and_match() {
    let db = Database::new();
    db.execute("CREATE TABLE big(a INTEGER)").unwrap();
    db.execute("INSERT INTO big SELECT * FROM generate_series(1, 100000)").unwrap();
    let sql = "SELECT a % 7 AS k, count(*), min(a), max(a) FROM big \
               WHERE a % 3 <> 0 GROUP BY a % 7 ORDER BY k";
    db.set_threads(1);
    let serial = db.execute(sql).unwrap();
    let before = mduck_obs::metrics().parallel_stages.get();
    db.set_threads(PARALLEL_THREADS);
    let parallel = db.execute(sql).unwrap();
    assert_eq!(serial.rows, parallel.rows);
    assert!(
        mduck_obs::metrics().parallel_stages.get() > before,
        "expected at least one stage to fan out to the worker pool"
    );
}

/// Aggregates that cannot merge exactly (float sum/avg) take the hybrid
/// path; DISTINCT aggregates must not double-count across workers.
#[test]
fn inexact_and_distinct_aggregates_match_serial() {
    let db = Database::new();
    db.execute("CREATE TABLE m(g INTEGER, x DOUBLE)").unwrap();
    db.execute(
        "INSERT INTO m SELECT a % 5, 0.1 * (a % 97) FROM generate_series(1, 50000) s(a)",
    )
    .unwrap();
    for sql in [
        // Float sums are order-sensitive: byte-identity requires the
        // serial fold order, which the hybrid path preserves.
        "SELECT g, sum(x), avg(x) FROM m GROUP BY g ORDER BY g",
        "SELECT g, count(DISTINCT x) FROM m GROUP BY g ORDER BY g",
        "SELECT sum(x) FROM m",
    ] {
        db.set_threads(1);
        let serial = db.execute(sql).unwrap();
        db.set_threads(PARALLEL_THREADS);
        let parallel = db.execute(sql).unwrap();
        assert_eq!(serial.rows, parallel.rows, "parallel differs on {sql}");
    }
}

/// The row budget is one shared atomic: workers charging chunks in
/// parallel must trip it and surface `ResourceExhausted`, leaving the
/// database usable.
#[test]
fn row_budget_trips_with_workers_in_flight() {
    let db = Database::new();
    db.execute("CREATE TABLE big(a INTEGER)").unwrap();
    db.execute("INSERT INTO big SELECT * FROM generate_series(1, 200000)").unwrap();
    db.set_threads(PARALLEL_THREADS);
    // The scan charges 200k up front; the budget leaves headroom so the
    // trip happens inside the parallel aggregate/projection workers.
    db.set_exec_limits(ExecLimits::default().with_row_budget(250_000));
    match db.execute("SELECT a % 11 AS k, count(*) FROM big GROUP BY a % 11") {
        Err(SqlError::ResourceExhausted(_)) => {}
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    db.set_exec_limits(ExecLimits::default());
    let r = db.execute("SELECT count(*) FROM big").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "200000");
}

/// Cancellation from another thread reaches in-flight workers: every
/// worker polls the shared guard at chunk boundaries, the queue stops,
/// and the pool drains into an error instead of completing.
#[test]
fn cancellation_stops_parallel_workers() {
    let db = Database::new();
    db.execute("CREATE TABLE big(a INTEGER)").unwrap();
    db.execute("INSERT INTO big SELECT * FROM generate_series(1, 500000)").unwrap();
    db.set_threads(PARALLEL_THREADS);
    let guard = ExecGuard::new(&ExecLimits::default());
    let handle = guard.cancel_handle();
    handle.cancel();
    let r = db.execute_with_guard(
        "SELECT a % 13 AS k, count(*), min(a) FROM big GROUP BY a % 13",
        &guard,
    );
    match r {
        Err(SqlError::ResourceExhausted(m)) => {
            assert!(m.contains("canceled"), "unexpected message: {m}")
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
}

/// A wall-clock deadline fires while workers are mid-scan: the guard's
/// tick stride is polled from every worker loop.
#[test]
fn timeout_trips_parallel_scan() {
    let db = Database::new();
    db.execute("CREATE TABLE big(a INTEGER)").unwrap();
    db.execute("INSERT INTO big SELECT * FROM generate_series(1, 500000)").unwrap();
    db.set_threads(PARALLEL_THREADS);
    db.set_exec_limits(ExecLimits::default().with_timeout(Duration::from_millis(0)));
    std::thread::sleep(Duration::from_millis(2));
    match db.execute("SELECT count(*) FROM big b1, big b2 WHERE b1.a = b2.a") {
        Err(SqlError::ResourceExhausted(_)) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
}

/// `PRAGMA threads` plumbing: set, read back, validate, and the
/// config-knob equivalence on both engines.
#[test]
fn pragma_threads_roundtrip() {
    let db = Database::new();
    // Setting a value echoes the new effective count.
    let r = db.execute("PRAGMA threads = 4").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "4");
    assert_eq!(db.threads(), 4);
    // Reading without a value reports the effective count.
    let r = db.execute("PRAGMA threads").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "4");
    // The config knob is the same setting.
    db.set_threads(2);
    let r = db.execute("PRAGMA threads").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "2");
    // 0 restores auto-detection (>= 1 whatever the host).
    db.execute("PRAGMA threads = 0").unwrap();
    assert_eq!(db.threads(), 0);
    assert!(db.effective_threads() >= 1);
    // Out-of-range values are rejected.
    assert!(matches!(
        db.execute("PRAGMA threads = -1"),
        Err(SqlError::OutOfRange(_))
    ));
    assert!(matches!(
        db.execute("PRAGMA threads = 100000"),
        Err(SqlError::OutOfRange(_))
    ));

    // The row engine accepts the pragma for compatibility but stays
    // single-threaded by design.
    let rdb = RowDatabase::new();
    let r = rdb.execute("PRAGMA threads = 8").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1");
    assert!(rdb.execute("PRAGMA threads = -1").is_err());
}

// ------------------------------------------------------- ORDER BY fixes

/// Regression: comparing incomparable non-null values in ORDER BY used to
/// silently treat them as equal (nondeterministic output order). Both
/// engines must now fail with the same typed error.
#[test]
fn order_by_incomparable_values_error_identically() {
    let vdb = Database::new();
    let rdb = RowDatabase::new();
    let setup = "
        CREATE TABLE t(g INTEGER, x INTEGER);
        INSERT INTO t VALUES (1, 10), (1, 20), (2, 30), (2, 40);
    ";
    vdb.execute_script(setup).unwrap();
    rdb.execute_script(setup).unwrap();
    // LIST values have no defined order: sorting by one must be a type
    // error, not a silent no-op.
    let sql = "SELECT g, list(x) AS xs FROM t GROUP BY g ORDER BY xs";
    let ev = vdb.execute(sql).unwrap_err();
    let er = rdb.execute(sql).unwrap_err();
    assert!(matches!(ev, SqlError::Type(_)), "vecdb: {ev}");
    assert!(matches!(er, SqlError::Type(_)), "rowdb: {er}");
    assert_eq!(ev.to_string(), er.to_string(), "engines disagree on the error");
    assert!(
        ev.to_string().contains("ORDER BY cannot compare"),
        "unexpected message: {ev}"
    );
}

/// NULL ordering stays the standard one (NULLS LAST ascending, NULLS
/// FIRST descending) and identical across engines.
#[test]
fn order_by_null_placement_agrees() {
    let vdb = Database::new();
    let rdb = RowDatabase::new();
    let setup = "
        CREATE TABLE t(a INTEGER, b VARCHAR);
        INSERT INTO t VALUES (3, 'c'), (NULL, 'n1'), (1, 'a'), (NULL, 'n2'), (2, 'b');
    ";
    vdb.execute_script(setup).unwrap();
    rdb.execute_script(setup).unwrap();
    for sql in [
        "SELECT a, b FROM t ORDER BY a, b",
        "SELECT a, b FROM t ORDER BY a DESC, b",
    ] {
        let a = string_rows(&vdb.execute(sql).unwrap().rows);
        let b = string_rows(&rdb.execute(sql).unwrap().rows);
        assert_eq!(a, b, "engines disagree on {sql}");
    }
    let asc = vdb.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(asc.rows.last().unwrap()[0], Value::Null, "NULLS LAST when ascending");
    let desc = vdb.execute("SELECT a FROM t ORDER BY a DESC").unwrap();
    assert_eq!(desc.rows[0][0], Value::Null, "NULLS FIRST when descending");
}

/// Regression: ORDER BY used to clone every output row while building its
/// sort keys. The permutation is now applied by moving rows. The stage
/// timing hook is the observable: a 100k-row sort must report its actuals
/// through `ProfiledQuery::stages` and stay in the same ballpark as the
/// projection that produced the rows.
#[test]
fn order_by_stage_actuals_on_100k_sort() {
    let db = Database::new();
    db.execute("CREATE TABLE s(a INTEGER, b VARCHAR)").unwrap();
    db.execute(
        "INSERT INTO s SELECT x, 'row-' || ((x * 7919) % 100000) \
         FROM generate_series(1, 100000) g(x)",
    )
    .unwrap();
    let profiled = db
        .execute_analyzed("SELECT a, b FROM s ORDER BY b, a")
        .unwrap();
    assert_eq!(profiled.result.rows.len(), 100_000);
    let order_by = profiled
        .stages
        .iter()
        .find(|s| s.stage == "order_by")
        .expect("order_by stage actuals missing");
    assert_eq!(order_by.rows_out, 100_000);
    assert!(order_by.elapsed_ms > 0.0);
    // Sorting 100k pre-built rows moves pointers, not payloads: it must
    // not dominate end-to-end time by an order of magnitude.
    assert!(
        order_by.elapsed_ms < profiled.total_ms,
        "order_by {:.3} ms exceeds total {:.3} ms",
        order_by.elapsed_ms,
        profiled.total_ms
    );
}
