//! Property tests over the geometry kernel: WKT/WKB/native encodings
//! round-trip arbitrary geometries; predicates behave consistently.
//! Driven by the in-repo deterministic PRNG.

use mduck_geo::algorithms::{distance, intersects};
use mduck_geo::point::Point;
use mduck_geo::{gserialized, wkb, wkt, Geometry};
use mduck_prng::{RngExt, SeedableRng, StdRng};

const CASES: usize = 256;

fn gen_point(rng: &mut StdRng) -> Point {
    Point::new(rng.random_range(-1e6..1e6f64), rng.random_range(-1e6..1e6f64))
}

fn gen_geometry(rng: &mut StdRng) -> Geometry {
    match rng.random_range(0u32..4) {
        0 => Geometry::from_point(gen_point(rng)),
        1 => {
            let n = rng.random_range(2usize..12);
            let ps: Vec<Point> = (0..n).map(|_| gen_point(rng)).collect();
            Geometry::linestring(ps).unwrap()
        }
        2 => {
            let n = rng.random_range(1usize..8);
            Geometry::multipoint((0..n).map(|_| gen_point(rng)).collect())
        }
        _ => {
            // Axis-aligned rectangles (always valid rings).
            let p = gen_point(rng);
            let w = rng.random_range(1.0..1e4f64);
            let h = rng.random_range(1.0..1e4f64);
            Geometry::polygon(vec![vec![
                p,
                Point::new(p.x + w, p.y),
                Point::new(p.x + w, p.y + h),
                Point::new(p.x, p.y + h),
                p,
            ]])
            .unwrap()
        }
    }
}

#[test]
fn wkb_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x9e0_0001);
    for _ in 0..CASES {
        let srid = rng.random_range(0i32..10_000);
        let g = gen_geometry(&mut rng).with_srid(srid);
        let back = wkb::from_wkb(&wkb::to_wkb(&g)).unwrap();
        assert_eq!(&g, &back);
    }
}

#[test]
fn native_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x9e0_0002);
    for _ in 0..CASES {
        let srid = rng.random_range(0i32..10_000);
        let g = gen_geometry(&mut rng).with_srid(srid);
        let bytes = gserialized::to_native(&g);
        let back = gserialized::from_native(&bytes).unwrap();
        assert_eq!(&g, &back);
        // The cached bbox header agrees with the computed one.
        let (s, rect) = gserialized::peek_bbox(&bytes).unwrap();
        assert_eq!(s, srid);
        assert_eq!(Some(rect), g.bounding_rect());
    }
}

#[test]
fn wkt_roundtrip_preserves_structure() {
    let mut rng = StdRng::seed_from_u64(0x9e0_0003);
    for _ in 0..CASES {
        let g = gen_geometry(&mut rng);
        let text = wkt::to_wkt(&g, None);
        let back = wkt::parse_wkt(&text).unwrap();
        // Re-printing the parse is a fixpoint.
        assert_eq!(wkt::to_wkt(&back, None), text);
        assert_eq!(back.num_points(), g.num_points());
    }
}

#[test]
fn distance_is_symmetric_and_consistent_with_intersects() {
    let mut rng = StdRng::seed_from_u64(0x9e0_0004);
    for _ in 0..CASES {
        let a = gen_geometry(&mut rng);
        let b = gen_geometry(&mut rng);
        let dab = distance(&a, &b);
        let dba = distance(&b, &a);
        assert!((dab - dba).abs() <= 1e-9 * dab.abs().max(1.0), "{dab} vs {dba}");
        assert!(dab >= 0.0);
        if intersects(&a, &b) {
            assert!(dab <= 1e-9);
        } else {
            assert!(dab > 0.0);
        }
    }
}

#[test]
fn distance_to_self_is_zero() {
    let mut rng = StdRng::seed_from_u64(0x9e0_0005);
    for _ in 0..CASES {
        let a = gen_geometry(&mut rng);
        assert!(distance(&a, &a) <= 1e-9);
        assert!(intersects(&a, &a));
    }
}

#[test]
fn transform_roundtrip_mercator() {
    let mut rng = StdRng::seed_from_u64(0x9e0_0006);
    for _ in 0..CASES {
        let p = gen_point(&mut rng);
        // Stay in sane lat/lon bounds.
        let lon = (p.x / 1e6) * 179.0;
        let lat = (p.y / 1e6) * 80.0;
        let g = Geometry::point(lon, lat).with_srid(4326);
        let there = mduck_geo::transform::transform(&g, 3857).unwrap();
        let back = mduck_geo::transform::transform(&there, 4326).unwrap();
        let q = back.as_point().unwrap();
        assert!(q.close_to(&Point::new(lon, lat), 1e-6), "{q}");
    }
}
