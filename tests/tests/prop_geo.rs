//! Property tests over the geometry kernel: WKT/WKB/native encodings
//! round-trip arbitrary geometries; predicates behave consistently.

use mduck_geo::algorithms::{distance, intersects};
use mduck_geo::point::Point;
use mduck_geo::{gserialized, wkb, wkt, Geometry};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    ((-1e6..1e6f64), (-1e6..1e6f64)).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        arb_point().prop_map(Geometry::from_point),
        proptest::collection::vec(arb_point(), 2..12)
            .prop_map(|ps| Geometry::linestring(ps).unwrap()),
        proptest::collection::vec(arb_point(), 1..8).prop_map(Geometry::multipoint),
        // Axis-aligned rectangles (always valid rings).
        (arb_point(), 1.0..1e4f64, 1.0..1e4f64).prop_map(|(p, w, h)| {
            Geometry::polygon(vec![vec![
                p,
                Point::new(p.x + w, p.y),
                Point::new(p.x + w, p.y + h),
                Point::new(p.x, p.y + h),
                p,
            ]])
            .unwrap()
        }),
    ]
}

proptest! {
    #[test]
    fn wkb_roundtrip(g in arb_geometry(), srid in 0i32..10_000) {
        let g = g.with_srid(srid);
        let back = wkb::from_wkb(&wkb::to_wkb(&g)).unwrap();
        prop_assert_eq!(&g, &back);
    }

    #[test]
    fn native_roundtrip(g in arb_geometry(), srid in 0i32..10_000) {
        let g = g.with_srid(srid);
        let bytes = gserialized::to_native(&g);
        let back = gserialized::from_native(&bytes).unwrap();
        prop_assert_eq!(&g, &back);
        // The cached bbox header agrees with the computed one.
        let (s, rect) = gserialized::peek_bbox(&bytes).unwrap();
        prop_assert_eq!(s, srid);
        prop_assert_eq!(Some(rect), g.bounding_rect());
    }

    #[test]
    fn wkt_roundtrip_preserves_structure(g in arb_geometry()) {
        let text = wkt::to_wkt(&g, None);
        let back = wkt::parse_wkt(&text).unwrap();
        // Re-printing the parse is a fixpoint.
        prop_assert_eq!(wkt::to_wkt(&back, None), text);
        prop_assert_eq!(back.num_points(), g.num_points());
    }

    #[test]
    fn distance_is_symmetric_and_consistent_with_intersects(a in arb_geometry(), b in arb_geometry()) {
        let dab = distance(&a, &b);
        let dba = distance(&b, &a);
        prop_assert!((dab - dba).abs() <= 1e-9 * dab.abs().max(1.0), "{dab} vs {dba}");
        prop_assert!(dab >= 0.0);
        if intersects(&a, &b) {
            prop_assert!(dab <= 1e-9);
        } else {
            prop_assert!(dab > 0.0);
        }
    }

    #[test]
    fn distance_to_self_is_zero(a in arb_geometry()) {
        prop_assert!(distance(&a, &a) <= 1e-9);
        prop_assert!(intersects(&a, &a));
    }

    #[test]
    fn transform_roundtrip_mercator(p in arb_point()) {
        // Stay in sane lat/lon bounds.
        let lon = (p.x / 1e6) * 179.0;
        let lat = (p.y / 1e6) * 80.0;
        let g = Geometry::point(lon, lat).with_srid(4326);
        let there = mduck_geo::transform::transform(&g, 3857).unwrap();
        let back = mduck_geo::transform::transform(&there, 4326).unwrap();
        let q = back.as_point().unwrap();
        prop_assert!(q.close_to(&Point::new(lon, lat), 1e-6), "{q}");
    }
}
