//! Property tests: the R-tree answers exactly like a brute-force scan,
//! under bulk load, incremental insertion, and removal.

use mduck_rtree::{RTree, Rect3};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect3> {
    (
        -1000.0..1000.0f64,
        -1000.0..1000.0f64,
        0.0..1000.0f64,
        0.0..50.0f64,
        0.0..50.0f64,
        0.0..50.0f64,
    )
        .prop_map(|(x, y, t, w, h, d)| Rect3::new([x, y, t], [x + w, y + h, t + d]))
}

fn brute(items: &[(Rect3, u64)], q: &Rect3) -> Vec<u64> {
    let mut out: Vec<u64> = items
        .iter()
        .filter(|(r, _)| r.intersects(q))
        .map(|(_, id)| *id)
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #[test]
    fn bulk_load_matches_brute_force(
        rects in proptest::collection::vec(arb_rect(), 0..300),
        queries in proptest::collection::vec(arb_rect(), 1..10),
    ) {
        let items: Vec<(Rect3, u64)> =
            rects.into_iter().enumerate().map(|(i, r)| (r, i as u64)).collect();
        let tree = RTree::bulk_load(items.clone());
        tree.check_invariants();
        for q in &queries {
            let mut got = tree.search(q);
            got.sort_unstable();
            prop_assert_eq!(got, brute(&items, q));
        }
    }

    #[test]
    fn incremental_matches_brute_force(
        rects in proptest::collection::vec(arb_rect(), 1..200),
        q in arb_rect(),
    ) {
        let items: Vec<(Rect3, u64)> =
            rects.into_iter().enumerate().map(|(i, r)| (r, i as u64)).collect();
        let mut tree = RTree::new();
        for (r, id) in &items {
            tree.insert(*r, *id);
        }
        tree.check_invariants();
        let mut got = tree.search(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute(&items, &q));
    }

    #[test]
    fn removal_hides_entries(
        rects in proptest::collection::vec(arb_rect(), 2..100),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 1..20),
    ) {
        let items: Vec<(Rect3, u64)> =
            rects.into_iter().enumerate().map(|(i, r)| (r, i as u64)).collect();
        let mut tree = RTree::new();
        for (r, id) in &items {
            tree.insert(*r, *id);
        }
        let mut removed = std::collections::HashSet::new();
        for idx in removals {
            let (r, id) = items[idx.index(items.len())];
            if removed.insert(id) {
                prop_assert!(tree.remove(&r, id));
            }
        }
        let everything = Rect3::new([-2000.0, -2000.0, -1.0], [2000.0, 2000.0, 2000.0]);
        let got = tree.search(&everything);
        prop_assert_eq!(got.len(), items.len() - removed.len());
        for id in got {
            prop_assert!(!removed.contains(&id));
        }
    }
}
