//! Property tests: the R-tree answers exactly like a brute-force scan,
//! under bulk load, incremental insertion, and removal. Driven by the
//! in-repo deterministic PRNG.

use mduck_prng::{RngExt, SeedableRng, StdRng};
use mduck_rtree::{RTree, Rect3};

fn gen_rect(rng: &mut StdRng) -> Rect3 {
    let x = rng.random_range(-1000.0..1000.0f64);
    let y = rng.random_range(-1000.0..1000.0f64);
    let t = rng.random_range(0.0..1000.0f64);
    let w = rng.random_range(0.0..50.0f64);
    let h = rng.random_range(0.0..50.0f64);
    let d = rng.random_range(0.0..50.0f64);
    Rect3::new([x, y, t], [x + w, y + h, t + d])
}

fn brute(items: &[(Rect3, u64)], q: &Rect3) -> Vec<u64> {
    let mut out: Vec<u64> = items
        .iter()
        .filter(|(r, _)| r.intersects(q))
        .map(|(_, id)| *id)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn bulk_load_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x87ee_0001);
    for _ in 0..128 {
        let n = rng.random_range(0usize..300);
        let items: Vec<(Rect3, u64)> =
            (0..n).map(|i| (gen_rect(&mut rng), i as u64)).collect();
        let tree = RTree::bulk_load(items.clone());
        tree.check_invariants();
        let nq = rng.random_range(1usize..10);
        for _ in 0..nq {
            let q = gen_rect(&mut rng);
            let mut got = tree.search(&q);
            got.sort_unstable();
            assert_eq!(got, brute(&items, &q));
        }
    }
}

#[test]
fn incremental_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x87ee_0002);
    for _ in 0..128 {
        let n = rng.random_range(1usize..200);
        let items: Vec<(Rect3, u64)> =
            (0..n).map(|i| (gen_rect(&mut rng), i as u64)).collect();
        let q = gen_rect(&mut rng);
        let mut tree = RTree::new();
        for (r, id) in &items {
            tree.insert(*r, *id);
        }
        tree.check_invariants();
        let mut got = tree.search(&q);
        got.sort_unstable();
        assert_eq!(got, brute(&items, &q));
    }
}

#[test]
fn removal_hides_entries() {
    let mut rng = StdRng::seed_from_u64(0x87ee_0003);
    for _ in 0..128 {
        let n = rng.random_range(2usize..100);
        let items: Vec<(Rect3, u64)> =
            (0..n).map(|i| (gen_rect(&mut rng), i as u64)).collect();
        let mut tree = RTree::new();
        for (r, id) in &items {
            tree.insert(*r, *id);
        }
        let mut removed = std::collections::HashSet::new();
        let n_removals = rng.random_range(1usize..20);
        for _ in 0..n_removals {
            let (r, id) = items[rng.random_range(0..items.len())];
            if removed.insert(id) {
                assert!(tree.remove(&r, id));
            }
        }
        let everything = Rect3::new([-2000.0, -2000.0, -1.0], [2000.0, 2000.0, 2000.0]);
        let got = tree.search(&everything);
        assert_eq!(got.len(), items.len() - removed.len());
        for id in got {
            assert!(!removed.contains(&id));
        }
    }
}
