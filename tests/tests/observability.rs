//! Integration tests for the observability layer: EXPLAIN / EXPLAIN
//! ANALYZE rendering, `PRAGMA metrics` introspection, and the
//! `mduck_spans()` table function — exercised on both engines.
//!
//! The metrics registry is process-global, so value assertions are either
//! monotonic deltas (`after >= before + k`) or serialized behind `SERIAL`.

use std::sync::Mutex;

use mduck_rowdb::RowDatabase;
use mduck_sql::Value;
use quackdb::Database;

/// Serializes the tests that reset or read exact global metric values.
static SERIAL: Mutex<()> = Mutex::new(());

fn vec_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE pts(id INTEGER, x DOUBLE, tag TEXT)").unwrap();
    let vals: Vec<String> =
        (0..100).map(|i| format!("({i}, {}.5, 't{}')", i % 10, i % 3)).collect();
    db.execute(&format!("INSERT INTO pts VALUES {}", vals.join(","))).unwrap();
    db
}

fn row_db() -> RowDatabase {
    let db = RowDatabase::new();
    db.execute("CREATE TABLE pts(id INTEGER, x DOUBLE, tag TEXT)").unwrap();
    let vals: Vec<String> =
        (0..100).map(|i| format!("({i}, {}.5, 't{}')", i % 10, i % 3)).collect();
    db.execute(&format!("INSERT INTO pts VALUES {}", vals.join(","))).unwrap();
    db
}

/// Normalize an EXPLAIN rendering for golden comparison: drop the
/// box-drawing characters, trim each line, replace every run of digits
/// and dots with `N` (timings and row counts vary run to run), and drop
/// lines left empty. What remains is the plan shape and label text.
fn mask(explain: &str) -> Vec<String> {
    explain
        .lines()
        .map(|line| {
            let mut out = String::new();
            let mut in_num = false;
            for c in line.chars() {
                match c {
                    '┌' | '┐' | '└' | '┘' | '┬' | '┴' | '│' | '─' => {}
                    '0'..='9' | '.' => {
                        if !in_num {
                            out.push('N');
                            in_num = true;
                        }
                    }
                    c => {
                        in_num = false;
                        out.push(c);
                    }
                }
            }
            out.trim().to_string()
        })
        .filter(|l| !l.is_empty())
        .collect()
}

#[test]
fn vec_explain_analyze_golden() {
    let db = vec_db();
    let r = db
        .execute(
            "EXPLAIN ANALYZE SELECT tag, count(*) FROM pts \
             WHERE x > 2.0 GROUP BY tag ORDER BY tag LIMIT 2",
        )
        .unwrap();
    assert_eq!(r.schema.fields.len(), 1);
    let got = mask(&r.rows[0][0].to_string());
    let want: Vec<&str> = vec![
        "Total Time: N ms",
        "Rows Returned: N",
        "LIMIT",
        "LIMIT N",
        "actual: N ms",
        "rows: N",
        "ORDER_BY",
        "#N ASC",
        "actual: N ms",
        "rows: N",
        "mem: NB",
        "PROJECTION",
        "col#N",
        "col#N",
        "actual: N ms",
        "rows: N",
        "HASH_GROUP_BY",
        "group: col#N",
        "count([])",
        "actual: N ms",
        "rows: N",
        "mem: NB",
        "FILTER",
        "(col#N > lit(Float(N)))",
        "actual: N ms",
        "rows: N → N",
        "chunks: N",
        "mem: NB",
        "SEQ_SCAN",
        "pts",
        "actual: N ms",
        "rows: N → N",
        "chunks: N",
        "mem: NB",
    ];
    assert_eq!(got, want, "masked EXPLAIN ANALYZE drifted:\n{}", r.rows[0][0]);
}

#[test]
fn vec_explain_analyze_actuals_are_real() {
    let db = vec_db();
    let r = db.execute("EXPLAIN ANALYZE SELECT * FROM pts WHERE id < 7").unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("rows: 100 → 7"), "filter actuals missing:\n{text}");
    assert!(text.contains("rows: 100 → 100"), "scan actuals missing:\n{text}");
    assert!(text.contains("chunks: 1"), "chunk count missing:\n{text}");
    assert!(text.contains("Rows Returned: 7"), "header missing:\n{text}");
}

#[test]
fn vec_offset_without_limit_renders_offset() {
    let db = vec_db();
    let r = db.execute("EXPLAIN SELECT id FROM pts OFFSET 5").unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("OFFSET 5"), "missing OFFSET detail:\n{text}");
    assert!(!text.contains("LIMIT 0"), "offset-only rendered as LIMIT 0:\n{text}");
    // Both clauses present: each gets its own detail line.
    let r = db.execute("EXPLAIN SELECT id FROM pts LIMIT 3 OFFSET 5").unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("LIMIT 3") && text.contains("OFFSET 5"), "{text}");
}

#[test]
fn row_offset_without_limit_renders_offset() {
    let db = row_db();
    let r = db.execute("EXPLAIN SELECT id FROM pts OFFSET 5").unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("Limit (offset 5)"), "missing offset detail:\n{text}");
    let r = db.execute("EXPLAIN SELECT id FROM pts LIMIT 3 OFFSET 5").unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("Limit (3 rows, offset 5)"), "{text}");
}

#[test]
fn row_explain_analyze_reports_execution_footer() {
    let db = row_db();
    let r = db
        .execute("EXPLAIN ANALYZE SELECT tag, count(*) FROM pts WHERE x > 2.0 GROUP BY tag")
        .unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("Seq Scan on pts"), "{text}");
    assert!(text.contains("Execution Time:"), "missing wall time:\n{text}");
    assert!(text.contains("Rows Returned: 3"), "missing row count:\n{text}");
    assert!(text.contains("Rows Scanned: 100"), "missing scan count:\n{text}");
}

#[test]
fn pragma_metrics_schema_is_identical_across_engines() {
    let _lock = SERIAL.lock().unwrap();
    let vdb = vec_db();
    let rdb = row_db();
    vdb.execute("SELECT * FROM pts WHERE x > 2.0").unwrap();
    rdb.execute("SELECT * FROM pts WHERE x > 2.0").unwrap();
    let vm = vdb.execute("PRAGMA metrics").unwrap();
    let rm = rdb.execute("PRAGMA metrics").unwrap();

    let cols = |s: &mduck_sql::Schema| {
        s.fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>()
    };
    assert_eq!(cols(&vm.schema), vec!["name", "kind", "value", "detail"]);
    assert_eq!(cols(&vm.schema), cols(&rm.schema), "schemas differ across engines");
    // Same registry behind both engines: identical metric rows, same order.
    let names = |r: &[Vec<Value>]| {
        r.iter().map(|row| row[0].to_string()).collect::<Vec<_>>()
    };
    assert_eq!(names(&vm.rows), names(&rm.rows), "metric sets differ across engines");

    let lookup = |r: &[Vec<Value>], name: &str| -> (i64, String) {
        let row = r.iter().find(|row| row[0].to_string() == name).unwrap();
        match (&row[2], &row[3]) {
            (Value::Int(v), Value::Text(d)) => (*v, d.to_string()),
            other => panic!("unexpected value/detail types: {other:?}"),
        }
    };
    // Both engines scanned the 100-row table at least once.
    let (scanned, _) = lookup(&rm.rows, "rows_scanned");
    assert!(scanned >= 200, "expected scans from both engines, got {scanned}");
    // Phase-latency histograms populated for both engines.
    for h in ["vecdb_parse_ns", "vecdb_exec_ns", "rowdb_parse_ns", "rowdb_exec_ns"] {
        let (count, detail) = lookup(&rm.rows, h);
        assert!(count >= 1, "{h} histogram empty");
        assert!(detail.contains("p50=") && detail.contains("p95="), "{h}: {detail}");
    }
}

#[test]
fn pragma_reset_metrics_reports_status() {
    let _lock = SERIAL.lock().unwrap();
    let db = vec_db();
    let before = mduck_obs::metrics().queries_executed.get();
    db.execute("SELECT count(*) FROM pts").unwrap();
    assert!(mduck_obs::metrics().queries_executed.get() >= before + 1);

    let r = db.execute("PRAGMA reset_metrics").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].to_string(), "metrics reset");
    // Unknown pragmas are a catalog error, not a panic.
    assert!(db.execute("PRAGMA no_such_pragma").is_err());
    let rdb = row_db();
    assert!(rdb.execute("PRAGMA no_such_pragma").is_err());
}

#[test]
fn mduck_spans_is_queryable_from_both_engines() {
    let vdb = vec_db();
    vdb.execute("SELECT count(*) FROM pts").unwrap();
    let r = vdb
        .execute("SELECT name, depth, duration_us FROM mduck_spans() WHERE name = 'vecdb.exec'")
        .unwrap();
    assert!(!r.rows.is_empty(), "no vecdb.exec spans recorded");

    let rdb = row_db();
    rdb.execute("SELECT count(*) FROM pts").unwrap();
    let r = rdb
        .execute("SELECT name FROM mduck_spans() WHERE name = 'rowdb.exec'")
        .unwrap();
    assert!(!r.rows.is_empty(), "no rowdb.exec spans recorded");

    // Child spans nest under the statement span.
    let r = vdb
        .execute(
            "SELECT s.name FROM mduck_spans() s \
             WHERE s.name = 'vecdb.bind' AND s.depth >= 1 LIMIT 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "bind span should sit below the query span");

    // The alias participates in binding like any table.
    assert!(vdb.execute("SELECT * FROM mduck_spans(1)").is_err(), "args must be rejected");
}
