//! Resource observability across both engines: `PRAGMA memory_limit`
//! tripping mid-flight, per-operator memory in `EXPLAIN ANALYZE`, live
//! progress polled from another thread, and the query log (in-memory
//! history, `mduck_query_log()` schema contract, JSONL sink).
//!
//! The query log and progress registry are process-global, so tests that
//! read them serialize behind `SERIAL` and match on their own SQL text.

use std::sync::Mutex;

use berlinmod::{BerlinModData, RoadNetwork, ScaleFactor};
use mduck_rowdb::RowDatabase;
use mduck_sql::SqlError;
use quackdb::Database;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test must not cascade into the others.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Hash aggregation over the SF-0.001 trips table. The vehicleid
/// self-join re-materializes every trip (TGEOMPOINT columns included) per
/// match, pushing the statement's accounted memory well past 8MB on both
/// engines while staying comfortably under the default (unlimited) limit.
const AGG_SQL: &str = "SELECT t.vehicleid, count(*) FROM trips t, trips s \
     WHERE t.vehicleid = s.vehicleid GROUP BY t.vehicleid";

fn sf001() -> BerlinModData {
    let net = RoadNetwork::generate(42);
    BerlinModData::generate(&net, ScaleFactor(0.001), 42)
}

fn vec_db(data: &BerlinModData) -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    data.load_into_quack(&db).expect("load quackdb");
    db
}

fn row_db(data: &BerlinModData) -> RowDatabase {
    let db = RowDatabase::new();
    mobilityduck::load_row(&db);
    data.load_into_row(&db, false).expect("load rowdb");
    db
}

fn assert_memory_trip<T: std::fmt::Debug>(r: Result<T, SqlError>) {
    match r {
        Err(SqlError::ResourceExhausted(msg)) => {
            assert!(msg.contains("memory_limit"), "wrong trip: {msg}");
        }
        other => panic!("expected memory ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn vec_memory_limit_trips_hash_agg_serial_and_parallel() {
    let data = sf001();
    let db = vec_db(&data);
    // Default limit: the aggregation succeeds and EXPLAIN ANALYZE carries
    // non-zero per-operator memory.
    let pq = db.execute_analyzed(AGG_SQL).unwrap();
    assert!(pq.mem_peak > 8 << 20, "expected >8MB accounted, got {}", pq.mem_peak);
    assert!(pq.explain.contains("mem: "), "no mem lines:\n{}", pq.explain);
    assert!(
        pq.operators.iter().any(|op| op.mem_bytes > 0),
        "no operator charged memory: {:?}",
        pq.operators
    );
    let r = db.execute("PRAGMA memory_limit='8MB'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "8MB");
    for threads in [1usize, 4] {
        db.set_threads(threads);
        assert_memory_trip(db.execute(AGG_SQL));
    }
    // Clearing the limit restores the statement.
    let r = db.execute("PRAGMA memory_limit=0").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "unlimited");
    assert!(db.execute(AGG_SQL).is_ok());
}

#[test]
fn row_memory_limit_trips_hash_agg() {
    let data = sf001();
    let db = row_db(&data);
    assert!(db.execute(AGG_SQL).is_ok());
    let r = db.execute("PRAGMA memory_limit='8MB'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "8MB");
    assert_memory_trip(db.execute(AGG_SQL));
    db.execute("PRAGMA memory_limit='unlimited'").unwrap();
    assert!(db.execute(AGG_SQL).is_ok());
}

#[test]
fn memory_gauges_track_current_and_peak() {
    let _lock = serial();
    let db = Database::new();
    db.execute("CREATE TABLE g(a INTEGER)").unwrap();
    let vals: Vec<String> = (0..5000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO g VALUES {}", vals.join(","))).unwrap();
    db.execute("SELECT a, count(*) FROM g GROUP BY a").unwrap();
    let m = mduck_obs::metrics();
    assert!(m.mem_peak.get() > 0, "mem_peak gauge never moved");
    // All statement scopes are closed: the current gauge drained to 0.
    assert_eq!(m.mem_current.get(), 0, "mem_current leaked");
}

#[test]
fn vec_progress_is_monotone_under_concurrent_poller() {
    let db = Database::new();
    assert_eq!(db.progress(), None, "no statement ran yet");
    db.execute("CREATE TABLE p(a INTEGER)").unwrap();
    let vals: Vec<String> = (0..20_000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO p VALUES {}", vals.join(","))).unwrap();

    let done = std::sync::atomic::AtomicBool::new(false);
    let samples = std::thread::scope(|s| {
        let poller = s.spawn(|| {
            // The setup statements above already finished, so early polls
            // read their 1.0; ignore those. The first sample below 1.0
            // belongs to the self-join running on the main thread, and
            // from there on the fraction must never decrease.
            let mut samples = Vec::new();
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                match db.progress() {
                    Some(f) if f < 1.0 || !samples.is_empty() => samples.push(f),
                    _ => {}
                }
                std::hint::spin_loop();
            }
            samples
        });
        db.execute(
            "SELECT p1.a % 97, count(*) FROM p p1, p p2 \
             WHERE p1.a % 97 = p2.a % 97 GROUP BY p1.a % 97",
        )
        .unwrap();
        done.store(true, std::sync::atomic::Ordering::Release);
        poller.join().unwrap()
    });
    assert!(!samples.is_empty(), "poller never observed the query in flight");
    for w in samples.windows(2) {
        assert!(
            w[1] >= w[0],
            "progress regressed mid-statement: {} -> {}",
            w[0],
            w[1]
        );
    }
    assert_eq!(db.progress(), Some(1.0), "finished statement must read 1.0");
}

#[test]
fn mduck_progress_table_function_works_on_both_engines() {
    let _lock = serial();
    let data = sf001();
    let vdb = vec_db(&data);
    let rdb = row_db(&data);
    vdb.execute("SELECT count(*) FROM trips").unwrap();
    rdb.execute("SELECT count(*) FROM trips").unwrap();
    let vr = vdb.execute("SELECT * FROM mduck_progress()").unwrap();
    let rr = rdb.execute("SELECT * FROM mduck_progress()").unwrap();
    let cols = |s: &mduck_sql::Schema| {
        s.fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>()
    };
    assert_eq!(cols(&vr.schema), cols(&rr.schema), "schemas differ across engines");
    assert!(!vr.rows.is_empty(), "no progress entries recorded");
}

#[test]
fn query_log_schema_contract_is_identical_across_engines() {
    let _lock = serial();
    let data = sf001();
    let vdb = vec_db(&data);
    let rdb = row_db(&data);
    vdb.execute("SELECT count(*) FROM trips -- contract-v").unwrap();
    rdb.execute("SELECT count(*) FROM trips -- contract-r").unwrap();
    let vr = vdb.execute("SELECT * FROM mduck_query_log()").unwrap();
    let rr = rdb.execute("SELECT * FROM mduck_query_log()").unwrap();
    let cols = |s: &mduck_sql::Schema| {
        s.fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>()
    };
    let want = vec![
        "query_id",
        "engine",
        "sql",
        "duration_ms",
        "rows_returned",
        "rows_scanned",
        "guard_trip",
        "mem_peak",
        "threads",
        "error",
        "profile",
    ];
    assert_eq!(cols(&vr.schema), want);
    assert_eq!(cols(&vr.schema), cols(&rr.schema), "schemas differ across engines");

    // Both engines recorded their statement with real resource numbers.
    let find = |rows: &[Vec<mduck_sql::Value>], marker: &str| -> Vec<mduck_sql::Value> {
        rows.iter()
            .rev()
            .find(|r| r[2].to_string().contains(marker))
            .unwrap_or_else(|| panic!("no record for {marker}"))
            .clone()
    };
    let v = find(&vr.rows, "contract-v");
    assert_eq!(v[1].to_string(), "vecdb");
    assert_eq!(v[4], mduck_sql::Value::Int(1), "rows_returned");
    let scanned = match &v[5] {
        mduck_sql::Value::Int(n) => *n,
        other => panic!("rows_scanned: {other:?}"),
    };
    assert!(scanned >= 1, "vecdb rows_scanned empty");
    let r = find(&rr.rows, "contract-r");
    assert_eq!(r[1].to_string(), "rowdb");
    assert_eq!(r[8], mduck_sql::Value::Int(1), "row engine threads");
}

#[test]
fn query_log_records_guard_trips_and_errors() {
    let _lock = serial();
    let data = sf001();
    let db = vec_db(&data);
    db.execute("PRAGMA memory_limit='8MB'").unwrap();
    assert_memory_trip(db.execute(AGG_SQL));
    db.execute("PRAGMA memory_limit=0").unwrap();
    let r = db
        .execute(
            "SELECT sql, guard_trip, error, mem_peak FROM mduck_query_log() \
             WHERE guard_trip = 'memory' ORDER BY query_id DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "memory trip not logged");
    assert!(r.rows[0][2].to_string().contains("memory_limit"), "{:?}", r.rows[0]);
    match &r.rows[0][3] {
        mduck_sql::Value::Int(peak) => {
            assert!(*peak >= 8 << 20, "peak below the limit it tripped: {peak}")
        }
        other => panic!("mem_peak: {other:?}"),
    }
}

/// Mask every digit run so ids, timings, and sizes compare stably.
fn mask(line: &str) -> String {
    let mut out = String::new();
    let mut in_num = false;
    for c in line.chars() {
        if c.is_ascii_digit() {
            if !in_num {
                out.push('N');
                in_num = true;
            }
        } else {
            in_num = false;
            out.push(c);
        }
    }
    out
}

#[test]
fn query_log_jsonl_sink_round_trips_golden() {
    let _lock = serial();
    let path = std::env::temp_dir().join(format!("mduck_qlog_{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&path);

    let db = Database::new();
    db.execute(&format!("PRAGMA query_log='{path_str}'")).unwrap();
    db.execute("CREATE TABLE j(a INTEGER)").unwrap();
    db.execute("INSERT INTO j VALUES (1),(2),(3) -- golden-marker").unwrap();
    db.execute("SELECT a FROM j WHERE a > 1 -- golden-marker").unwrap();
    assert!(db.execute("SELECT nope FROM j -- golden-marker").is_err());
    db.execute("PRAGMA query_log='off'").unwrap();
    db.execute("SELECT a FROM j -- after-sink-closed").unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let lines: Vec<String> = text
        .lines()
        .filter(|l| l.contains("golden-marker"))
        .map(mask)
        .collect();
    let want = vec![
        "{\"id\":N,\"engine\":\"vecdb\",\"sql\":\"INSERT INTO j VALUES (N),(N),(N) -- \
         golden-marker\",\"duration_us\":N,\"rows_returned\":N,\"rows_scanned\":N,\
         \"guard_trip\":null,\"mem_peak\":N,\"threads\":N,\"error\":null,\"profile\":null}"
            .to_string(),
        "{\"id\":N,\"engine\":\"vecdb\",\"sql\":\"SELECT a FROM j WHERE a > N -- \
         golden-marker\",\"duration_us\":N,\"rows_returned\":N,\"rows_scanned\":N,\
         \"guard_trip\":null,\"mem_peak\":N,\"threads\":N,\"error\":null,\"profile\":null}"
            .to_string(),
        "{\"id\":N,\"engine\":\"vecdb\",\"sql\":\"SELECT nope FROM j -- golden-marker\",\
         \"duration_us\":N,\"rows_returned\":N,\"rows_scanned\":N,\"guard_trip\":null,\
         \"mem_peak\":N,\"threads\":N,\"error\":\"binder error: unknown column \\\"nope\\\"\",\
         \"profile\":null}"
            .to_string(),
    ];
    assert_eq!(lines, want, "JSONL golden drifted:\n{text}");
    assert!(
        !text.contains("after-sink-closed"),
        "sink kept receiving after PRAGMA query_log='off'"
    );
}
