//! Deterministic fuzzing of the geometry codecs: WKT text, WKB bytes,
//! and the native ("gserialized") format. Every input must produce `Ok`
//! or a typed `GeoError` — never a panic. Crashers are persisted under
//! `tests/corpus/geo/`.

use mduck_geo::gserialized::{from_native, peek_bbox, to_native};
use mduck_geo::wkb::{from_wkb, to_wkb};
use mduck_geo::wkt::parse_wkt;
use mduck_integration::fuzz;
use mduck_prng::{RngCore, RngExt, SeedableRng, StdRng};

const CASES: usize = 1500;

const WKT_SEEDS: &[&str] = &[
    "POINT(1 2)",
    "POINT(-1.5e10 2.25e-10)",
    "LINESTRING(0 0, 1 1, 2 0)",
    "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))",
    "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
    "MULTIPOINT(1 1, 2 2)",
    "MULTIPOINT((1 1), (2 2))",
    "MULTILINESTRING((0 0, 1 1), (2 2, 3 3))",
    "MULTIPOLYGON(((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
    "GEOMETRYCOLLECTION(POINT(1 2), LINESTRING(0 0, 1 1))",
    "SRID=4326;POINT(13.4 52.5)",
    "SRID=3857;POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))",
    "POLYGON((-1e999 0, 1e999 0, 0 1e999, -1e999 0))",
    "POINT(1e999 -1e999)",
];

fn wkt_valid_geometries() -> Vec<mduck_geo::Geometry> {
    WKT_SEEDS.iter().filter_map(|s| parse_wkt(s).ok()).collect()
}

#[test]
fn fuzz_wkt_never_panics() {
    let replayed = fuzz::replay_corpus("geo-wkt", |data| {
        let s = String::from_utf8_lossy(data).into_owned();
        fuzz::check_no_panic("geo-wkt", "replay", data, || {
            let _ = parse_wkt(&s);
        });
    });
    println!("replayed {replayed} corpus inputs");

    let mut rng = StdRng::seed_from_u64(0x6E0_77E5);
    for i in 0..CASES {
        let input = if rng.random_bool(0.8) {
            let seed = rng.choose(WKT_SEEDS).copied().unwrap_or("POINT(1 2)");
            let bytes = fuzz::mutate(&mut rng, seed.as_bytes());
            String::from_utf8_lossy(&bytes).into_owned()
        } else {
            let n = rng.random_range(0..80usize);
            (0..n)
                .map(|_| {
                    *rng.choose(b"POINTLIESRGUMYC()[],;=. -+0123456789e").unwrap_or(&b'(') as char
                })
                .collect()
        };
        let label = format!("wkt-{i}");
        fuzz::check_no_panic("geo-wkt", &label, input.as_bytes(), || {
            // Round-trip what parses: printing a parsed geometry must not
            // panic either.
            if let Ok(g) = parse_wkt(&input) {
                let _ = mduck_geo::wkt::to_wkt(&g, Some(6));
            }
        });
    }
}

#[test]
fn fuzz_wkb_and_native_never_panic() {
    let replayed = fuzz::replay_corpus("geo-bin", |data| {
        fuzz::check_no_panic("geo-bin", "replay", data, || {
            let _ = from_wkb(data);
            let _ = from_native(data);
            let _ = peek_bbox(data);
        });
    });
    println!("replayed {replayed} corpus inputs");

    let valid_wkb: Vec<Vec<u8>> = wkt_valid_geometries().iter().map(to_wkb).collect();
    let valid_native: Vec<Vec<u8>> = wkt_valid_geometries().iter().map(|g| to_native(g)).collect();

    let mut rng = StdRng::seed_from_u64(0x9E0_B17E5);
    for i in 0..CASES {
        let bytes = match rng.random_range(0..4u32) {
            // Pure noise.
            0 => {
                let n = rng.random_range(0..256usize);
                let mut b = vec![0u8; n];
                rng.fill_bytes(&mut b);
                b
            }
            // Truncated valid encodings (the classic WKB crash).
            1 => {
                let v = rng.choose(&valid_wkb).cloned().unwrap_or_default();
                let cut = rng.random_range(0..=v.len());
                v[..cut].to_vec()
            }
            2 => {
                let v = rng.choose(&valid_native).cloned().unwrap_or_default();
                let cut = rng.random_range(0..=v.len());
                v[..cut].to_vec()
            }
            // Bit-flipped valid encodings: plausible headers, hostile
            // counts and types.
            _ => {
                let v = if rng.random_bool(0.5) {
                    rng.choose(&valid_wkb).cloned().unwrap_or_default()
                } else {
                    rng.choose(&valid_native).cloned().unwrap_or_default()
                };
                fuzz::mutate(&mut rng, &v)
            }
        };
        let label = format!("bin-{i}");
        fuzz::check_no_panic("geo-bin", &label, &bytes, || {
            let _ = from_wkb(&bytes);
            let _ = from_native(&bytes);
            let _ = peek_bbox(&bytes);
        });
    }
}
