//! Integration tests for the per-query execution guard: row budgets,
//! wall-clock timeouts, cancellation, and nesting limits must all surface
//! as `SqlError::ResourceExhausted` — never a panic, never a hang.

use std::time::Duration;

use mduck_sql::SqlError;
use quackdb::{Database, ExecGuard, ExecLimits};

fn assert_exhausted(r: Result<quackdb::QueryResult, SqlError>) {
    match r {
        Err(SqlError::ResourceExhausted(_)) => {}
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn row_budget_stops_generate_series() {
    let db = Database::new();
    db.set_exec_limits(ExecLimits::default().with_row_budget(10_000));
    assert_exhausted(db.execute("SELECT * FROM generate_series(1, 100000000)"));
    // The database stays usable afterwards.
    let r = db.execute("SELECT 1").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn row_budget_stops_cross_join_blowup() {
    let db = Database::new();
    db.execute("CREATE TABLE t(a INTEGER)").unwrap();
    let vals: Vec<String> = (0..1000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", vals.join(","))).unwrap();
    db.set_exec_limits(ExecLimits::default().with_row_budget(100_000));
    // 1000^3 = 1e9 rows: must trip the budget, not OOM.
    assert_exhausted(db.execute("SELECT count(*) FROM t a, t b, t c"));
}

#[test]
fn within_budget_queries_succeed() {
    let db = Database::new();
    db.set_exec_limits(ExecLimits::default().with_row_budget(100_000));
    let r = db.execute("SELECT count(*) FROM generate_series(1, 1000)").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1000");
}

#[test]
fn timeout_stops_long_query() {
    let db = Database::new();
    db.set_exec_limits(ExecLimits::default().with_timeout(Duration::from_millis(20)));
    // Unbounded-ish series scan; the deadline must fire at a chunk boundary.
    assert_exhausted(db.execute("SELECT sum(x) FROM generate_series(1, 2000000000) s(x)"));
}

#[test]
fn cancellation_from_another_thread() {
    let db = Database::new();
    let guard = ExecGuard::new(&ExecLimits::default());
    let handle = guard.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
    });
    let r = db.execute_with_guard("SELECT sum(x) FROM generate_series(1, 2000000000) s(x)", &guard);
    canceller.join().unwrap();
    match r {
        Err(SqlError::ResourceExhausted(msg)) => assert!(msg.contains("canceled"), "{msg}"),
        other => panic!("expected cancellation, got {other:?}"),
    }
}

#[test]
fn parser_depth_limit_is_resource_exhausted() {
    let db = Database::new();
    let depth = mduck_sql::parser::MAX_PARSER_DEPTH + 10;
    let sql = format!("SELECT {}1{}", "(".repeat(depth), ")".repeat(depth));
    assert_exhausted(db.execute(&sql));
}

#[test]
fn guard_reuse_spends_one_budget_across_statements() {
    let db = Database::new();
    // Each statement charges ~2000 rows (series materialization +
    // projection); 3000 admits the first and trips on the second.
    let guard = ExecGuard::new(&ExecLimits::default().with_row_budget(3000));
    db.execute_with_guard("SELECT * FROM generate_series(1, 1000)", &guard).unwrap();
    assert_exhausted(db.execute_with_guard("SELECT * FROM generate_series(1, 1000)", &guard));
}

#[test]
fn guard_trips_are_counted_in_metrics() {
    // Counters are global and monotonic, so tests running in parallel can
    // only push them further up: assert on before/after deltas, not values.
    let m = mduck_obs::metrics();

    let before = m.guard_trip_row_budget.get();
    let db = Database::new();
    db.set_exec_limits(ExecLimits::default().with_row_budget(10_000));
    assert_exhausted(db.execute("SELECT * FROM generate_series(1, 100000000)"));
    assert!(m.guard_trip_row_budget.get() >= before + 1, "row-budget trip not counted");

    let before = m.guard_trip_timeout.get();
    db.set_exec_limits(ExecLimits::default().with_timeout(Duration::from_millis(20)));
    assert_exhausted(db.execute("SELECT sum(x) FROM generate_series(1, 2000000000) s(x)"));
    assert!(m.guard_trip_timeout.get() >= before + 1, "timeout trip not counted");

    let before = m.guard_trip_cancel.get();
    db.set_exec_limits(ExecLimits::default());
    let guard = ExecGuard::new(&ExecLimits::default());
    guard.cancel_handle().cancel();
    assert_exhausted(db.execute_with_guard("SELECT * FROM generate_series(1, 1000)", &guard));
    assert!(m.guard_trip_cancel.get() >= before + 1, "cancellation trip not counted");

    let before = m.guard_trip_depth.get();
    db.set_exec_limits(ExecLimits::default().with_max_subquery_depth(0));
    assert_exhausted(db.execute("SELECT (SELECT 1)"));
    assert!(m.guard_trip_depth.get() >= before + 1, "depth trip not counted");
}

#[test]
fn update_and_delete_respect_budget() {
    let db = Database::new();
    db.execute("CREATE TABLE t(a INTEGER)").unwrap();
    let vals: Vec<String> = (0..500).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", vals.join(","))).unwrap();
    db.set_exec_limits(ExecLimits::default().with_row_budget(100));
    assert_exhausted(db.execute("UPDATE t SET a = a + 1"));
    assert_exhausted(db.execute("DELETE FROM t WHERE a >= 0"));
}
