//! Property-based tests over the temporal algebra's core invariants,
//! driven by the in-repo deterministic PRNG (seeded, reproducible runs).

use mduck_prng::{RngExt, SeedableRng, StdRng};

use mduck_temporal::span::{parse_span, FloatSpan, Span};
use mduck_temporal::spanset::SpanSet;
use mduck_temporal::temporal::{Interp, TGeomPoint, TInstant, TSequence, Temporal};
use mduck_temporal::TimestampTz;

const CASES: usize = 256;

fn gen_float_span(rng: &mut StdRng) -> FloatSpan {
    let li = rng.random_bool(0.5);
    let ui = rng.random_bool(0.5);
    let lo = rng.random_range(-1000.0..1000.0f64);
    let width = rng.random_range(0.001..500.0f64);
    Span::new(lo, lo + width, li, ui).expect("positive width")
}

#[test]
fn span_display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0001);
    for _ in 0..CASES {
        let s = gen_float_span(&mut rng);
        let printed = s.to_string();
        let back: FloatSpan = parse_span(&printed).unwrap();
        assert_eq!(s, back);
    }
}

#[test]
fn span_intersection_is_commutative_and_contained() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0002);
    for _ in 0..CASES {
        let a = gen_float_span(&mut rng);
        let b = gen_float_span(&mut rng);
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        assert_eq!(&ab, &ba);
        if let Some(ix) = ab {
            assert!(a.contains_span(&ix));
            assert!(b.contains_span(&ix));
            assert!(a.overlaps(&b));
        } else {
            assert!(!a.overlaps(&b));
        }
    }
}

#[test]
fn span_minus_never_overlaps_the_subtrahend() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0003);
    for _ in 0..CASES {
        let a = gen_float_span(&mut rng);
        let b = gen_float_span(&mut rng);
        for piece in a.minus(&b) {
            assert!(!piece.overlaps(&b), "{piece} overlaps {b}");
            assert!(a.contains_span(&piece));
        }
    }
}

#[test]
fn spanset_normalization_is_canonical() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0004);
    for _ in 0..CASES {
        let n = rng.random_range(1usize..8);
        let spans: Vec<FloatSpan> = (0..n).map(|_| gen_float_span(&mut rng)).collect();
        let ss = SpanSet::new(spans.clone()).unwrap();
        // Members are ordered and pairwise non-touching.
        for w in ss.spans().windows(2) {
            assert!(w[0].left_of(&w[1]));
            assert!(!w[0].overlaps(&w[1]));
            assert!(!w[0].adjacent(&w[1]));
        }
        // Rebuilding from the normalized members is the identity.
        let again = SpanSet::new(ss.spans().to_vec()).unwrap();
        assert_eq!(&ss, &again);
        // Every input value point stays covered.
        for s in &spans {
            assert!(ss.contains_value(s.lower) || !s.lower_inc);
        }
    }
}

#[test]
fn spanset_union_minus_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0005);
    for _ in 0..CASES {
        let na = rng.random_range(1usize..5);
        let nb = rng.random_range(1usize..5);
        let a: Vec<FloatSpan> = (0..na).map(|_| gen_float_span(&mut rng)).collect();
        let b: Vec<FloatSpan> = (0..nb).map(|_| gen_float_span(&mut rng)).collect();
        let sa = SpanSet::new(a).unwrap();
        let sb = SpanSet::new(b).unwrap();
        let union = sa.union(&sb);
        // (a ∪ b) − b ⊆ a and never overlaps b.
        if let Some(diff) = union.minus(&sb) {
            assert!(!diff.overlaps(&sb));
            for s in diff.spans() {
                assert!(sa.overlaps_span(s));
            }
        }
    }
}

fn gen_tfloat_seq(rng: &mut StdRng) -> Temporal<f64> {
    let n = rng.random_range(2usize..12);
    let mut ts: Vec<(f64, i64)> = (0..n)
        .map(|_| (rng.random_range(-100.0..100.0f64), rng.random_range(1i64..100_000)))
        .collect();
    ts.sort_by_key(|(_, t)| *t);
    ts.dedup_by_key(|(_, t)| *t);
    let li = rng.random_bool(0.5);
    let ui = rng.random_bool(0.5);
    let base = 1_700_000_000_000_000i64;
    let instants: Vec<TInstant<f64>> = ts
        .into_iter()
        .map(|(v, dt)| TInstant::new(v, TimestampTz(base + dt * 1_000_000)))
        .collect();
    if instants.len() == 1 {
        Temporal::Instant(instants.into_iter().next().unwrap())
    } else {
        Temporal::Sequence(TSequence::new(instants, li, ui, Interp::Linear).unwrap())
    }
}

#[test]
fn temporal_display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0006);
    for _ in 0..CASES {
        let t = gen_tfloat_seq(&mut rng);
        let printed = t.to_string();
        let back = mduck_temporal::temporal::parse_tfloat(&printed).unwrap();
        assert_eq!(back.to_string(), printed);
    }
}

#[test]
fn at_period_result_is_within_period() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0007);
    for _ in 0..CASES {
        let t = gen_tfloat_seq(&mut rng);
        let lo = rng.random_range(0i64..100_000);
        let w = rng.random_range(1i64..50_000);
        let base = 1_700_000_000_000_000i64;
        let p = mduck_temporal::TstzSpan::new(
            TimestampTz(base + lo * 1_000_000),
            TimestampTz(base + (lo + w) * 1_000_000),
            true,
            true,
        )
        .unwrap();
        if let Some(r) = t.at_period(&p) {
            assert!(p.contains_span(&r.timespan()), "{} ⊄ {}", r.timespan(), p);
            // Values agree with the original at shared instants.
            let mid = r.start_timestamp();
            let a = r.value_at(mid);
            let b = t.value_at(mid);
            if let (Some(x), Some(y)) = (a, b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn minus_then_at_covers_everything() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0008);
    for _ in 0..CASES {
        let t = gen_tfloat_seq(&mut rng);
        let lo = rng.random_range(0i64..100_000);
        let w = rng.random_range(1i64..50_000);
        let base = 1_700_000_000_000_000i64;
        let p = mduck_temporal::TstzSpan::new(
            TimestampTz(base + lo * 1_000_000),
            TimestampTz(base + (lo + w) * 1_000_000),
            true,
            true,
        )
        .unwrap();
        let inside = t.at_period(&p).map(|x| x.duration(false).approx_usecs()).unwrap_or(0);
        let outside = t.minus_period(&p).map(|x| x.duration(false).approx_usecs()).unwrap_or(0);
        let total = t.duration(false).approx_usecs();
        assert!((inside + outside - total).abs() <= 2, "{inside} + {outside} != {total}");
    }
}

fn gen_trip(rng: &mut StdRng, start_range: std::ops::Range<i64>) -> TGeomPoint {
    let n = rng.random_range(2usize..10);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(-500.0..500.0f64), rng.random_range(-500.0..500.0f64)))
        .collect();
    let start = rng.random_range(start_range);
    let base = 1_700_000_000_000_000i64 + start * 1_000_000;
    let instants: Vec<(mduck_geo::Point, TimestampTz)> = pts
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| (mduck_geo::Point::new(x, y), TimestampTz(base + i as i64 * 60_000_000)))
        .collect();
    TGeomPoint::linear_seq(instants, 0).unwrap()
}

#[test]
fn tdwithin_agrees_with_sampled_distances() {
    let mut rng = StdRng::seed_from_u64(0x5ea_0009);
    for _ in 0..64 {
        let a = gen_trip(&mut rng, 0..50);
        let b = gen_trip(&mut rng, 0..50);
        let d = rng.random_range(1.0..400.0f64);
        // Wherever tdwithin says true/false, the sampled distance agrees.
        if let Some(w) = a.tdwithin(&b, d) {
            for inst in w.instants() {
                let pa = a.temp.value_at(inst.t);
                let pb = b.temp.value_at(inst.t);
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    let dist = pa.distance(&pb);
                    if inst.value {
                        assert!(dist <= d + 1e-3, "claimed within but {dist} > {d}");
                    }
                }
            }
            // eDwithin consistency.
            assert_eq!(w.ever_true(), a.edwithin(&b, d));
        }
    }
}

#[test]
fn trajectory_length_matches_instant_polyline() {
    let mut rng = StdRng::seed_from_u64(0x5ea_000a);
    for _ in 0..64 {
        let a = gen_trip(&mut rng, 0..10);
        let len = a.length();
        let traj_len = a.trajectory().length();
        assert!((len - traj_len).abs() < 1e-6);
        // The bounding box contains every instant.
        let b = a.stbox();
        let rect = b.rect.unwrap();
        for i in a.temp.instants() {
            assert!(rect.contains_point(&i.value));
        }
    }
}
