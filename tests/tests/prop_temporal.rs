//! Property-based tests over the temporal algebra's core invariants.

use proptest::prelude::*;

use mduck_temporal::span::{parse_span, FloatSpan, Span};
use mduck_temporal::spanset::SpanSet;
use mduck_temporal::temporal::{Interp, TGeomPoint, TInstant, TSequence, Temporal};
use mduck_temporal::TimestampTz;

fn arb_float_span() -> impl Strategy<Value = FloatSpan> {
    (any::<bool>(), any::<bool>(), -1000.0..1000.0f64, 0.001..500.0f64).prop_map(
        |(li, ui, lo, width)| Span::new(lo, lo + width, li, ui).expect("positive width"),
    )
}

proptest! {
    #[test]
    fn span_display_parse_roundtrip(s in arb_float_span()) {
        let printed = s.to_string();
        let back: FloatSpan = parse_span(&printed).unwrap();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn span_intersection_is_commutative_and_contained(a in arb_float_span(), b in arb_float_span()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(&ab, &ba);
        if let Some(ix) = ab {
            prop_assert!(a.contains_span(&ix));
            prop_assert!(b.contains_span(&ix));
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }

    #[test]
    fn span_minus_never_overlaps_the_subtrahend(a in arb_float_span(), b in arb_float_span()) {
        for piece in a.minus(&b) {
            prop_assert!(!piece.overlaps(&b), "{piece} overlaps {b}");
            prop_assert!(a.contains_span(&piece));
        }
    }

    #[test]
    fn spanset_normalization_is_canonical(spans in proptest::collection::vec(arb_float_span(), 1..8)) {
        let ss = SpanSet::new(spans.clone()).unwrap();
        // Members are ordered and pairwise non-touching.
        for w in ss.spans().windows(2) {
            prop_assert!(w[0].left_of(&w[1]));
            prop_assert!(!w[0].overlaps(&w[1]));
            prop_assert!(!w[0].adjacent(&w[1]));
        }
        // Rebuilding from the normalized members is the identity.
        let again = SpanSet::new(ss.spans().to_vec()).unwrap();
        prop_assert_eq!(&ss, &again);
        // Every input value point stays covered.
        for s in &spans {
            prop_assert!(ss.contains_value(s.lower) || !s.lower_inc);
        }
    }

    #[test]
    fn spanset_union_minus_roundtrip(a in proptest::collection::vec(arb_float_span(), 1..5),
                                     b in proptest::collection::vec(arb_float_span(), 1..5)) {
        let sa = SpanSet::new(a).unwrap();
        let sb = SpanSet::new(b).unwrap();
        let union = sa.union(&sb);
        // (a ∪ b) − b ⊆ a and never overlaps b.
        if let Some(diff) = union.minus(&sb) {
            prop_assert!(!diff.overlaps(&sb));
            for s in diff.spans() {
                prop_assert!(sa.overlaps_span(s));
            }
        }
    }
}

fn arb_tfloat_seq() -> impl Strategy<Value = Temporal<f64>> {
    (
        proptest::collection::vec((-100.0..100.0f64, 1i64..100_000), 2..12),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(raw, li, ui)| {
            let mut ts: Vec<(f64, i64)> = raw;
            ts.sort_by_key(|(_, t)| *t);
            ts.dedup_by_key(|(_, t)| *t);
            let base = 1_700_000_000_000_000i64;
            let instants: Vec<TInstant<f64>> = ts
                .into_iter()
                .map(|(v, dt)| TInstant::new(v, TimestampTz(base + dt * 1_000_000)))
                .collect();
            if instants.len() == 1 {
                Temporal::Instant(instants.into_iter().next().unwrap())
            } else {
                Temporal::Sequence(TSequence::new(instants, li, ui, Interp::Linear).unwrap())
            }
        })
}

proptest! {
    #[test]
    fn temporal_display_parse_roundtrip(t in arb_tfloat_seq()) {
        let printed = t.to_string();
        let back = mduck_temporal::temporal::parse_tfloat(&printed).unwrap();
        prop_assert_eq!(back.to_string(), printed);
    }

    #[test]
    fn at_period_result_is_within_period(t in arb_tfloat_seq(), lo in 0i64..100_000, w in 1i64..50_000) {
        let base = 1_700_000_000_000_000i64;
        let p = mduck_temporal::TstzSpan::new(
            TimestampTz(base + lo * 1_000_000),
            TimestampTz(base + (lo + w) * 1_000_000),
            true,
            true,
        ).unwrap();
        if let Some(r) = t.at_period(&p) {
            prop_assert!(p.contains_span(&r.timespan()), "{} ⊄ {}", r.timespan(), p);
            // Values agree with the original at shared instants.
            let mid = r.start_timestamp();
            let a = r.value_at(mid);
            let b = t.value_at(mid);
            if let (Some(x), Some(y)) = (a, b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn minus_then_at_covers_everything(t in arb_tfloat_seq(), lo in 0i64..100_000, w in 1i64..50_000) {
        let base = 1_700_000_000_000_000i64;
        let p = mduck_temporal::TstzSpan::new(
            TimestampTz(base + lo * 1_000_000),
            TimestampTz(base + (lo + w) * 1_000_000),
            true,
            true,
        ).unwrap();
        let inside = t.at_period(&p).map(|x| x.duration(false).approx_usecs()).unwrap_or(0);
        let outside = t.minus_period(&p).map(|x| x.duration(false).approx_usecs()).unwrap_or(0);
        let total = t.duration(false).approx_usecs();
        prop_assert!((inside + outside - total).abs() <= 2, "{inside} + {outside} != {total}");
    }
}

fn arb_trip(seed_range: std::ops::Range<i64>) -> impl Strategy<Value = TGeomPoint> {
    proptest::collection::vec(
        ((-500.0..500.0f64), (-500.0..500.0f64)),
        2..10,
    )
    .prop_flat_map(move |pts| {
        (Just(pts), seed_range.clone().prop_map(|s| s))
    })
    .prop_map(|(pts, start)| {
        let base = 1_700_000_000_000_000i64 + start * 1_000_000;
        let instants: Vec<(mduck_geo::Point, TimestampTz)> = pts
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| {
                (mduck_geo::Point::new(x, y), TimestampTz(base + i as i64 * 60_000_000))
            })
            .collect();
        TGeomPoint::linear_seq(instants, 0).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tdwithin_agrees_with_sampled_distances(a in arb_trip(0..50), b in arb_trip(0..50), d in 1.0..400.0f64) {
        // Wherever tdwithin says true/false, the sampled distance agrees.
        if let Some(w) = a.tdwithin(&b, d) {
            for inst in w.instants() {
                let pa = a.temp.value_at(inst.t);
                let pb = b.temp.value_at(inst.t);
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    let dist = pa.distance(&pb);
                    if inst.value {
                        prop_assert!(dist <= d + 1e-3, "claimed within but {dist} > {d}");
                    }
                }
            }
            // eDwithin consistency.
            prop_assert_eq!(w.ever_true(), a.edwithin(&b, d));
        }
    }

    #[test]
    fn trajectory_length_matches_instant_polyline(a in arb_trip(0..10)) {
        let len = a.length();
        let traj_len = a.trajectory().length();
        prop_assert!((len - traj_len).abs() < 1e-6);
        // The bounding box contains every instant.
        let b = a.stbox();
        let rect = b.rect.unwrap();
        for i in a.temp.instants() {
            prop_assert!(rect.contains_point(&i.value));
        }
    }
}
