//! Cross-crate integration: the full MobilityDuck SQL surface produces the
//! same results on the vectorized and row engines, over temporal data.

use mduck_rowdb::RowDatabase;
use quackdb::Database;

fn both() -> (Database, RowDatabase) {
    let vdb = Database::new();
    mobilityduck::load(&vdb);
    let rdb = RowDatabase::new();
    mobilityduck::load_row(&rdb);
    let setup = "
        CREATE TABLE trips(vid INTEGER, trip TGEOMPOINT);
        INSERT INTO trips VALUES
          (1, '[Point(0 0)@2025-01-01 08:00:00, Point(1000 0)@2025-01-01 08:10:00, Point(1000 800)@2025-01-01 08:20:00]'::tgeompoint),
          (2, '[Point(1000 0)@2025-01-01 08:00:00, Point(0 0)@2025-01-01 08:10:00]'::tgeompoint),
          (3, '[Point(5000 5000)@2025-01-01 09:00:00, Point(6000 5000)@2025-01-01 09:30:00]'::tgeompoint);
    ";
    vdb.execute_script(setup).unwrap();
    rdb.execute_script(setup).unwrap();
    (vdb, rdb)
}

fn check(vdb: &Database, rdb: &RowDatabase, sql: &str) {
    let a: Vec<Vec<String>> = vdb
        .execute(sql)
        .unwrap_or_else(|e| panic!("quackdb: {e}\n{sql}"))
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    let b: Vec<Vec<String>> = rdb
        .execute(sql)
        .unwrap_or_else(|e| panic!("rowdb: {e}\n{sql}"))
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    assert_eq!(a, b, "engines disagree on {sql}");
}

#[test]
fn temporal_accessors_agree() {
    let (v, r) = both();
    for sql in [
        "SELECT vid, length(trip), numInstants(trip), duration(trip, true) FROM trips ORDER BY vid",
        "SELECT vid, startTimestamp(trip), endTimestamp(trip) FROM trips ORDER BY vid",
        "SELECT vid, ST_AsText(trajectory(trip)) FROM trips ORDER BY vid",
        "SELECT vid, trip::tstzspan, trip::STBOX FROM trips ORDER BY vid",
    ] {
        check(&v, &r, sql);
    }
}

#[test]
fn temporal_relationships_agree() {
    let (v, r) = both();
    for sql in [
        "SELECT t1.vid, t2.vid, eDwithin(t1.trip, t2.trip, 100.0) \
         FROM trips t1, trips t2 WHERE t1.vid < t2.vid ORDER BY 1, 2",
        "SELECT t1.vid, t2.vid, whenTrue(tDwithin(t1.trip, t2.trip, 300.0)) \
         FROM trips t1, trips t2 WHERE t1.vid < t2.vid ORDER BY 1, 2",
        "SELECT vid FROM trips WHERE trip && stbox 'STBOX X((-10,-10),(500,500))' ORDER BY vid",
        "SELECT vid, eIntersects(trip, geometry 'POLYGON((500 -100,1500 -100,1500 100,500 100,500 -100))') \
         FROM trips ORDER BY vid",
    ] {
        check(&v, &r, sql);
    }
}

#[test]
fn restriction_functions_agree() {
    let (v, r) = both();
    for sql in [
        "SELECT vid, asText(atTime(trip, tstzspan '[2025-01-01 08:05:00, 2025-01-01 08:15:00]')) \
         FROM trips ORDER BY vid",
        "SELECT vid, length(atGeometry(trip, geometry 'POLYGON((-100 -100,600 -100,600 900,-100 900,-100 -100))')) \
         FROM trips ORDER BY vid",
        "SELECT vid, ST_AsText(valueAtTimestamp(trip, timestamptz '2025-01-01 08:05:00')) \
         FROM trips WHERE trip::tstzspan @> timestamptz '2025-01-01 08:05:00' ORDER BY vid",
    ] {
        check(&v, &r, sql);
    }
}

#[test]
fn aggregates_agree() {
    let (v, r) = both();
    for sql in [
        "SELECT extent(trip) FROM trips",
        "SELECT sum(length(trip)), max(length(trip)) FROM trips",
        "SELECT tcount(trip) FROM trips",
    ] {
        check(&v, &r, sql);
    }
}

#[test]
fn index_scan_and_seq_scan_agree_on_temporal_predicates() {
    // One engine instance with the TRTREE index, one without: the
    // optimizer's scan injection must not change results.
    let with_idx = Database::new();
    mobilityduck::load(&with_idx);
    let without = Database::new();
    mobilityduck::load(&without);
    for db in [&with_idx, &without] {
        db.execute("CREATE TABLE boxes(id INTEGER, b STBOX)").unwrap();
    }
    with_idx.execute("CREATE INDEX bi ON boxes USING TRTREE(b)").unwrap();
    for db in [&with_idx, &without] {
        db.execute(
            "INSERT INTO boxes SELECT i, ('STBOX X((' || i || ',' || i || '),(' || (i+5) || ',' \
             || (i+5) || '))')::stbox FROM generate_series(1, 2000) AS t(i)",
        )
        .unwrap();
    }
    for probe in [
        "STBOX X((100,100),(120,120))",
        "STBOX X((1995,1995),(3000,3000))",
        "STBOX X((-50,-50),(0,0))",
    ] {
        let q = format!("SELECT id FROM boxes WHERE b && stbox '{probe}' ORDER BY id");
        let a: Vec<String> =
            with_idx.execute(&q).unwrap().rows.iter().map(|r| r[0].to_string()).collect();
        let b: Vec<String> =
            without.execute(&q).unwrap().rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(a, b, "probe {probe}");
    }
}
