//! The row engine's EXPLAIN rendering and the tuple deform/detoast path
//! (extension values must survive the wire-format round trip on scan).

use mduck_rowdb::RowDatabase;

#[test]
fn explain_shows_postgres_style_plan() {
    let db = RowDatabase::new();
    db.execute("CREATE TABLE a(id INTEGER, x INTEGER)").unwrap();
    db.execute("CREATE TABLE b(id INTEGER, y INTEGER)").unwrap();
    let r = db
        .execute("EXPLAIN SELECT count(*) FROM a, b WHERE a.id = b.id AND a.x > 5")
        .unwrap();
    let plan = r.rows[0][0].to_string();
    assert!(plan.contains("Hash Join"), "{plan}");
    assert!(plan.contains("Seq Scan on a"), "{plan}");
    assert!(plan.contains("HashAggregate"), "{plan}");
}

#[test]
fn explain_shows_index_scan_when_available() {
    let db = RowDatabase::new();
    mobilityduck::load_row(&db);
    db.execute("CREATE TABLE t(id INTEGER, b STBOX)").unwrap();
    db.execute("CREATE INDEX ti ON t USING GIST(b)").unwrap();
    let r = db
        .execute("EXPLAIN SELECT id FROM t WHERE b && stbox 'STBOX X((0,0),(1,1))'")
        .unwrap();
    let plan = r.rows[0][0].to_string();
    assert!(plan.contains("Index Scan on t"), "{plan}");
}

#[test]
fn detoast_preserves_temporal_values_exactly() {
    // Values stored in the row engine pass through the binary wire format
    // on every scan; results must be bit-identical to the vectorized
    // engine's (which never round-trips).
    let rdb = RowDatabase::new();
    mobilityduck::load_row(&rdb);
    let vdb = quackdb::Database::new();
    mobilityduck::load(&vdb);
    let setup = "
        CREATE TABLE t(id INTEGER, trip TGEOMPOINT, p TSTZSPAN);
        INSERT INTO t VALUES
          (1, 'SRID=3405;{[Point(0.125 0.25)@2025-01-01 08:00:00.123456, Point(1.5 2.25)@2025-01-01 08:10:00], [Point(7 7)@2025-01-01 09:00:00, Point(8 8)@2025-01-01 09:05:00]}'::tgeompoint,
              '[2025-01-01 08:00:00, 2025-01-01 09:05:00)'::tstzspan);
    ";
    rdb.execute_script(setup).unwrap();
    vdb.execute_script(setup).unwrap();
    for sql in [
        "SELECT asEWKT(trip), p FROM t",
        "SELECT numInstants(trip), length(trip), duration(trip, true) FROM t",
        "SELECT trip::STBOX FROM t",
    ] {
        let a = rdb.execute(sql).unwrap().rows;
        let b = vdb.execute(sql).unwrap().rows;
        let fmt = |rows: &Vec<Vec<mduck_sql::Value>>| -> Vec<Vec<String>> {
            rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect()
        };
        assert_eq!(fmt(&a), fmt(&b), "{sql}");
    }
}

#[test]
fn detoast_roundtrips_under_index_nested_loop() {
    let db = RowDatabase::new();
    mobilityduck::load_row(&db);
    db.execute("CREATE TABLE probes(id INTEGER, b STBOX)").unwrap();
    db.execute("CREATE TABLE targets(id INTEGER, trip TGEOMPOINT)").unwrap();
    db.execute("CREATE INDEX tg ON targets USING GIST(trip)").unwrap();
    db.execute(
        "INSERT INTO targets SELECT i, \
         ('[Point(' || i || ' 0)@2025-01-01 08:00:00, Point(' || (i + 1) || ' 0)@2025-01-01 09:00:00]')::tgeompoint \
         FROM generate_series(1, 200) AS t(i)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO probes SELECT i, ('STBOX X((' || (i * 10) || ',-1),(' || (i * 10 + 2) || ',1))')::stbox \
         FROM generate_series(1, 10) AS t(i)",
    )
    .unwrap();
    // Index nested-loop join probing targets' GiST with probe boxes.
    let r = db
        .execute(
            "SELECT p.id, count(*) FROM probes p, targets t \
             WHERE t.trip && p.b GROUP BY p.id ORDER BY p.id",
        )
        .unwrap();
    // Probe i covers x ∈ [10i, 10i+2] → trips starting at 10i-1, 10i, 10i+1, 10i+2.
    assert_eq!(r.rows.len(), 10);
    for row in &r.rows {
        let n: i64 = row[1].as_int().unwrap();
        assert!((3..=4).contains(&n), "{row:?}");
    }
}
