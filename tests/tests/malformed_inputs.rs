//! Malformed-input regression tests: each case is a class of input that
//! historically panics hand-written parsers. Every one must come back as
//! a typed `Err`, never a panic, and engine errors must never be the
//! `Internal` backstop variant.

use mduck_geo::wkb::{from_wkb, to_wkb};
use mduck_geo::wkt::parse_wkt;
use mduck_geo::gserialized::{from_native, peek_bbox, to_native};
use mduck_sql::SqlError;
use mduck_temporal::temporal::{parse_tfloat, parse_tgeompoint};
use mduck_temporal::{parse_span, parse_stbox, parse_timestamp, TstzSpan};
use quackdb::Database;

fn db() -> Database {
    let d = Database::new();
    mobilityduck::load(&d);
    d
}

fn assert_typed_err(db: &Database, sql: &str) {
    match db.execute(sql) {
        Ok(_) => panic!("expected an error for {sql:?}"),
        Err(e) => assert!(!e.is_internal(), "panic leaked through backstop on {sql:?}: {e}"),
    }
}

// ------------------------------------------------------------------ WKB

#[test]
fn truncated_wkb_is_an_error() {
    let g = parse_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap();
    let full = to_wkb(&g);
    // Every prefix must fail cleanly (byte 0 = endianness, then type,
    // ring counts, then coordinates).
    for cut in 0..full.len() {
        assert!(from_wkb(&full[..cut]).is_err(), "prefix of {cut} bytes parsed");
    }
    assert!(from_wkb(&full).is_ok());
}

#[test]
fn wkb_with_hostile_counts_is_an_error() {
    let g = parse_wkt("LINESTRING(0 0, 1 1)").unwrap();
    let mut b = to_wkb(&g);
    // Overwrite the point count (little-endian u32 after byte-order +
    // geometry-type header) with u32::MAX: must not attempt a
    // multi-gigabyte allocation or read out of bounds.
    b[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(from_wkb(&b).is_err());
}

#[test]
fn truncated_native_geometry_is_an_error() {
    let g = parse_wkt("LINESTRING(0 0, 1 1, 2 2)").unwrap();
    let full = to_native(&g);
    for cut in 0..full.len() {
        assert!(from_native(&full[..cut]).is_err(), "prefix of {cut} bytes parsed");
        let _ = peek_bbox(&full[..cut]); // must not panic either
    }
    assert!(from_native(&full).is_ok());
}

// ------------------------------------------------------------------ WKT

#[test]
fn unclosed_wkt_rings_are_errors() {
    for s in [
        "POLYGON((0 0, 10 0, 10 10",
        "POLYGON((0 0, 10 0, 10 10)",
        "POLYGON(0 0, 10 0)",
        "LINESTRING(0 0",
        "LINESTRING(0 0,",
        "MULTIPOLYGON(((0 0, 1 0, 1 1)",
        "GEOMETRYCOLLECTION(POINT(1 2)",
        "POINT(1",
        "POINT(",
        "SRID=;POINT(1 2)",
        "SRID=4326POINT(1 2)",
    ] {
        assert!(parse_wkt(s).is_err(), "{s:?} parsed");
    }
}

#[test]
fn wkt_with_multibyte_utf8_is_an_error_not_a_panic() {
    // Byte 5 of these inputs is inside a multi-byte char; unchecked
    // `&s[..5]` slicing panics (regression: SRID-prefix detection).
    for s in ["POIN\u{30C8}(1 2)", "SRI\u{30C8}=4326;POINT(0 0)", "\u{00E9}\u{00E9}\u{00E9}"] {
        assert!(parse_wkt(s).is_err(), "{s:?} parsed");
    }
}

// ------------------------------------------------------------- temporal

#[test]
fn out_of_order_timestamps_are_errors() {
    for s in [
        "[Point(0 0)@2025-01-02, Point(1 1)@2025-01-01]",
        "[Point(0 0)@2025-01-01, Point(1 1)@2025-01-01]", // duplicate
        "{[Point(0 0)@2025-02-01, Point(1 1)@2025-02-02], [Point(2 2)@2025-01-01, Point(3 3)@2025-01-02]}",
    ] {
        assert!(parse_tgeompoint(s).is_err(), "{s:?} parsed");
    }
    assert!(parse_tfloat("[2.5@2025-06-01, 1.5@2025-01-01]").is_err());
}

#[test]
fn malformed_temporal_literals_are_errors() {
    for s in [
        "",
        "[",
        "[]",
        "[Point(0 0)@]",
        "[@2025-01-01]",
        "[Point(0 0)@2025-01-01",
        "Point(0 0)@not-a-date",
        "SRID=99999999999999999999;Point(0 0)@2025-01-01",
        "Interp=Bogus;[1@2025-01-01]",
        "{",
        "{}",
    ] {
        assert!(parse_tgeompoint(s).is_err(), "{s:?} parsed");
    }
}

#[test]
fn malformed_spans_and_boxes_are_errors() {
    for s in ["", "[", "[1,", "[2, 1]", "(1, 1)", "[a, b]", "[1 2]"] {
        assert!(parse_span::<i64>(s).is_err(), "{s:?} parsed");
    }
    assert!(parse_span::<mduck_temporal::TimestampTz>("[2025-06-01, 2025-01-01]")
        .map(|_: TstzSpan| ())
        .is_err());
    for s in ["STBOX", "STBOX X((1,2),(3))", "STBOX X((1,2)", "STBOX Q((1,2),(3,4))", "TBOX XT("]
    {
        assert!(parse_stbox(s).is_err(), "{s:?} parsed");
    }
}

#[test]
fn nan_and_infinite_inputs_never_panic() {
    // Rust's f64 FromStr accepts "NaN"/"inf"; span and temporal-value
    // parsing must reject NaN (it breaks ordering) rather than admit a
    // value that panics the first comparison.
    assert!(parse_span::<f64>("[NaN, 1]").map(|_: mduck_temporal::FloatSpan| ()).is_err());
    assert!(parse_span::<f64>("[1, NaN]").map(|_: mduck_temporal::FloatSpan| ()).is_err());
    assert!(parse_tfloat("NaN@2025-01-01").is_err());
    assert!(parse_tfloat("[NaN@2025-01-01, 1@2025-01-02]").is_err());

    // Infinite coordinates parse (1e999 overflows to inf) — everything
    // downstream, including R-tree construction over NaN centers, must
    // stay panic-free.
    let db = db();
    db.execute("CREATE TABLE weird(g GEOMETRY)").unwrap();
    db.execute("INSERT INTO weird VALUES ('POLYGON((-1e999 0, 1e999 0, 0 1e999, -1e999 0))'::GEOMETRY)")
        .ok();
    db.execute("INSERT INTO weird VALUES ('POINT(1 2)'::GEOMETRY)").unwrap();
    match db.execute("CREATE INDEX widx ON weird USING RTREE(g)") {
        Ok(_) => {}
        Err(e) => assert!(!e.is_internal(), "index build panicked: {e}"),
    }
}

#[test]
fn malformed_timestamps_are_errors() {
    for s in ["", "2025", "2025-13-01", "2025-01-32", "2025-01-01 25:00:00", "99999999-01-01"] {
        assert!(parse_timestamp(s).is_err(), "{s:?} parsed");
    }
}

// ------------------------------------------------------------------ SQL

#[test]
fn unterminated_string_literals_are_errors() {
    let db = db();
    for sql in [
        "SELECT 'abc",
        "SELECT 'it''s",
        "SELECT \"ident",
        "SELECT 'a' || 'b",
        "INSERT INTO t VALUES ('x",
    ] {
        match db.execute(sql) {
            Err(SqlError::Lex(_)) => {}
            other => panic!("expected a lex error for {sql:?}, got {other:?}"),
        }
    }
}

#[test]
fn arithmetic_edge_cases_are_typed_errors() {
    let db = db();
    // Division/modulo by zero and i64 overflow: release builds wrap or
    // abort on naive arithmetic; these must be typed errors instead.
    // (The literal -9223372036854775808 lexes as a float — its magnitude
    // overflows i64 — so i64::MIN is spelled arithmetically.)
    assert_typed_err(&db, "SELECT 1 / 0");
    assert_typed_err(&db, "SELECT 1 % 0");
    assert_typed_err(&db, "SELECT (-9223372036854775807 - 1) / -1");
    assert_typed_err(&db, "SELECT (-9223372036854775807 - 1) % -1");
    assert_typed_err(&db, "SELECT 9223372036854775807 + 1");
    assert_typed_err(&db, "SELECT (-9223372036854775807 - 1) - 1");
    assert_typed_err(&db, "SELECT 9223372036854775807 * 2");
}

#[test]
fn deep_nesting_is_a_typed_error() {
    let db = db();
    for depth in [65usize, 100, 500, 2000] {
        let sql = format!("SELECT {}1{}", "(".repeat(depth), ")".repeat(depth));
        match db.execute(&sql) {
            Err(SqlError::ResourceExhausted(_)) => {}
            other => panic!("expected ResourceExhausted at depth {depth}, got {other:?}"),
        }
    }
}

#[test]
fn garbage_statements_are_typed_errors() {
    let db = db();
    for sql in [
        ";;;",
        "SELEC 1",
        "SELECT FROM WHERE",
        "INSERT INTO VALUES (1)",
        "CREATE TABLE (a INTEGER)",
        "\u{30C8}\u{30C8}\u{30C8}",
        "SELECT * FROM missing_table",
        "SELECT missing_fn(1)",
        "SELECT 1 + 'not a number'",
    ] {
        match db.execute(sql) {
            Ok(_) => panic!("expected an error for {sql:?}"),
            Err(e) => assert!(!e.is_internal(), "internal error on {sql:?}: {e}"),
        }
    }
}
