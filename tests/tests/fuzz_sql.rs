//! Deterministic SQL fuzzing: every input — mutated real queries, token
//! soup, and generated deeply-structured statements — must come back as
//! `Ok` or a *typed* error. A panic, an abort, or an `SqlError::Internal`
//! (the executor's catch-unwind backstop) is a bug; the offending input
//! is persisted under `tests/corpus/sql/`.

use mduck_integration::fuzz;
use mduck_prng::{RngExt, SeedableRng, StdRng};
use quackdb::{Database, ExecLimits};

const CASES: usize = 1500;

/// Realistic seed statements covering the MobilityDuck surface; mutations
/// start from these so the fuzzer spends its time past the lexer.
const SEEDS: &[&str] = &[
    "SELECT vid, length(trip), numInstants(trip) FROM trips WHERE vid < 3 ORDER BY vid",
    "SELECT vid FROM trips WHERE trip && 'STBOX X((0,0),(500,500))'::stbox",
    "SELECT ST_AsText(trajectory(trip)) FROM trips",
    "SELECT atTime(trip, '[2025-01-01 08:00:00, 2025-01-01 08:15:00]'::tstzspan) FROM trips",
    "SELECT t1.vid, t2.vid FROM trips t1, trips t2 WHERE eDwithin(t1.trip, t2.trip, 100.0)",
    "SELECT vid, trip::tstzspan, trip::stbox FROM trips",
    "INSERT INTO trips VALUES (9, '[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02]'::tgeompoint)",
    "SELECT count(*), sum(x), avg(x) FROM generate_series(1, 100) s(x) GROUP BY x % 7",
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t WHERE a IN (1, 2, 3)",
    "UPDATE t SET a = a * 2 WHERE a BETWEEN 1 AND 5",
    "DELETE FROM t WHERE a IS NULL OR a <> 4",
    "SELECT * FROM (SELECT a + 1 AS b FROM t) q WHERE b = (SELECT max(a) FROM t)",
    "WITH c AS (SELECT a FROM t) SELECT * FROM c JOIN t ON c.a = t.a",
    "CREATE INDEX idx ON trips USING TRTREE(trip)",
    "SELECT 9223372036854775807 + 1, -9223372036854775808 / -1, 2 % 0",
    "SELECT '2025-01-01'::date + 1, interval '1 day' * 999999999",
    "SELECT tempSubtype(trip), startInstant(trip), speed(trip) FROM trips",
];

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "OFFSET", "JOIN", "ON", "AND",
    "OR", "NOT", "NULL", "TRUE", "FALSE", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "TABLE", "INDEX", "USING", "CAST", "AS", "CASE", "WHEN", "THEN", "ELSE", "END",
    "IN", "IS", "BETWEEN", "LIKE", "DISTINCT", "HAVING", "WITH", "EXPLAIN", "ASC", "DESC",
];

const SYMBOLS: &[&str] = &[
    "(", ")", ",", ";", "::", "&&", "@>", "<@", "<->", "-|-", "|=|", "<=", ">=", "<>", "!=",
    "=", "<", ">", "+", "-", "*", "/", "%", ".", "'", "[", "]",
];

const ATOMS: &[&str] = &[
    "t", "trips", "a", "vid", "trip", "x", "q", "0", "1", "-1", "2048", "1e308", "-1e-308",
    "9223372036854775807", "-9223372036854775808", "0.0", "''", "'x'", "'POINT(1 2)'",
    "'STBOX X((0,0),(1,1))'", "'[Point(0 0)@2025-01-01, Point(1 1)@2025-01-02]'",
    "'2025-01-01 08:00:00'", "stbox", "tgeompoint", "tstzspan", "integer", "count", "sum",
    "atTime", "trajectory", "eDwithin", "generate_series",
];

fn fresh_db() -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    // Budgets keep pathological generated queries (cross joins, huge
    // series) bounded; overruns are typed errors, which is exactly the
    // contract under test.
    db.set_exec_limits(ExecLimits::default().with_row_budget(200_000));
    db.execute_script(
        "CREATE TABLE t(a INTEGER, b VARCHAR);
         INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, NULL), (4, 'four');
         CREATE TABLE trips(vid INTEGER, trip TGEOMPOINT);
         INSERT INTO trips VALUES
           (1, '[Point(0 0)@2025-01-01 08:00:00, Point(1000 0)@2025-01-01 08:10:00]'::tgeompoint),
           (2, '[Point(1000 0)@2025-01-01 08:00:00, Point(0 0)@2025-01-01 08:10:00]'::tgeompoint);",
    )
    .unwrap();
    db
}

/// The contract: execution never panics (the backstop turning a panic
/// into `Internal` counts as a failure — it means a latent bug).
fn run_one(db: &Database, sql: &str) {
    match db.execute(sql) {
        Ok(_) => {}
        Err(e) => assert!(!e.is_internal(), "internal error (masked panic) on {sql:?}: {e}"),
    }
}

fn token_soup(rng: &mut StdRng) -> String {
    let n = rng.random_range(1..40usize);
    let mut out = String::new();
    for _ in 0..n {
        let piece = match rng.random_range(0..3u32) {
            0 => rng.choose(KEYWORDS).copied().unwrap_or("SELECT"),
            1 => rng.choose(SYMBOLS).copied().unwrap_or("("),
            _ => rng.choose(ATOMS).copied().unwrap_or("1"),
        };
        out.push_str(piece);
        if rng.random_bool(0.8) {
            out.push(' ');
        }
    }
    out
}

/// Structured generator: a plausible SELECT with random nesting close to
/// (and past) the parser's depth ceiling.
fn gen_select(rng: &mut StdRng, depth: usize) -> String {
    let expr = gen_expr(rng, depth);
    let mut s = format!("SELECT {expr}");
    if rng.random_bool(0.7) {
        s.push_str(if rng.random_bool(0.5) { " FROM t" } else { " FROM trips" });
        if rng.random_bool(0.5) {
            s.push_str(&format!(" WHERE {}", gen_expr(rng, depth)));
        }
    }
    if rng.random_bool(0.2) {
        s.push_str(" LIMIT 5");
    }
    s
}

fn gen_expr(rng: &mut StdRng, depth: usize) -> String {
    if depth == 0 || rng.random_bool(0.3) {
        return rng.choose(ATOMS).copied().unwrap_or("1").to_string();
    }
    match rng.random_range(0..6u32) {
        0 => format!("({})", gen_expr(rng, depth - 1)),
        1 => format!("-{}", gen_expr(rng, depth - 1)),
        2 => format!("NOT {}", gen_expr(rng, depth - 1)),
        3 => format!(
            "{} {} {}",
            gen_expr(rng, depth - 1),
            rng.choose(&["+", "-", "*", "/", "%", "=", "<", "&&", "<->"]).unwrap_or(&"+"),
            gen_expr(rng, depth - 1)
        ),
        4 => format!("{}::{}", gen_expr(rng, depth - 1), rng.choose(&["integer", "stbox", "tstzspan", "varchar"]).unwrap_or(&"integer")),
        _ => format!("CASE WHEN {} THEN 1 ELSE 0 END", gen_expr(rng, depth - 1)),
    }
}

#[test]
fn fuzz_sql_never_panics() {
    let db = fresh_db();
    let replayed = fuzz::replay_corpus("sql", |data| {
        let sql = String::from_utf8_lossy(data).into_owned();
        fuzz::check_no_panic("sql", "replay", data, || run_one(&db, &sql));
    });
    println!("replayed {replayed} corpus inputs");

    let mut rng = StdRng::seed_from_u64(0xF0220_5E11);
    for i in 0..CASES {
        let sql = match rng.random_range(0..4u32) {
            0 => {
                let seed = rng.choose(SEEDS).copied().unwrap_or("SELECT 1");
                let bytes = fuzz::mutate(&mut rng, seed.as_bytes());
                String::from_utf8_lossy(&bytes).into_owned()
            }
            1 => token_soup(&mut rng),
            2 => {
                let d = rng.random_range(1..8usize);
                gen_select(&mut rng, d)
            }
            // Stress the nesting limit from both sides.
            _ => {
                let d = rng.random_range(1..100usize);
                format!("SELECT {}1{}", "(".repeat(d), ")".repeat(d))
            }
        };
        let label = format!("sql-{i}");
        fuzz::check_no_panic("sql", &label, sql.as_bytes(), || run_one(&db, &sql));
    }
}

#[test]
fn fuzz_sql_scripts_never_panic() {
    let db = fresh_db();
    let mut rng = StdRng::seed_from_u64(0x5C21_97);
    for i in 0..200 {
        let k = rng.random_range(1..4usize);
        let mut script = String::new();
        for _ in 0..k {
            script.push_str(rng.choose(SEEDS).copied().unwrap_or("SELECT 1"));
            script.push(';');
        }
        let bytes = fuzz::mutate(&mut rng, script.as_bytes());
        let script = String::from_utf8_lossy(&bytes).into_owned();
        let label = format!("script-{i}");
        fuzz::check_no_panic("sql", &label, script.as_bytes(), || {
            match db.execute_script(&script) {
                Ok(_) => {}
                Err(e) => {
                    assert!(!e.is_internal(), "internal error on script {script:?}: {e}")
                }
            }
        });
    }
}
