//! Engine-level durability: WAL attach/recover round trips on both
//! engines, `CHECKPOINT`, the `PRAGMA wal` surface, recovery edge cases
//! (empty log, torn tail, missing log, CRC corruption), and statement
//! atomicity under failure.
//!
//! The failpoint registry and the metrics registry are process-global,
//! so tests that arm failpoints serialize behind `SERIAL` (shared with
//! `crash_torture.rs` via file-level separation: this file only uses
//! failpoints in the atomicity tests).

use std::path::PathBuf;
use std::sync::Mutex;

use mduck_rowdb::RowDatabase;
use mduck_sql::{SqlError, Value};
use mduck_wal::failpoint;
use quackdb::Database;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A unique WAL path per test; removes leftovers from earlier runs.
fn wal_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mduck_dur_{}_{name}.wal", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(format!("{}.ckpt", p.display()));
    let _ = std::fs::remove_file(format!("{}.ckpt.tmp", p.display()));
}

fn ints(r: &[Vec<Value>]) -> Vec<i64> {
    r.iter()
        .map(|row| match &row[0] {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect()
}

/// The workload both round-trip tests run: DDL, multi-row INSERT,
/// UPDATE, DELETE, a second table that is dropped again, and an index.
fn run_workload(exec: &mut dyn FnMut(&str) -> Result<Vec<Vec<Value>>, SqlError>) {
    exec("CREATE TABLE t(id INTEGER, label TEXT)").unwrap();
    exec("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, 'four')").unwrap();
    exec("UPDATE t SET label = 'TWO' WHERE id = 2").unwrap();
    exec("DELETE FROM t WHERE id = 3").unwrap();
    exec("CREATE TABLE scratch(x INTEGER)").unwrap();
    exec("INSERT INTO scratch VALUES (9)").unwrap();
    exec("DROP TABLE scratch").unwrap();
    exec("INSERT INTO t VALUES (5, 'five')").unwrap();
}

/// What the workload must look like after recovery.
fn check_workload(exec: &mut dyn FnMut(&str) -> Result<Vec<Vec<Value>>, SqlError>) {
    let rows = exec("SELECT id FROM t ORDER BY id").unwrap();
    assert_eq!(ints(&rows), vec![1, 2, 4, 5]);
    let rows = exec("SELECT label FROM t WHERE id = 2").unwrap();
    assert_eq!(rows[0][0], Value::text("TWO"));
    // The scratch table was dropped before the "crash".
    assert!(exec("SELECT * FROM scratch").is_err());
    let rows = exec("SELECT label FROM t WHERE id = 5").unwrap();
    assert_eq!(rows[0][0], Value::text("five"));
}

#[test]
fn vec_wal_roundtrip_ddl_dml() {
    let path = wal_path("vec_roundtrip");
    {
        let db = Database::open(&path).unwrap();
        run_workload(&mut |sql| db.execute(sql).map(|r| r.rows));
    }
    let db = Database::open(&path).unwrap();
    check_workload(&mut |sql| db.execute(sql).map(|r| r.rows));
    cleanup(&path);
}

#[test]
fn row_wal_roundtrip_ddl_dml() {
    let path = wal_path("row_roundtrip");
    {
        let db = RowDatabase::open(&path).unwrap();
        run_workload(&mut |sql| db.execute(sql).map(|r| r.rows));
        // The row engine ships a BTREE access method; the index DDL and
        // the rows appended after it must both recover.
        db.execute("CREATE INDEX t_id ON t USING BTREE(id)").unwrap();
        db.execute("INSERT INTO t VALUES (6, 'six')").unwrap();
    }
    let db = RowDatabase::open(&path).unwrap();
    let rows = db.execute("SELECT id FROM t ORDER BY id").unwrap().rows;
    assert_eq!(ints(&rows), vec![1, 2, 4, 5, 6]);
    let rows = db.execute("SELECT label FROM t WHERE id = 2").unwrap().rows;
    assert_eq!(rows[0][0], Value::text("TWO"));
    assert!(db.execute("SELECT * FROM scratch").is_err());
    // Equality probe through the recovered BTREE index.
    let rows = db.execute("SELECT label FROM t WHERE id = 6").unwrap().rows;
    assert_eq!(rows[0][0], Value::text("six"));
    cleanup(&path);
}

#[test]
fn engines_recover_identical_state_from_shared_wal_format() {
    // The WAL is engine-agnostic: a log written by the vectorized engine
    // recovers into the row engine with identical query results.
    let path = wal_path("cross_engine");
    {
        let db = Database::open(&path).unwrap();
        run_workload(&mut |sql| db.execute(sql).map(|r| r.rows));
    }
    let db = RowDatabase::open(&path).unwrap();
    let rows = db.execute("SELECT id FROM t ORDER BY id").unwrap().rows;
    assert_eq!(ints(&rows), vec![1, 2, 4, 5]);
    cleanup(&path);
}

#[test]
fn pragma_wal_attach_detach_and_checkpoint_statement() {
    let path = wal_path("pragma");
    let path_str = path.to_str().unwrap().to_string();

    let db = Database::new();
    // No WAL yet: CHECKPOINT is a clean no-op, PRAGMA wal reports "off".
    let r = db.execute("CHECKPOINT").unwrap();
    assert_eq!(r.rows[0][0], Value::text("no wal"));
    let r = db.execute("PRAGMA wal").unwrap();
    assert_eq!(r.rows[0][0], Value::text("off"));

    // Pre-attach state is captured by the attach-time checkpoint.
    db.execute("CREATE TABLE pre(x INTEGER)").unwrap();
    db.execute("INSERT INTO pre VALUES (1)").unwrap();
    let r = db.execute(&format!("PRAGMA wal='{path_str}'")).unwrap();
    assert_eq!(r.rows[0][0], Value::text(path_str.clone()));
    db.execute("INSERT INTO pre VALUES (2)").unwrap();

    // Explicit CHECKPOINT truncates the log back to its header.
    let r = db.execute("CHECKPOINT").unwrap();
    assert_eq!(r.rows[0][0], Value::text("ok"));
    assert_eq!(db.wal().unwrap().wal_len(), mduck_wal::WAL_HEADER_LEN);

    // Re-attaching while attached is a typed error, not a corruption.
    assert!(db.execute(&format!("PRAGMA wal='{path_str}'")).is_err());

    // Detach; later statements stay in-memory-only.
    db.execute("PRAGMA wal='off'").unwrap();
    assert!(db.wal().is_none());
    db.execute("INSERT INTO pre VALUES (99)").unwrap();

    // Recovery sees the checkpoint + logged rows, not the post-detach one.
    let db2 = Database::open(&path).unwrap();
    let rows = db2.execute("SELECT x FROM pre ORDER BY x").unwrap().rows;
    assert_eq!(ints(&rows), vec![1, 2]);
    cleanup(&path);
}

#[test]
fn row_pragma_wal_surface() {
    let path = wal_path("row_pragma");
    let path_str = path.to_str().unwrap().to_string();
    let db = RowDatabase::new();
    let r = db.execute("CHECKPOINT").unwrap();
    assert_eq!(r.rows[0][0], Value::text("no wal"));
    db.execute(&format!("PRAGMA wal='{path_str}'")).unwrap();
    db.execute("CREATE TABLE t(x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    let r = db.execute("CHECKPOINT").unwrap();
    assert_eq!(r.rows[0][0], Value::text("ok"));
    db.execute("PRAGMA wal='off'").unwrap();

    let db2 = RowDatabase::open(&path).unwrap();
    assert_eq!(ints(&db2.execute("SELECT x FROM t").unwrap().rows), vec![7]);
    cleanup(&path);
}

#[test]
fn wal_autocheckpoint_pragma_and_size_trigger() {
    let path = wal_path("autockpt");
    let path_str = path.to_str().unwrap().to_string();
    let db = Database::new();

    // Setting the threshold without a WAL is a typed error.
    assert!(db.execute("PRAGMA wal_autocheckpoint=1024").is_err());

    db.execute(&format!("PRAGMA wal='{path_str}'")).unwrap();
    let r = db.execute("PRAGMA wal_autocheckpoint=64").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(64));
    assert!(db.execute("PRAGMA wal_autocheckpoint=-1").is_err());

    db.execute("CREATE TABLE t(x INTEGER)").unwrap();
    // Any append pushes past 64 bytes, so the statement itself triggers
    // an auto-checkpoint and the log shrinks back to its header.
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    assert_eq!(db.wal().unwrap().wal_len(), mduck_wal::WAL_HEADER_LEN);
    assert!(db.wal().unwrap().checkpoint_path().exists());

    // The checkpointed state recovers without any WAL records.
    let db2 = Database::open(&path).unwrap();
    assert_eq!(ints(&db2.execute("SELECT x FROM t ORDER BY x").unwrap().rows), vec![1, 2, 3]);
    cleanup(&path);
}

// ------------------------------------------------------ recovery edges

#[test]
fn empty_wal_file_opens_as_fresh_database() {
    let path = wal_path("empty");
    std::fs::write(&path, b"").unwrap();
    let db = Database::open(&path).unwrap();
    assert!(db.execute("SELECT * FROM anything").is_err());
    db.execute("CREATE TABLE t(x INTEGER)").unwrap();
    drop(db);
    let db = RowDatabase::open(&path).unwrap();
    assert!(db.execute("SELECT * FROM t").unwrap().rows.is_empty());
    cleanup(&path);
}

#[test]
fn torn_tail_only_wal_recovers_to_empty_and_truncates() {
    let path = wal_path("torn_only");
    // Header + a few bytes of a frame that never finished: the residue
    // of a crash during the very first append.
    let mut bytes = b"MDWL".to_vec();
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
    std::fs::write(&path, &bytes).unwrap();

    let db = Database::open(&path).unwrap();
    assert!(db.execute("SELECT * FROM t").is_err(), "no tables should exist");
    drop(db);
    // The torn tail was truncated durably.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), mduck_wal::WAL_HEADER_LEN);
    cleanup(&path);
}

#[test]
fn checkpoint_present_but_wal_missing_recovers_from_checkpoint() {
    let path = wal_path("ckpt_no_wal");
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t(x INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (5), (6)").unwrap();
        db.execute("CHECKPOINT").unwrap();
    }
    std::fs::remove_file(&path).unwrap();
    let db = Database::open(&path).unwrap();
    assert_eq!(ints(&db.execute("SELECT x FROM t ORDER BY x").unwrap().rows), vec![5, 6]);
    cleanup(&path);
}

#[test]
fn crc_byte_flip_mid_log_surfaces_typed_corruption() {
    let path = wal_path("crcflip");
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t(x INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
    }
    // Flip one payload byte of the FIRST frame: a complete frame whose
    // CRC no longer matches is corruption, not a torn tail.
    let mut bytes = std::fs::read(&path).unwrap();
    let off = mduck_wal::WAL_HEADER_LEN as usize + 8 + 10;
    bytes[off] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    for res in [
        Database::open(&path).map(|_| ()),
        RowDatabase::open(&path).map(|_| ()),
    ] {
        match res {
            Err(SqlError::Corruption(msg)) => {
                assert!(msg.contains("CRC"), "message should name the CRC check: {msg}")
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
    }
    cleanup(&path);
}

#[test]
fn foreign_file_is_rejected_by_both_engines() {
    let path = wal_path("foreign");
    std::fs::write(&path, b"\x89PNG not a wal at all").unwrap();
    assert!(matches!(Database::open(&path), Err(SqlError::Corruption(_))));
    assert!(matches!(RowDatabase::open(&path), Err(SqlError::Corruption(_))));
    // Refused, not clobbered.
    assert!(std::fs::read(&path).unwrap().starts_with(b"\x89PNG"));
    cleanup(&path);
}

// ------------------------------------------------- statement atomicity

#[test]
fn vec_failed_wal_append_rolls_back_insert() {
    let _lock = serial();
    let path = wal_path("vec_atomic");
    let db = Database::open(&path).unwrap();
    db.execute("CREATE TABLE t(x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    failpoint::clear_all();
    failpoint::set("wal.append.sync", mduck_wal::FailAction::Error, 1);
    let err = db.execute("INSERT INTO t VALUES (2), (3)").unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    failpoint::clear_all();

    // The failed statement left nothing behind, in memory or on disk.
    assert_eq!(ints(&db.execute("SELECT x FROM t").unwrap().rows), vec![1]);
    drop(db);
    let db2 = Database::open(&path).unwrap();
    assert_eq!(ints(&db2.execute("SELECT x FROM t").unwrap().rows), vec![1]);
    cleanup(&path);
}

#[test]
fn row_failed_wal_append_rolls_back_update_and_delete() {
    let _lock = serial();
    let path = wal_path("row_atomic");
    let db = RowDatabase::open(&path).unwrap();
    db.execute("CREATE TABLE t(x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    failpoint::clear_all();
    failpoint::set("wal.append.payload", mduck_wal::FailAction::ShortWrite, 1);
    assert!(db.execute("UPDATE t SET x = x + 10").is_err());
    assert_eq!(ints(&db.execute("SELECT x FROM t ORDER BY x").unwrap().rows), vec![1, 2, 3]);

    failpoint::set("wal.append.header", mduck_wal::FailAction::Error, 1);
    assert!(db.execute("DELETE FROM t WHERE x = 2").is_err());
    failpoint::clear_all();
    assert_eq!(ints(&db.execute("SELECT x FROM t ORDER BY x").unwrap().rows), vec![1, 2, 3]);

    drop(db);
    let db2 = RowDatabase::open(&path).unwrap();
    assert_eq!(ints(&db2.execute("SELECT x FROM t ORDER BY x").unwrap().rows), vec![1, 2, 3]);
    cleanup(&path);
}

#[test]
fn memory_limit_trip_mid_insert_leaves_both_engines_unchanged() {
    // A guard trip inside INSERT ... SELECT must behave like any other
    // statement failure: no partial rows, nothing in the WAL.
    let vec_path = wal_path("vec_memtrip");
    let row_path = wal_path("row_memtrip");

    let vdb = Database::open(&vec_path).unwrap();
    let rdb = RowDatabase::open(&row_path).unwrap();
    for db in [&vdb as &dyn Exec, &rdb as &dyn Exec] {
        db.run("CREATE TABLE src(x INTEGER)").unwrap();
        db.run("INSERT INTO src VALUES (1), (2), (3), (4), (5), (6), (7), (8)").unwrap();
        db.run("CREATE TABLE sink(a INTEGER, b INTEGER, c INTEGER)").unwrap();
        // 8^3 = 512 cross-join rows through a hash-free nested loop still
        // allocates enough tracked vectors to trip a 1-byte budget.
        db.run("PRAGMA memory_limit=1").unwrap();
        let err = db
            .run("INSERT INTO sink SELECT a.x, b.x, c.x FROM src a, src b, src c")
            .unwrap_err();
        assert!(
            matches!(err, SqlError::ResourceExhausted(_)),
            "expected a guard trip, got {err:?}"
        );
        db.run("PRAGMA memory_limit='unlimited'").unwrap();
        assert!(db.run("SELECT * FROM sink").unwrap().is_empty(), "partial insert leaked");
    }
    drop(vdb);
    drop(rdb);
    // The tripped statement reached neither WAL.
    let vdb = Database::open(&vec_path).unwrap();
    assert!(vdb.execute("SELECT * FROM sink").unwrap().rows.is_empty());
    let rdb = RowDatabase::open(&row_path).unwrap();
    assert!(rdb.execute("SELECT * FROM sink").unwrap().rows.is_empty());
    cleanup(&vec_path);
    cleanup(&row_path);
}

/// Object-safe shim so the atomicity test can iterate both engines.
trait Exec {
    fn run(&self, sql: &str) -> Result<Vec<Vec<Value>>, SqlError>;
}

impl Exec for Database {
    fn run(&self, sql: &str) -> Result<Vec<Vec<Value>>, SqlError> {
        self.execute(sql).map(|r| r.rows)
    }
}

impl Exec for RowDatabase {
    fn run(&self, sql: &str) -> Result<Vec<Vec<Value>>, SqlError> {
        self.execute(sql).map(|r| r.rows)
    }
}

// ------------------------------------------------- extension values

#[test]
fn ext_values_roundtrip_through_wal_and_checkpoint() {
    let path = wal_path("ext");
    let open_loaded = |p: &PathBuf| -> Database {
        // Extensions must be loaded before the WAL is attached so the
        // ext codecs can decode recovered values.
        let db = Database::new();
        mobilityduck::load(&db);
        db.attach_wal(p).unwrap();
        db
    };
    {
        let db = open_loaded(&path);
        db.execute("CREATE TABLE trips(vid INTEGER, trip TGEOMPOINT)").unwrap();
        db.execute(
            "INSERT INTO trips VALUES \
             (1, '[Point(0 0)@2025-01-01 08:00:00, Point(1000 0)@2025-01-01 08:10:00]'::tgeompoint)",
        )
        .unwrap();
        // A TRTREE over a temporal column: the index definition must
        // recover (rebuilt from recovered rows) along with the data.
        db.execute("CREATE INDEX trips_idx ON trips USING TRTREE(trip)").unwrap();
    }
    // Recover from the WAL, then checkpoint and recover from the image:
    // both paths must decode the extension value identically.
    let expected = {
        let db = open_loaded(&path);
        let rows = db.execute("SELECT asText(trip) FROM trips").unwrap().rows;
        db.execute("CHECKPOINT").unwrap();
        rows
    };
    let db = open_loaded(&path);
    let rows = db.execute("SELECT asText(trip) FROM trips").unwrap().rows;
    assert_eq!(rows, expected);
    assert!(matches!(&rows[0][0], Value::Text(s) if s.contains("POINT")), "{rows:?}");
    cleanup(&path);
}
