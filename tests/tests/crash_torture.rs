//! Crash-torture harness: simulate a process death at every registered
//! durability failpoint, at every hit index the workload reaches, on
//! both engines — then reopen and assert the recovered state equals the
//! committed prefix (exactly the statements that reported success).
//!
//! The failpoint registry is process-global, so everything here
//! serializes behind one lock. `scripts/verify.sh` runs this file both
//! serially and under `MDUCK_THREADS=4` (the vectorized engine picks
//! the worker count up from the environment).

use std::path::PathBuf;
use std::sync::Mutex;

use mduck_sql::{SqlError, Value};
use mduck_wal::{failpoint, FailAction};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The torture workload, shared by both engines: ingest-heavy with a
/// tight auto-checkpoint threshold so checkpoint failpoints are hit
/// mid-run, plus updates, deletes and DDL churn.
///
/// `PRAGMA`/`CHECKPOINT` statements configure durability only — they
/// carry no logical state and are skipped when replaying the committed
/// prefix into the in-memory reference database.
fn workload() -> Vec<String> {
    let mut w = vec![
        "PRAGMA wal_autocheckpoint=700".to_string(),
        "CREATE TABLE obs(id INTEGER, vid INTEGER, label TEXT)".to_string(),
        "CREATE TABLE dict(k INTEGER, v TEXT)".to_string(),
    ];
    for i in 0..10i64 {
        w.push(format!(
            "INSERT INTO obs VALUES ({}, {}, 'p{}'), ({}, {}, 'q{}')",
            2 * i,
            i % 3,
            i,
            2 * i + 1,
            i % 3,
            i
        ));
    }
    w.push("INSERT INTO dict VALUES (1, 'one'), (2, 'two')".into());
    w.push("UPDATE obs SET label = 'hot' WHERE vid = 0".into());
    w.push("DELETE FROM obs WHERE id >= 16".into());
    w.push("CHECKPOINT".into());
    w.push("DROP TABLE dict".into());
    w.push("INSERT INTO obs VALUES (100, 9, 'tail')".into());
    w.push("UPDATE obs SET vid = vid + 10 WHERE id < 4".into());
    w
}

fn is_durability_stmt(sql: &str) -> bool {
    sql.starts_with("PRAGMA") || sql.starts_with("CHECKPOINT")
}

/// Tables the workload may leave behind, with a deterministic dump
/// query per table.
const DUMPS: &[(&str, &str)] = &[
    ("obs", "SELECT id, vid, label FROM obs ORDER BY id"),
    ("dict", "SELECT k, v FROM dict ORDER BY k"),
];

/// One engine under torture, behind an object-safe facade so the
/// harness is written once.
trait Engine {
    fn fresh(&self) -> Box<dyn Exec>;
    fn open(&self, path: &PathBuf) -> Result<Box<dyn Exec>, SqlError>;
    fn name(&self) -> &'static str;
}

trait Exec {
    fn run(&self, sql: &str) -> Result<Vec<Vec<Value>>, SqlError>;
}

struct Vec_;
struct Row_;

impl Engine for Vec_ {
    fn fresh(&self) -> Box<dyn Exec> {
        Box::new(quackdb::Database::new())
    }
    fn open(&self, path: &PathBuf) -> Result<Box<dyn Exec>, SqlError> {
        quackdb::Database::open(path).map(|db| Box::new(db) as Box<dyn Exec>)
    }
    fn name(&self) -> &'static str {
        "quackdb"
    }
}

impl Engine for Row_ {
    fn fresh(&self) -> Box<dyn Exec> {
        Box::new(mduck_rowdb::RowDatabase::new())
    }
    fn open(&self, path: &PathBuf) -> Result<Box<dyn Exec>, SqlError> {
        mduck_rowdb::RowDatabase::open(path).map(|db| Box::new(db) as Box<dyn Exec>)
    }
    fn name(&self) -> &'static str {
        "rowdb"
    }
}

impl Exec for quackdb::Database {
    fn run(&self, sql: &str) -> Result<Vec<Vec<Value>>, SqlError> {
        self.execute(sql).map(|r| r.rows)
    }
}

impl Exec for mduck_rowdb::RowDatabase {
    fn run(&self, sql: &str) -> Result<Vec<Vec<Value>>, SqlError> {
        self.execute(sql).map(|r| r.rows)
    }
}

fn wal_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("mduck_torture_{}_{name}.wal", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(format!("{}.ckpt", p.display()));
    let _ = std::fs::remove_file(format!("{}.ckpt.tmp", p.display()));
}

/// Dump every workload table from a live database; a missing table
/// dumps as `None` so "table absent" is part of the compared state.
fn dump_state(db: &dyn Exec) -> Vec<(String, Option<Vec<Vec<Value>>>)> {
    DUMPS
        .iter()
        .map(|(name, sql)| (name.to_string(), db.run(sql).ok()))
        .collect()
}

/// Replay the committed statements into a fresh in-memory instance and
/// dump the state they should have produced.
fn expected_state(
    engine: &dyn Engine,
    committed: &[String],
) -> Vec<(String, Option<Vec<Vec<Value>>>)> {
    let db = engine.fresh();
    for sql in committed {
        if is_durability_stmt(sql) {
            continue;
        }
        db.run(sql).unwrap_or_else(|e| panic!("reference replay of {sql:?} failed: {e}"));
    }
    dump_state(db.as_ref())
}

/// Count how many times each failpoint site fires during one clean
/// (failure-free) run of the workload, including the open itself.
fn enumerate_crash_points(engine: &dyn Engine) -> Vec<(String, u64)> {
    let path = wal_path(&format!("{}_clean", engine.name()));
    failpoint::clear_all();
    let db = engine.open(&path).unwrap();
    for sql in workload() {
        db.run(&sql).unwrap_or_else(|e| panic!("clean run of {sql:?} failed: {e}"));
    }
    let counts = failpoint::hit_counts();
    failpoint::clear_all();
    cleanup(&path);
    let mut points = Vec::new();
    for (site, hits) in counts {
        for k in 1..=hits {
            points.push((site.clone(), k));
        }
    }
    points
}

/// Crash at `(site, hit)`, reopen, and require the recovered state to
/// equal the committed prefix exactly.
fn torture_one(engine: &dyn Engine, site: &str, hit: u64, action: FailAction) {
    let path = wal_path(&format!("{}_{}_{hit}", engine.name(), site.replace('.', "_")));
    failpoint::clear_all();
    failpoint::set_seed(0xD0C5EED ^ hit);
    failpoint::set(site, action, hit);

    let mut committed: Vec<String> = Vec::new();
    match engine.open(&path) {
        Ok(db) => {
            for sql in workload() {
                match db.run(&sql) {
                    Ok(_) => committed.push(sql),
                    // Process death: nothing later would have run.
                    Err(_) => break,
                }
            }
        }
        // The failpoint fired inside open(): nothing ever committed.
        Err(_) => {}
    }

    failpoint::clear_all();
    let recovered = engine
        .open(&path)
        .unwrap_or_else(|e| panic!("{}: reopen after {site}@{hit} failed: {e}", engine.name()));
    let got = dump_state(recovered.as_ref());
    let want = expected_state(engine, &committed);
    assert_eq!(
        got,
        want,
        "{}: state after crash at {site}@{hit} diverges from the committed prefix \
         ({} committed statements)",
        engine.name(),
        committed.len()
    );
    // The recovered database must be fully usable, not just readable.
    recovered
        .run("INSERT INTO obs VALUES (999, 0, 'post')")
        .or_else(|_| recovered.run("CREATE TABLE obs(id INTEGER, vid INTEGER, label TEXT)"))
        .unwrap_or_else(|e| panic!("{}: recovered db not writable: {e}", engine.name()));
    cleanup(&path);
}

fn torture_engine(engine: &dyn Engine) {
    let points = enumerate_crash_points(engine);
    assert!(
        points.len() >= 50,
        "{}: workload reaches only {} crash points (need ≥50 for coverage)",
        engine.name(),
        points.len()
    );
    // Every site the workload exercises must be in the registered
    // catalog — a typo'd site name would otherwise never fire.
    for (site, _) in &points {
        assert!(failpoint::SITES.contains(&site.as_str()), "unregistered site {site}");
    }
    for (site, hit) in &points {
        torture_one(engine, site, *hit, FailAction::Crash);
    }
    // Short writes take the same recovery path but leave torn bytes the
    // truncation must clean up; spot-check every append-path site.
    for site in ["wal.append.header", "wal.append.payload", "wal.append.sync"] {
        torture_one(engine, site, 3, FailAction::ShortWrite);
    }
}

#[test]
fn vec_engine_survives_crash_at_every_failpoint() {
    let _lock = serial();
    torture_engine(&Vec_);
}

#[test]
fn row_engine_survives_crash_at_every_failpoint() {
    let _lock = serial();
    torture_engine(&Row_);
}

#[test]
fn torture_covers_at_least_fifty_distinct_crash_points() {
    let _lock = serial();
    // The acceptance floor, checked explicitly so a workload change that
    // silently shrinks coverage fails loudly.
    let v = enumerate_crash_points(&Vec_).len();
    let r = enumerate_crash_points(&Row_).len();
    assert!(v >= 50 && r >= 50, "coverage shrank: quackdb={v} rowdb={r}");
}
