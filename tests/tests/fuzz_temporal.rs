//! Deterministic fuzzing of the temporal-literal parsers and the binary
//! deserializers: every input must produce `Ok` or a typed
//! `TemporalError` — never a panic. Crashers are persisted under
//! `tests/corpus/temporal/`.

use mduck_integration::fuzz;
use mduck_prng::{RngCore, RngExt, SeedableRng, StdRng};
use mduck_temporal::binser;
use mduck_temporal::temporal::{parse_tbool, parse_tfloat, parse_tgeompoint, parse_tint, parse_ttext};
use mduck_temporal::{
    parse_date, parse_geomset, parse_interval, parse_set, parse_span, parse_spanset, parse_stbox,
    parse_tbox, parse_timestamp, FloatSpan, IntSpan, Set, TstzSpan, TstzSpanSet,
};

const CASES: usize = 1500;

/// Valid literals across every temporal surface; mutations start here.
const SEEDS: &[&str] = &[
    "Point(1 2)@2025-01-01 08:00:00",
    "[Point(0 0)@2025-01-01 08:00:00, Point(10 0)@2025-01-01 08:10:00]",
    "(Point(0 0)@2025-01-01, Point(5 5)@2025-01-02]",
    "{[Point(0 0)@2025-01-01, Point(1 1)@2025-01-02], [Point(9 9)@2025-02-01, Point(8 8)@2025-02-02]}",
    "SRID=3857;[Point(0 0)@2025-01-01, Point(1 1)@2025-01-02]",
    "Interp=Step;[1.5@2025-01-01, 2.5@2025-01-02]",
    "{1@2025-01-01, 2@2025-01-02, 3@2025-01-03}",
    "true@2025-01-01 00:00:00+00",
    "\"hello @ world\"@2025-06-15 12:30:00",
    "[1, 10)",
    "(-2.5, 7.25]",
    "[2025-01-01 08:00:00, 2025-01-01 09:00:00]",
    "{[1, 3), [5, 9]}",
    "{1, 2, 3}",
    "{2025-01-01, 2025-06-01}",
    "{Point(1 1), Point(2 2)}",
    "STBOX X((1.0,2.0),(3.0,4.0))",
    "STBOX XT(((1,2),(3,4)),[2025-01-01, 2025-01-02])",
    "STBOX T([2025-01-01, 2025-01-02])",
    "SRID=4326;STBOX X((0,0),(1,1))",
    "TBOX XT([1, 5],[2025-01-01, 2025-01-02])",
    "TBOX X([1.5, 2.5])",
    "2025-01-01 08:00:00.123456+02",
    "2025-12-31",
    "1 day 2 hours 3 minutes",
    "-5 days",
    "@ 1 year 2 mons",
    "[NaN, 1)",
    "[-1e999, 1e999]",
    "NaN@2025-01-01",
    "1e999@2025-01-01",
];

/// Every string parser on the temporal surface; an input must never
/// panic any of them (each sees every input — cross-surface confusion is
/// exactly what hand-written parsers get wrong).
fn run_all_parsers(s: &str) {
    let _ = parse_tgeompoint(s);
    let _ = parse_tbool(s);
    let _ = parse_tint(s);
    let _ = parse_tfloat(s);
    let _ = parse_ttext(s);
    let _ = parse_span::<i64>(s).map(|sp: IntSpan| sp);
    let _ = parse_span::<f64>(s).map(|sp: FloatSpan| sp);
    let _ = parse_span::<mduck_temporal::TimestampTz>(s).map(|sp: TstzSpan| sp);
    let _ = parse_spanset::<mduck_temporal::TimestampTz>(s).map(|ss: TstzSpanSet| ss);
    let _ = parse_spanset::<i64>(s);
    let _ = parse_set::<i64>(s).map(|st: Set<i64>| st);
    let _ = parse_set::<f64>(s);
    let _ = parse_set::<mduck_temporal::TimestampTz>(s);
    let _ = parse_geomset(s);
    let _ = parse_stbox(s);
    let _ = parse_tbox(s);
    let _ = parse_timestamp(s);
    let _ = parse_date(s);
    let _ = parse_interval(s);
}

#[test]
fn fuzz_temporal_literals_never_panic() {
    let replayed = fuzz::replay_corpus("temporal", |data| {
        let s = String::from_utf8_lossy(data).into_owned();
        fuzz::check_no_panic("temporal", "replay", data, || run_all_parsers(&s));
    });
    println!("replayed {replayed} corpus inputs");

    let mut rng = StdRng::seed_from_u64(0x7E4_9021);
    for i in 0..CASES {
        let input = if rng.random_bool(0.8) {
            let seed = rng.choose(SEEDS).copied().unwrap_or("[1, 2)");
            let bytes = fuzz::mutate(&mut rng, seed.as_bytes());
            String::from_utf8_lossy(&bytes).into_owned()
        } else {
            // Pure noise: brackets, digits, separators.
            let n = rng.random_range(0..64usize);
            (0..n)
                .map(|_| {
                    *rng.choose(b"[](){}@,;= .-+0123456789aeNfPoint\"'TBOXSRID").unwrap_or(&b'0')
                        as char
                })
                .collect()
        };
        let label = format!("lit-{i}");
        fuzz::check_no_panic("temporal", &label, input.as_bytes(), || run_all_parsers(&input));
    }
}

/// The binary deserializers see three byte streams: pure noise, truncated
/// valid encodings, and bit-flipped valid encodings.
#[test]
fn fuzz_temporal_binser_never_panics() {
    let replayed = fuzz::replay_corpus("temporal-bin", |data| {
        fuzz::check_no_panic("temporal-bin", "replay", data, || {
            let _ = binser::tgeompoint_from_bytes(data);
            let _ = binser::tstzspan_from_bytes(data);
            let _ = binser::stbox_from_bytes(data);
        });
    });
    println!("replayed {replayed} corpus inputs");

    let trip = parse_tgeompoint("[Point(0 0)@2025-01-01, Point(10 5)@2025-01-02]").unwrap();
    let span = parse_span::<mduck_temporal::TimestampTz>("[2025-01-01, 2025-06-01]").unwrap();
    let bbox = parse_stbox("STBOX XT(((0,0),(10,5)),[2025-01-01, 2025-01-02])").unwrap();
    let valid: Vec<Vec<u8>> = vec![
        binser::tgeompoint_to_bytes(&trip),
        binser::tstzspan_to_bytes(&span),
        binser::stbox_to_bytes(&bbox),
    ];

    let mut rng = StdRng::seed_from_u64(0xB1_5E7);
    for i in 0..CASES {
        let bytes = match rng.random_range(0..3u32) {
            0 => {
                let n = rng.random_range(0..200usize);
                let mut b = vec![0u8; n];
                rng.fill_bytes(&mut b);
                b
            }
            1 => {
                let v = rng.choose(&valid).cloned().unwrap_or_default();
                let cut = rng.random_range(0..=v.len());
                v[..cut].to_vec()
            }
            _ => {
                let v = rng.choose(&valid).cloned().unwrap_or_default();
                fuzz::mutate(&mut rng, &v)
            }
        };
        let label = format!("bin-{i}");
        fuzz::check_no_panic("temporal-bin", &label, &bytes, || {
            let _ = binser::tgeompoint_from_bytes(&bytes);
            let _ = binser::tstzspan_from_bytes(&bytes);
            let _ = binser::stbox_from_bytes(&bytes);
        });
    }
}
