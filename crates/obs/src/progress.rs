//! Live query progress: cardinality-based completion estimates that are
//! monotone and safe to poll from another thread.
//!
//! Each statement registers a [`QueryProgress`] at start. Executors feed
//! it *work units* — morsels claimed vs. dispatched, scan chunks produced
//! vs. table chunk counts — via [`QueryProgress::add_total`] /
//! [`QueryProgress::add_done`]. The reported fraction is made monotone by
//! a `fetch_max` floor (in millionths), so a poller never sees progress
//! move backwards even while total work is still being discovered, and it
//! is capped below `1.0` until [`QueryProgress::finish`] runs.
//!
//! A process-global registry keeps every in-flight query plus a tail of
//! recently finished ones; `mduck_progress()` projects it into SQL.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mduck_sync::Mutex;

/// Finished entries retained in the registry for `mduck_progress()`.
const FINISHED_RETAINED: usize = 32;

/// Denominator of the monotone fraction floor.
const MICRO: u64 = 1_000_000;

/// Progress ceiling while a query is still running.
const RUNNING_CAP: u64 = MICRO - 1;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Shared progress state for one statement.
#[derive(Debug)]
pub struct QueryProgress {
    id: u64,
    sql: String,
    total: AtomicU64,
    done: AtomicU64,
    /// Monotone floor of the reported fraction, in millionths.
    floor: AtomicU64,
    finished: AtomicBool,
}

/// A point-in-time copy of one registry entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    pub id: u64,
    pub sql: String,
    pub units_done: u64,
    pub units_total: u64,
    pub fraction: f64,
    pub finished: bool,
}

impl QueryProgress {
    /// Register a new in-flight statement.
    pub fn begin(sql: &str) -> Arc<QueryProgress> {
        let p = Arc::new(QueryProgress {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            sql: sql.to_string(),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            finished: AtomicBool::new(false),
        });
        let mut reg = registry().lock();
        reg.push_back(Arc::clone(&p));
        // Evict the oldest *finished* entries; in-flight ones stay.
        while reg.len() > FINISHED_RETAINED {
            match reg.iter().position(|e| e.is_finished()) {
                Some(i) => {
                    reg.remove(i);
                }
                None => break,
            }
        }
        p
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// Announce `n` more units of planned work (e.g. morsels dispatched).
    /// Ignored once finished, so a stale handle held past [`finish`]
    /// (e.g. by a detached worker) cannot walk the fraction back.
    ///
    /// [`finish`]: QueryProgress::finish
    #[inline]
    pub fn add_total(&self, n: u64) {
        if self.is_finished() {
            return;
        }
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Report `n` units completed (e.g. a morsel fully processed).
    /// Ignored once finished, like [`QueryProgress::add_total`].
    #[inline]
    pub fn add_done(&self, n: u64) {
        if self.is_finished() {
            return;
        }
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Mark the statement complete; the fraction snaps to exactly `1.0`.
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Release);
        self.floor.fetch_max(MICRO, Ordering::Relaxed);
    }

    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Monotonically non-decreasing completion estimate in `[0, 1]`.
    /// Returns exactly `1.0` once finished and stays below it before.
    pub fn fraction(&self) -> f64 {
        let raw = if self.is_finished() {
            MICRO
        } else {
            let total = self.total.load(Ordering::Relaxed);
            let done = self.done.load(Ordering::Relaxed);
            if total == 0 {
                0
            } else {
                ((done.min(total) as u128 * MICRO as u128 / total as u128) as u64)
                    .min(RUNNING_CAP)
            }
        };
        let floor = self.floor.fetch_max(raw, Ordering::Relaxed).max(raw);
        floor as f64 / MICRO as f64
    }

    fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            id: self.id,
            sql: self.sql.clone(),
            units_done: self.done.load(Ordering::Relaxed),
            units_total: self.total.load(Ordering::Relaxed),
            fraction: self.fraction(),
            finished: self.is_finished(),
        }
    }
}

fn registry() -> &'static Mutex<VecDeque<Arc<QueryProgress>>> {
    static REGISTRY: OnceLock<Mutex<VecDeque<Arc<QueryProgress>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// All registry entries (in-flight + recently finished), oldest first.
pub fn progress_snapshot() -> Vec<ProgressSnapshot> {
    registry().lock().iter().map(|p| p.snapshot()).collect()
}

/// Drop every registry entry (test isolation).
pub fn reset_progress() {
    registry().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_monotone_even_when_total_grows() {
        let p = QueryProgress::begin("SELECT monotone");
        p.add_total(10);
        p.add_done(5);
        let half = p.fraction();
        assert!((half - 0.5).abs() < 1e-6);
        // New work discovered: the raw ratio drops, the report must not.
        p.add_total(90);
        assert!(p.fraction() >= half);
        p.add_done(95);
        assert!(p.fraction() < 1.0, "capped below 1.0 before finish");
        p.finish();
        assert_eq!(p.fraction(), 1.0);
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn zero_total_reports_zero_until_finish() {
        let p = QueryProgress::begin("SELECT trivial");
        assert_eq!(p.fraction(), 0.0);
        p.finish();
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn concurrent_poller_sees_non_decreasing_fractions() {
        let p = QueryProgress::begin("SELECT polled");
        p.add_total(1000);
        let samples = std::thread::scope(|s| {
            let poller = {
                let p = &p;
                s.spawn(move || {
                    let mut out = Vec::new();
                    while !p.is_finished() {
                        out.push(p.fraction());
                        std::thread::yield_now();
                    }
                    out.push(p.fraction());
                    out
                })
            };
            for _ in 0..1000 {
                p.add_done(1);
            }
            p.finish();
            poller.join().unwrap()
        });
        assert!(samples.windows(2).all(|w| w[0] <= w[1]), "{samples:?}");
        assert_eq!(*samples.last().unwrap(), 1.0);
    }

    #[test]
    fn registry_keeps_inflight_and_caps_finished() {
        reset_progress();
        let held = QueryProgress::begin("SELECT held");
        for i in 0..FINISHED_RETAINED + 20 {
            QueryProgress::begin(&format!("SELECT {i}")).finish();
        }
        let snap = progress_snapshot();
        assert!(snap.len() <= FINISHED_RETAINED + 1);
        assert!(snap.iter().any(|e| e.id == held.id()), "in-flight entry evicted");
        held.finish();
    }
}
