//! The global metrics registry: named counters, gauges, and log-scale
//! histograms behind one `&'static` handle.
//!
//! Every metric is a plain atomic, so incrementing from a hot loop costs
//! one relaxed `fetch_add` — no locks, no name hashing. The full set of
//! names is declared once in the [`define_metrics!`] invocation below;
//! `scripts/lint_metrics.sh` parses that block to enforce `snake_case`
//! and uniqueness, and `PRAGMA metrics` renders [`Metrics::snapshot`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &'static str) -> MetricSnapshot {
        MetricSnapshot {
            name,
            kind: "counter",
            value: self.get() as i64,
            detail: String::new(),
        }
    }
}

/// A signed instantaneous value (e.g. queries currently executing).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.set(0);
    }

    fn snapshot(&self, name: &'static str) -> MetricSnapshot {
        MetricSnapshot {
            name,
            kind: "gauge",
            value: self.get(),
            detail: String::new(),
        }
    }
}

/// Number of log₂ buckets: bucket `i` holds observations `v` with
/// `bit_length(v) == i`, i.e. `v == 0` lands in bucket 0 and
/// `v ∈ [2^(i-1), 2^i)` lands in bucket `i` (1 ≤ i ≤ 64).
const HISTOGRAM_BUCKETS: usize = 65;

/// A log-scale histogram of `u64` observations (typically nanoseconds).
///
/// Recording is three relaxed atomic ops plus a `fetch_max`; percentile
/// estimates are computed on demand from the bucket counts and are exact
/// to within one power of two (reported as the bucket's upper bound).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket `v` falls into: `bit_length(v)`.
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper bound of the
    /// bucket containing the `ceil(q·count)`-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &'static str) -> MetricSnapshot {
        MetricSnapshot {
            name,
            kind: "histogram",
            value: self.count() as i64,
            detail: format!(
                "count={} mean={:.0} p50={} p95={} p99={} max={}",
                self.count(),
                self.mean(),
                self.quantile(0.50),
                self.quantile(0.95),
                self.quantile(0.99),
                self.max()
            ),
        }
    }
}

/// One row of `PRAGMA metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub name: &'static str,
    pub kind: &'static str,
    /// Counter/gauge value, or the observation count for histograms.
    pub value: i64,
    /// Histogram summary (`count= mean= p50= p95= p99= max=`), empty for
    /// counters and gauges.
    pub detail: String,
}

macro_rules! define_metrics {
    (
        counters { $($cname:ident,)* }
        gauges { $($gname:ident,)* }
        histograms { $($hname:ident,)* }
    ) => {
        /// The full set of engine metrics. One instance per process,
        /// reachable through [`metrics`].
        #[derive(Debug, Default)]
        pub struct Metrics {
            $(pub $cname: Counter,)*
            $(pub $gname: Gauge,)*
            $(pub $hname: Histogram,)*
        }

        impl Metrics {
            /// All metrics, in declaration order.
            pub fn snapshot(&self) -> Vec<MetricSnapshot> {
                let mut out = Vec::new();
                $(out.push(self.$cname.snapshot(stringify!($cname)));)*
                $(out.push(self.$gname.snapshot(stringify!($gname)));)*
                $(out.push(self.$hname.snapshot(stringify!($hname)));)*
                out
            }

            /// Zero every metric (`PRAGMA reset_metrics`).
            pub fn reset(&self) {
                $(self.$cname.reset();)*
                $(self.$gname.reset();)*
                $(self.$hname.reset();)*
            }

            /// All registered metric names, in declaration order.
            pub fn names() -> &'static [&'static str] {
                &[
                    $(stringify!($cname),)*
                    $(stringify!($gname),)*
                    $(stringify!($hname),)*
                ]
            }
        }
    };
}

// The single source of truth for metric names. One name per line;
// scripts/lint_metrics.sh parses the block between the markers and
// enforces snake_case + uniqueness.
// lint-metrics-begin
define_metrics! {
    counters {
        queries_executed,
        chunks_produced,
        rows_scanned,
        rows_filtered,
        rows_joined,
        index_probes,
        full_scans,
        guard_trip_timeout,
        guard_trip_row_budget,
        guard_trip_depth,
        guard_trip_cancel,
        guard_trip_memory,
        parallel_stages,
        parallel_workers_spawned,
        morsels_dispatched,
        spans_dropped,
        queries_logged,
        querylog_sink_errors,
        wal_records_appended,
        wal_bytes_written,
        wal_checkpoints,
        wal_auto_checkpoints,
        wal_recoveries,
        wal_records_replayed,
        wal_torn_tails,
        wal_failpoint_trips,
    }
    gauges {
        active_queries,
        mem_current,
        mem_peak,
    }
    histograms {
        vecdb_parse_ns,
        vecdb_bind_ns,
        vecdb_plan_ns,
        vecdb_exec_ns,
        rowdb_parse_ns,
        rowdb_bind_ns,
        rowdb_exec_ns,
        wal_append_ns,
        wal_checkpoint_ns,
        wal_recovery_ns,
    }
}
// lint-metrics-end

/// The process-global metrics registry.
pub fn metrics() -> &'static Metrics {
    static REGISTRY: OnceLock<Metrics> = OnceLock::new();
    REGISTRY.get_or_init(Metrics::default)
}

/// Thread-local counters for one morsel worker.
///
/// Workers never touch the shared atomics while running (no contended
/// cache lines on the hot path); the coordinator merges every worker's
/// counts and flushes the total into the global registry once per
/// parallel stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Rows dropped by predicate evaluation.
    pub rows_filtered: u64,
}

impl WorkerCounters {
    pub fn merge(&mut self, other: &WorkerCounters) {
        self.rows_filtered += other.rows_filtered;
    }

    /// Flush merged counts into the global registry — one call per
    /// parallel stage, not per worker.
    pub fn flush(&self) {
        metrics().rows_filtered.inc(self.rows_filtered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_concurrent_increments() {
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_up_and_down() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_concurrent_observations() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(k * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // p50 rank is 500, in bucket 9 (256..=511): upper bound 511.
        assert_eq!(h.quantile(0.5), 511);
        // p99 rank 990 is in bucket 10 (512..=1023), capped at max=1000.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 500.5).abs() < 0.001);
        h.reset();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_covers_every_registered_name() {
        let m = Metrics::default();
        m.rows_scanned.inc(42);
        m.vecdb_exec_ns.observe(1000);
        let snap = m.snapshot();
        assert_eq!(snap.len(), Metrics::names().len());
        let rows = snap.iter().find(|s| s.name == "rows_scanned").unwrap();
        assert_eq!((rows.kind, rows.value), ("counter", 42));
        let h = snap.iter().find(|s| s.name == "vecdb_exec_ns").unwrap();
        assert_eq!((h.kind, h.value), ("histogram", 1));
        assert!(h.detail.contains("p95="), "{}", h.detail);
        m.reset();
        assert!(m.snapshot().iter().all(|s| s.value == 0));
    }

    #[test]
    fn registered_names_are_snake_case_and_unique() {
        let names = Metrics::names();
        let mut seen = std::collections::HashSet::new();
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "metric {n:?} is not snake_case"
            );
            assert!(seen.insert(n), "duplicate metric {n:?}");
        }
    }
}
