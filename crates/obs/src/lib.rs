//! # mduck-obs — engine-wide observability
//!
//! The measurement layer every perf PR measures itself against. Two
//! facilities, both dependency-free and cheap enough to stay always-on:
//!
//! * **Metrics** ([`metrics`]): a process-global registry of named
//!   counters, gauges, and log-scale histograms. Hot paths hold a
//!   `&'static` handle and pay one relaxed atomic add per event — no
//!   locks, no hashing. SQL surfaces the registry through
//!   `PRAGMA metrics` / `PRAGMA reset_metrics` in both engines.
//!
//! * **Spans** ([`span`]): a thread-local span stack whose finished spans
//!   land in a bounded in-memory ring buffer, queryable from SQL via the
//!   `mduck_spans()` table function. Query phases (parse → bind → plan →
//!   execute) are spanned always; per-operator spans are emitted when a
//!   statement runs under profiling (`EXPLAIN ANALYZE`).
//!
//! The crate deliberately knows nothing about SQL or either engine; the
//! `mduck-sql` frontend owns the SQL-facing projection of this data.

pub mod metrics;
pub mod span;

pub use metrics::{metrics, Counter, Gauge, Histogram, MetricSnapshot, Metrics, WorkerCounters};
pub use span::{
    reset_spans, span, spans_snapshot, Span, SpanRecord, SPAN_BUFFER_CAP,
};
