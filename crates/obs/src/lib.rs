//! # mduck-obs — engine-wide observability
//!
//! The measurement layer every perf PR measures itself against. Two
//! facilities, both dependency-free and cheap enough to stay always-on:
//!
//! * **Metrics** ([`metrics`]): a process-global registry of named
//!   counters, gauges, and log-scale histograms. Hot paths hold a
//!   `&'static` handle and pay one relaxed atomic add per event — no
//!   locks, no hashing. SQL surfaces the registry through
//!   `PRAGMA metrics` / `PRAGMA reset_metrics` in both engines.
//!
//! * **Spans** ([`span`]): a thread-local span stack whose finished spans
//!   land in a bounded in-memory ring buffer, queryable from SQL via the
//!   `mduck_spans()` table function. Query phases (parse → bind → plan →
//!   execute) are spanned always; per-operator spans are emitted when a
//!   statement runs under profiling (`EXPLAIN ANALYZE`).
//!
//! * **Memory accounting** ([`mem`]): hierarchical scoped byte trackers
//!   (query → operator) with atomic current/peak, mirrored into the
//!   `mem_current` / `mem_peak` gauges and enforced by the engines'
//!   `PRAGMA memory_limit`.
//!
//! * **Progress** ([`progress`]): per-statement cardinality-based
//!   completion estimates, monotone and safe to poll from another
//!   thread, queryable via `mduck_progress()`.
//!
//! * **Query log** ([`querylog`]): a bounded history of executed
//!   statements with an optional JSONL sink, queryable via
//!   `mduck_query_log()`.
//!
//! The crate deliberately knows nothing about SQL or either engine; the
//! `mduck-sql` frontend owns the SQL-facing projection of this data.

pub mod mem;
pub mod metrics;
pub mod progress;
pub mod querylog;
pub mod span;

pub use mem::{format_bytes, parse_bytes, MemTracker};
pub use metrics::{metrics, Counter, Gauge, Histogram, MetricSnapshot, Metrics, WorkerCounters};
pub use progress::{progress_snapshot, reset_progress, ProgressSnapshot, QueryProgress};
pub use querylog::{
    log_query, next_query_id, query_log_sink_active, query_log_sink_path, query_log_snapshot,
    reset_query_log, set_query_log_sink, set_slow_threshold_ms, slow_threshold_ms,
    QueryLogRecord, QUERY_LOG_CAP,
};
pub use span::{
    current_span_id, reset_spans, span, span_with_parent, spans_snapshot, Span, SpanRecord,
    SPAN_BUFFER_CAP,
};
