//! Hierarchical memory accounting: scoped byte trackers (query →
//! operator) with atomic current/peak.
//!
//! A [`MemTracker`] is a node in a small tree: the *root* tracker scopes
//! one query, children scope operators inside it. [`MemTracker::charge`]
//! adds bytes to the node and every ancestor with one relaxed `fetch_add`
//! per level (trees are two levels deep in practice), so charging from a
//! morsel worker's hot loop is safe and cheap. Root trackers additionally
//! mirror their movement into the process-wide `mem_current` / `mem_peak`
//! gauges, so `PRAGMA metrics` reports engine-wide memory pressure across
//! all in-flight queries.
//!
//! Accounting is *allocation-cumulative within a query*: operators charge
//! buffers as they materialize them and the whole balance is released in
//! one step when the query finishes ([`MemTracker::close`]). That keeps
//! the hot path free of free-tracking bookkeeping while still giving an
//! honest per-query peak — the number `PRAGMA memory_limit` is enforced
//! against (see `ExecGuard` in `mduck-sql`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::metrics;

/// One node of scoped byte accounting. Create roots with
/// [`MemTracker::root`], operator scopes with [`MemTracker::child`].
#[derive(Debug, Default)]
pub struct MemTracker {
    current: AtomicU64,
    peak: AtomicU64,
    parent: Option<Arc<MemTracker>>,
    /// Roots mirror into the global `mem_current` / `mem_peak` gauges.
    is_root: bool,
}

impl MemTracker {
    /// A query-scoped root tracker.
    pub fn root() -> Arc<MemTracker> {
        Arc::new(MemTracker {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            parent: None,
            is_root: true,
        })
    }

    /// An operator-scoped child; charges propagate to `self`.
    pub fn child(self: &Arc<Self>) -> Arc<MemTracker> {
        Arc::new(MemTracker {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            parent: Some(Arc::clone(self)),
            is_root: false,
        })
    }

    /// Account `bytes` against this scope and every ancestor.
    #[inline]
    pub fn charge(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut node = self;
        loop {
            let cur = node.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
            node.peak.fetch_max(cur, Ordering::Relaxed);
            if node.is_root {
                let m = metrics();
                m.mem_current.add(bytes as i64);
                let total = m.mem_current.get();
                if total > m.mem_peak.get() {
                    m.mem_peak.set(total);
                }
            }
            match &node.parent {
                Some(p) => node = p,
                None => break,
            }
        }
    }

    /// Return `bytes` to this scope and every ancestor (saturating).
    pub fn release(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut node = self;
        loop {
            let released = sub_saturating(&node.current, bytes);
            if node.is_root {
                metrics().mem_current.add(-(released as i64));
            }
            match &node.parent {
                Some(p) => node = p,
                None => break,
            }
        }
    }

    /// Release the entire outstanding balance (query teardown). Returns
    /// the peak observed over the scope's lifetime.
    pub fn close(&self) -> u64 {
        let outstanding = self.current.swap(0, Ordering::Relaxed);
        if self.is_root {
            metrics().mem_current.add(-(outstanding as i64));
        } else if let Some(p) = &self.parent {
            p.release(outstanding);
        }
        self.peak()
    }

    /// Bytes currently accounted to this scope.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of [`MemTracker::current`].
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Saturating atomic subtraction; returns how much was actually removed.
fn sub_saturating(a: &AtomicU64, bytes: u64) -> u64 {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let take = cur.min(bytes);
        match a.compare_exchange_weak(
            cur,
            cur - take,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return take,
            Err(actual) => cur = actual,
        }
    }
}

/// Render a byte count the way `PRAGMA memory_limit` accepts it.
pub fn format_bytes(bytes: u64) -> String {
    const KB: u64 = 1 << 10;
    const MB: u64 = 1 << 20;
    const GB: u64 = 1 << 30;
    if bytes >= GB && bytes % GB == 0 {
        format!("{}GB", bytes / GB)
    } else if bytes >= MB && bytes % MB == 0 {
        format!("{}MB", bytes / MB)
    } else if bytes >= KB && bytes % KB == 0 {
        format!("{}KB", bytes / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Parse a human byte size: `8MB`, `512KB`, `1GB`, `1024`, `64B`.
/// Case-insensitive; fractional values are rejected.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let upper = s.to_ascii_uppercase();
    let (digits, mult) = if let Some(d) = upper.strip_suffix("GB") {
        (d, 1u64 << 30)
    } else if let Some(d) = upper.strip_suffix("MB") {
        (d, 1 << 20)
    } else if let Some(d) = upper.strip_suffix("KB") {
        (d, 1 << 10)
    } else if let Some(d) = upper.strip_suffix('B') {
        (d, 1)
    } else {
        (upper.as_str(), 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_and_peak() {
        let root = MemTracker::root();
        root.charge(100);
        root.charge(50);
        assert_eq!(root.current(), 150);
        assert_eq!(root.peak(), 150);
        root.release(120);
        assert_eq!(root.current(), 30);
        assert_eq!(root.peak(), 150);
        // Saturating: over-release clamps to zero.
        root.release(1000);
        assert_eq!(root.current(), 0);
        assert_eq!(root.close(), 150);
    }

    #[test]
    fn children_propagate_to_root() {
        let root = MemTracker::root();
        let scan = root.child();
        let agg = root.child();
        scan.charge(64);
        agg.charge(32);
        assert_eq!(scan.current(), 64);
        assert_eq!(agg.current(), 32);
        assert_eq!(root.current(), 96);
        assert_eq!(root.peak(), 96);
        agg.release(32);
        assert_eq!(root.current(), 64);
        root.close();
        assert_eq!(root.current(), 0);
    }

    #[test]
    fn root_mirrors_into_gauges() {
        let before = metrics().mem_current.get();
        let root = MemTracker::root();
        root.charge(4096);
        assert!(metrics().mem_current.get() >= before + 4096);
        assert!(metrics().mem_peak.get() >= before + 4096);
        root.close();
        assert!(metrics().mem_current.get() <= before + 4096);
    }

    #[test]
    fn concurrent_charges_balance() {
        let root = MemTracker::root();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let child = root.child();
                s.spawn(move || {
                    for _ in 0..1000 {
                        child.charge(8);
                    }
                    child.release(4000);
                });
            }
        });
        assert_eq!(root.current(), 4 * 4000);
        assert!(root.peak() >= root.current());
        root.close();
    }

    #[test]
    fn byte_size_round_trip() {
        assert_eq!(parse_bytes("8MB"), Some(8 << 20));
        assert_eq!(parse_bytes("8mb"), Some(8 << 20));
        assert_eq!(parse_bytes(" 512 KB "), Some(512 << 10));
        assert_eq!(parse_bytes("2GB"), Some(2 << 30));
        assert_eq!(parse_bytes("64B"), Some(64));
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("8.5MB"), None);
        assert_eq!(parse_bytes("lots"), None);
        assert_eq!(parse_bytes(""), None);
        for v in [64, 1 << 10, 8 << 20, 2 << 30, 1500] {
            assert_eq!(parse_bytes(&format_bytes(v)), Some(v), "{v}");
        }
    }
}
