//! Tracing spans: a thread-local span stack with an in-memory ring-buffer
//! exporter.
//!
//! A [`Span`] is an RAII guard: creating one pushes it onto the calling
//! thread's stack (so children learn their parent and depth), dropping it
//! records a finished [`SpanRecord`] into a process-global ring buffer of
//! the most recent [`SPAN_BUFFER_CAP`] spans. The buffer is queryable from
//! SQL through the `mduck_spans()` table function in both engines.
//!
//! Timestamps are microseconds since the first span of the process (a
//! stable monotonic epoch), so records from different threads order
//! correctly without wall-clock reads.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use mduck_sync::Mutex;

use crate::metrics::metrics;

/// Maximum finished spans retained; older spans are evicted FIFO (each
/// eviction increments the `spans_dropped` counter).
pub const SPAN_BUFFER_CAP: usize = 4096;

/// A finished span, as exported to `mduck_spans()`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique id (monotonic across threads).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    pub name: String,
    /// Nesting depth on its thread at creation (roots are 0).
    pub depth: u32,
    /// Start offset in microseconds since the process span epoch.
    pub start_us: u64,
    pub duration_us: u64,
    /// Debug rendering of the originating thread id.
    pub thread: String,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(SPAN_BUFFER_CAP)))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An in-flight span; finishes (and exports itself) on drop.
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: Option<u64>,
    name: String,
    depth: u32,
    start: Instant,
    start_us: u64,
}

impl Span {
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Open a span as a child of the thread's current innermost span.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub fn span(name: impl Into<String>) -> Span {
    open(name.into(), None)
}

/// Open a span with an explicit parent id, for code running on a thread
/// the parent never touched (morsel workers: the thread-local stack does
/// not cross `std::thread::scope`). The span still joins the *calling*
/// thread's stack so its own children nest normally.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub fn span_with_parent(name: impl Into<String>, parent: Option<u64>) -> Span {
    open(name.into(), parent)
}

/// Id of the calling thread's innermost open span, if any. Coordinators
/// capture this before fanning out so workers can re-parent under it.
pub fn current_span_id() -> Option<u64> {
    STACK.with(|s| s.borrow().last().copied())
}

fn open(name: String, explicit_parent: Option<u64>) -> Span {
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = explicit_parent.or_else(|| s.last().copied());
        let depth = s.len() as u32;
        s.push(id);
        (parent, depth)
    });
    Span { id, parent, name, depth, start, start_us }
}

impl Drop for Span {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Normally a strict LIFO pop; tolerate out-of-order drops.
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            depth: self.depth,
            start_us: self.start_us,
            duration_us: self.start.elapsed().as_micros() as u64,
            thread: format!("{:?}", std::thread::current().id()),
        };
        let mut ring = ring().lock();
        if ring.len() >= SPAN_BUFFER_CAP {
            ring.pop_front();
            metrics().spans_dropped.inc(1);
        }
        ring.push_back(record);
    }
}

/// Snapshot of the finished-span ring buffer, oldest first.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    ring().lock().iter().cloned().collect()
}

/// Clear the finished-span ring buffer (`PRAGMA reset_spans`).
pub fn reset_spans() {
    ring().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_export() {
        reset_spans();
        {
            let outer = span("outer.test_nest");
            {
                let _inner = span("inner.test_nest");
            }
            let _ = outer.id();
        }
        let spans = spans_snapshot();
        let inner = spans.iter().find(|s| s.name == "inner.test_nest").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer.test_nest").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, outer.depth + 1);
        // Inner finishes first, so it appears earlier in the ring.
        assert!(inner.id > outer.id);
        assert!(outer.duration_us >= inner.duration_us);
    }

    #[test]
    fn ring_buffer_caps_retention() {
        for i in 0..SPAN_BUFFER_CAP + 10 {
            let _s = span(format!("cap.{i}"));
        }
        assert!(spans_snapshot().len() <= SPAN_BUFFER_CAP);
    }

    #[test]
    fn sibling_spans_share_parent() {
        let root = span("root.siblings");
        let a = {
            let s = span("a.siblings");
            s.id()
        };
        let b = {
            let s = span("b.siblings");
            s.id()
        };
        drop(root);
        let spans = spans_snapshot();
        let pa = spans.iter().find(|s| s.id == a).unwrap().parent;
        let pb = spans.iter().find(|s| s.id == b).unwrap().parent;
        assert_eq!(pa, pb);
        assert!(pa.is_some());
    }
}
