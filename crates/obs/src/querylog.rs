//! The query log: a bounded in-memory history of executed statements
//! with an optional JSONL sink.
//!
//! Both engines push one [`QueryLogRecord`] per statement — SQL text,
//! duration, row counts, guard trips, peak memory, thread count, error —
//! and statements slower than [`slow_threshold_ms`] carry their full
//! `EXPLAIN ANALYZE` profile. The history is queryable from SQL through
//! `mduck_query_log()`; when a sink path is configured
//! (`PRAGMA query_log='file.jsonl'` or `MDUCK_QUERY_LOG=path`), every
//! record is additionally appended to the file as one JSON object per
//! line, making the log survive the process.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use mduck_sync::Mutex;

use crate::metrics::metrics;

/// Maximum records retained in memory; older records are evicted FIFO.
pub const QUERY_LOG_CAP: usize = 1024;

/// Default slow-query threshold when `MDUCK_SLOW_MS` is unset.
const DEFAULT_SLOW_MS: u64 = 250;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// One executed statement, as exported to `mduck_query_log()` and the
/// JSONL sink.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogRecord {
    /// Process-unique, monotonically increasing statement id.
    pub id: u64,
    /// `"vecdb"` or `"rowdb"`.
    pub engine: &'static str,
    pub sql: String,
    pub duration_us: u64,
    pub rows_returned: u64,
    pub rows_scanned: u64,
    /// Which `ExecGuard` limit tripped, if any (`"memory"`, `"timeout"`,
    /// `"row_budget"`, `"depth"`, `"cancel"`).
    pub guard_trip: Option<&'static str>,
    /// Peak bytes accounted to the statement's `MemTracker` root.
    pub mem_peak: u64,
    /// Worker threads the statement was allowed to use.
    pub threads: u32,
    pub error: Option<String>,
    /// Full `EXPLAIN ANALYZE` text for statements over the slow-query
    /// threshold (captured only when the engine ran with profiling on).
    pub profile: Option<String>,
}

/// The JSONL sink file. Dropping it (sink re-pointed or disabled)
/// flushes and fsyncs so already-logged lines survive a crash right
/// after the configuration change.
#[derive(Debug)]
struct Sink {
    path: String,
    file: File,
}

impl Drop for Sink {
    fn drop(&mut self) {
        if self.file.flush().is_err() || self.file.sync_all().is_err() {
            metrics().querylog_sink_errors.inc(1);
        }
    }
}

struct LogState {
    history: VecDeque<QueryLogRecord>,
    sink: Option<Sink>,
}

fn state() -> &'static Mutex<LogState> {
    static STATE: OnceLock<Mutex<LogState>> = OnceLock::new();
    STATE.get_or_init(|| {
        let sink = std::env::var("MDUCK_QUERY_LOG").ok().and_then(|path| {
            let trimmed = path.trim().to_string();
            if trimmed.is_empty() {
                return None;
            }
            open_sink(&trimmed).ok().map(|f| Sink { path: trimmed, file: f })
        });
        Mutex::new(LogState { history: VecDeque::with_capacity(64), sink })
    })
}

fn open_sink(path: &str) -> std::io::Result<File> {
    OpenOptions::new().create(true).append(true).open(path)
}

/// Allocate the next statement id (engines stamp records up front so ids
/// order by statement start, not completion).
pub fn next_query_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Append a record to the history (and the JSONL sink, if configured).
pub fn log_query(record: QueryLogRecord) {
    metrics().queries_logged.inc(1);
    let mut st = state().lock();
    if let Some(sink) = &mut st.sink {
        let line = json_line(&record);
        // A failing sink must never fail the query: the line is
        // dropped, but the failure is counted, not swallowed.
        if writeln!(sink.file, "{line}").is_err() {
            metrics().querylog_sink_errors.inc(1);
        }
    }
    if st.history.len() >= QUERY_LOG_CAP {
        st.history.pop_front();
    }
    st.history.push_back(record);
}

/// Point or re-point the JSONL sink (`None` disables it). The file is
/// opened in append mode immediately so configuration errors surface at
/// `PRAGMA query_log` time, not on the next query.
pub fn set_query_log_sink(path: Option<&str>) -> std::io::Result<()> {
    let mut st = state().lock();
    match path {
        Some(p) if !p.trim().is_empty() => {
            let p = p.trim();
            st.sink = Some(Sink { path: p.to_string(), file: open_sink(p)? });
        }
        _ => st.sink = None,
    }
    Ok(())
}

/// Path of the active JSONL sink, if one is configured.
pub fn query_log_sink_path() -> Option<String> {
    state().lock().sink.as_ref().map(|s| s.path.clone())
}

/// Whether records are currently being persisted to a sink. Engines use
/// this to decide to run statements under profiling so slow queries can
/// attach their `EXPLAIN ANALYZE` text.
pub fn query_log_sink_active() -> bool {
    state().lock().sink.is_some()
}

/// In-memory history, oldest first.
pub fn query_log_snapshot() -> Vec<QueryLogRecord> {
    state().lock().history.iter().cloned().collect()
}

/// Clear the in-memory history (test isolation; the sink file, if any,
/// is left untouched).
pub fn reset_query_log() {
    state().lock().history.clear();
}

/// Statements at least this slow capture their profile. Reads
/// `MDUCK_SLOW_MS` once; adjustable at runtime for tests via
/// [`set_slow_threshold_ms`].
pub fn slow_threshold_ms() -> u64 {
    slow_ms().load(Ordering::Relaxed)
}

/// Override the slow-query threshold (milliseconds).
pub fn set_slow_threshold_ms(ms: u64) {
    slow_ms().store(ms, Ordering::Relaxed);
}

fn slow_ms() -> &'static AtomicU64 {
    static SLOW: OnceLock<AtomicU64> = OnceLock::new();
    SLOW.get_or_init(|| {
        let ms = std::env::var("MDUCK_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_MS);
        AtomicU64::new(ms)
    })
}

/// Render one record as a single JSON object line (the sink format).
pub fn json_line(r: &QueryLogRecord) -> String {
    let mut out = String::with_capacity(128 + r.sql.len());
    out.push('{');
    push_field(&mut out, "id", &r.id.to_string());
    push_str_field(&mut out, "engine", r.engine);
    push_str_field(&mut out, "sql", &r.sql);
    push_field(&mut out, "duration_us", &r.duration_us.to_string());
    push_field(&mut out, "rows_returned", &r.rows_returned.to_string());
    push_field(&mut out, "rows_scanned", &r.rows_scanned.to_string());
    match r.guard_trip {
        Some(t) => push_str_field(&mut out, "guard_trip", t),
        None => push_field(&mut out, "guard_trip", "null"),
    }
    push_field(&mut out, "mem_peak", &r.mem_peak.to_string());
    push_field(&mut out, "threads", &r.threads.to_string());
    match &r.error {
        Some(e) => push_str_field(&mut out, "error", e),
        None => push_field(&mut out, "error", "null"),
    }
    match &r.profile {
        Some(p) => push_str_field(&mut out, "profile", p),
        None => push_field(&mut out, "profile", "null"),
    }
    out.pop(); // trailing comma
    out.push('}');
    out
}

fn push_field(out: &mut String, key: &str, raw: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(raw);
    out.push(',');
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in val.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push_str("\",");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, sql: &str) -> QueryLogRecord {
        QueryLogRecord {
            id,
            engine: "vecdb",
            sql: sql.to_string(),
            duration_us: 1234,
            rows_returned: 10,
            rows_scanned: 100,
            guard_trip: None,
            mem_peak: 4096,
            threads: 1,
            error: None,
            profile: None,
        }
    }

    #[test]
    fn json_line_escapes_and_orders_fields() {
        let mut r = record(7, "SELECT \"x\"\nFROM t\t-- strange");
        r.guard_trip = Some("memory");
        r.error = Some("boom \\ bang".into());
        let line = json_line(&r);
        assert!(line.starts_with("{\"id\":7,\"engine\":\"vecdb\",\"sql\":\"SELECT \\\"x\\\"\\nFROM t\\t-- strange\""), "{line}");
        assert!(line.contains("\"guard_trip\":\"memory\""));
        assert!(line.contains("\"error\":\"boom \\\\ bang\""));
        assert!(line.ends_with("\"profile\":null}"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn history_is_bounded_fifo() {
        reset_query_log();
        for i in 0..QUERY_LOG_CAP as u64 + 5 {
            log_query(record(i, "SELECT 1"));
        }
        let snap = query_log_snapshot();
        assert_eq!(snap.len(), QUERY_LOG_CAP);
        assert_eq!(snap.first().unwrap().id, 5);
        assert_eq!(snap.last().unwrap().id, QUERY_LOG_CAP as u64 + 4);
        reset_query_log();
        assert!(query_log_snapshot().is_empty());
    }

    #[test]
    fn sink_appends_one_line_per_record() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mduck_qlog_test_{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        set_query_log_sink(Some(&path_s)).unwrap();
        assert_eq!(query_log_sink_path().as_deref(), Some(path_s.as_str()));
        assert!(query_log_sink_active());
        log_query(record(1, "SELECT a"));
        log_query(record(2, "SELECT b"));
        set_query_log_sink(None).unwrap();
        assert!(!query_log_sink_active());
        log_query(record(3, "SELECT c")); // not persisted
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"sql\":\"SELECT a\""));
        assert!(lines[1].contains("\"sql\":\"SELECT b\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_write_failure_is_counted_not_fatal() {
        // /dev/full accepts the open but fails every write with ENOSPC.
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        reset_query_log();
        set_query_log_sink(Some("/dev/full")).unwrap();
        let before = metrics().querylog_sink_errors.get();
        log_query(record(99, "SELECT sink_failure"));
        assert!(metrics().querylog_sink_errors.get() > before);
        // The query still landed in the in-memory history.
        assert!(query_log_snapshot().iter().any(|r| r.id == 99));
        set_query_log_sink(None).unwrap();
        reset_query_log();
    }

    #[test]
    fn slow_threshold_is_adjustable() {
        let orig = slow_threshold_ms();
        set_slow_threshold_ms(7);
        assert_eq!(slow_threshold_ms(), 7);
        set_slow_threshold_ms(orig);
    }
}
