//! The miniature "Spatial extension": `ST_*` functions over GEOMETRY /
//! WKB_BLOB, standing in for DuckDB Spatial, plus the MobilityDuck-native
//! `_gs` fast-path equivalents of §6.3 (Query 5).
//!
//! The `ST_*` family accepts geometries as WKB blobs or native GEOMETRY
//! values; WKB arguments pay a parse on every call — the overhead the `_gs`
//! functions avoid by keeping the native representation end to end.

use std::sync::Arc;

use mduck_geo::algorithms;
use mduck_geo::point::Point;
use mduck_geo::Geometry;
use mduck_sql::{LogicalType, Registry, SqlError, SqlResult, Value};

use crate::types::{lt, value_to_geometry, MdGeom};

/// Register the ST_* surface and the `_gs` fast paths.
pub fn register_spatial(reg: &mut Registry) {
    let geom_tys = [lt("geometry"), LogicalType::Blob, LogicalType::Text];

    for a_ty in &geom_tys {
        for b_ty in &geom_tys {
            reg.register_scalar(
                "st_intersects",
                vec![a_ty.clone(), b_ty.clone()],
                LogicalType::Bool,
                |a| {
                    let x = value_to_geometry(&a[0])?;
                    let y = value_to_geometry(&a[1])?;
                    Ok(Value::Bool(algorithms::intersects(&x, &y)))
                },
            );
            reg.register_scalar(
                "st_distance",
                vec![a_ty.clone(), b_ty.clone()],
                LogicalType::Float,
                |a| {
                    let x = value_to_geometry(&a[0])?;
                    let y = value_to_geometry(&a[1])?;
                    Ok(Value::Float(algorithms::distance(&x, &y)))
                },
            );
            reg.register_scalar(
                "st_dwithin",
                vec![a_ty.clone(), b_ty.clone(), LogicalType::Float],
                LogicalType::Bool,
                |a| {
                    let x = value_to_geometry(&a[0])?;
                    let y = value_to_geometry(&a[1])?;
                    Ok(Value::Bool(algorithms::distance(&x, &y) <= a[2].as_float()?))
                },
            );
            reg.register_scalar(
                "st_equals",
                vec![a_ty.clone(), b_ty.clone()],
                LogicalType::Bool,
                |a| {
                    let x = value_to_geometry(&a[0])?;
                    let y = value_to_geometry(&a[1])?;
                    Ok(Value::Bool(x.data == y.data))
                },
            );
        }
        reg.register_scalar("st_astext", vec![a_ty.clone()], LogicalType::Text, |a| {
            Ok(Value::text(mduck_geo::wkt::to_wkt(&value_to_geometry(&a[0])?, None)))
        });
        reg.register_scalar("st_asewkt", vec![a_ty.clone()], LogicalType::Text, |a| {
            Ok(Value::text(mduck_geo::wkt::to_ewkt(&value_to_geometry(&a[0])?, None)))
        });
        reg.register_scalar("st_length", vec![a_ty.clone()], LogicalType::Float, |a| {
            Ok(Value::Float(value_to_geometry(&a[0])?.length()))
        });
        reg.register_scalar("st_x", vec![a_ty.clone()], LogicalType::Float, |a| {
            let g = value_to_geometry(&a[0])?;
            g.as_point()
                .map(|p| Value::Float(p.x))
                .ok_or_else(|| SqlError::execution("ST_X expects a point"))
        });
        reg.register_scalar("st_y", vec![a_ty.clone()], LogicalType::Float, |a| {
            let g = value_to_geometry(&a[0])?;
            g.as_point()
                .map(|p| Value::Float(p.y))
                .ok_or_else(|| SqlError::execution("ST_Y expects a point"))
        });
        reg.register_scalar("st_srid", vec![a_ty.clone()], LogicalType::Int, |a| {
            Ok(Value::Int(value_to_geometry(&a[0])?.srid as i64))
        });
        reg.register_scalar("st_npoints", vec![a_ty.clone()], LogicalType::Int, |a| {
            Ok(Value::Int(value_to_geometry(&a[0])?.num_points() as i64))
        });
        // ST_Collect over a list — Query 5's aggregation pipeline:
        // `ST_Collect(list(trajectory(...)::GEOMETRY))`. Every WKB member
        // pays a parse.
        reg.register_scalar("st_collect", vec![LogicalType::List], LogicalType::Blob, |a| {
            let items = a[0].as_list()?;
            let geoms: SqlResult<Vec<Geometry>> = items.iter().map(value_to_geometry).collect();
            let collected = algorithms::collect(geoms?);
            Ok(Value::blob(mduck_geo::wkb::to_wkb(&collected)))
        });
    }
    // ST_Point / ST_MakeEnvelope constructors.
    reg.register_scalar(
        "st_point",
        vec![LogicalType::Float, LogicalType::Float],
        lt("geometry"),
        |a| {
            Ok(MdGeom(Geometry::point(a[0].as_float()?, a[1].as_float()?)).into_value())
        },
    );
    reg.register_scalar(
        "st_makeenvelope",
        vec![LogicalType::Float, LogicalType::Float, LogicalType::Float, LogicalType::Float],
        lt("geometry"),
        |a| {
            let (xmin, ymin, xmax, ymax) =
                (a[0].as_float()?, a[1].as_float()?, a[2].as_float()?, a[3].as_float()?);
            let poly = Geometry::polygon(vec![vec![
                Point::new(xmin, ymin),
                Point::new(xmax, ymin),
                Point::new(xmax, ymax),
                Point::new(xmin, ymax),
                Point::new(xmin, ymin),
            ]])
            .map_err(crate::types::to_exec)?;
            Ok(MdGeom(poly).into_value())
        },
    );
    reg.register_scalar("st_geomfromtext", vec![LogicalType::Text], lt("geometry"), |a| {
        Ok(MdGeom(mduck_geo::wkt::parse_wkt(a[0].as_text()?).map_err(crate::types::to_exec)?)
            .into_value())
    });
    reg.register_scalar(
        "st_setsrid",
        vec![lt("geometry"), LogicalType::Int],
        lt("geometry"),
        |a| {
            let g = value_to_geometry(&a[0])?;
            Ok(MdGeom(g.with_srid(a[1].as_int()? as i32)).into_value())
        },
    );

    // ---- the `_gs` fast path (§6.3): native representation end to end.
    reg.register_scalar("collect_gs", vec![LogicalType::List], lt("geometry"), |a| {
        let items = a[0].as_list()?;
        let geoms: SqlResult<Vec<Geometry>> = items
            .iter()
            .map(|v| {
                // Fast path: native values clone the Arc'd structure
                // without any decoding.
                if let Value::Ext(e) = v {
                    if let Some(g) = e.downcast::<MdGeom>() {
                        return Ok(g.0.clone());
                    }
                }
                value_to_geometry(v)
            })
            .collect();
        Ok(MdGeom(algorithms::collect(geoms?)).into_value())
    });
    reg.register_scalar(
        "distance_gs",
        vec![lt("geometry"), lt("geometry")],
        LogicalType::Float,
        |a| {
            let x = &a[0].ext_as::<MdGeom>()?.0;
            let y = &a[1].ext_as::<MdGeom>()?.0;
            Ok(Value::Float(algorithms::distance(x, y)))
        },
    );
    reg.register_scalar(
        "intersects_gs",
        vec![lt("geometry"), lt("geometry")],
        LogicalType::Bool,
        |a| {
            let x = &a[0].ext_as::<MdGeom>()?.0;
            let y = &a[1].ext_as::<MdGeom>()?.0;
            Ok(Value::Bool(algorithms::intersects(x, y)))
        },
    );
    let _ = Arc::new(());
}
