//! # mobilityduck — spatiotemporal data management for quackdb
//!
//! The Rust reproduction of the paper's contribution: an extension that
//! binds the MEOS-equivalent temporal algebra (`mduck-temporal`) into the
//! vectorized engine (`quackdb`), registering user-defined types, cast
//! functions, scalar functions, operators-as-functions, temporal
//! aggregates, and the TRTREE index type with optimizer scan injection.
//!
//! The same registration (minus the engine-specific index plumbing) loads
//! into the row engine (`mduck-rowdb`), reproducing MobilityDB on
//! PostgreSQL as the evaluation baseline.
//!
//! ```
//! use quackdb::Database;
//!
//! let db = Database::new();
//! mobilityduck::load(&db);
//! let r = db
//!     .execute("SELECT duration('{1@2025-01-01, 2@2025-01-02, 1@2025-01-03}'::TINT, true)")
//!     .unwrap();
//! assert_eq!(r.rows[0][0].to_string(), "2 days");
//! ```

pub mod aggregates;
pub mod casts;
pub mod functions;
pub mod functions_ext;
pub mod index;
pub mod spatial;
pub mod types;

use std::sync::Arc;

use mduck_sql::Registry;

pub use types::*;

/// Populate a registry with the full MobilityDuck surface
/// (engine-agnostic part).
pub fn register_all(reg: &mut Registry) {
    casts::register_types_and_casts(reg);
    functions::register_functions(reg);
    functions_ext::register_extended(reg);
    spatial::register_spatial(reg);
    aggregates::register_aggregates(reg);
    register_codecs(reg);
}

/// Register the wire-format decoders of every extension type: the binary
/// MEOS-style format for the hot temporal types, the textual literal form
/// for the rest. Row stores use these to detoast values on tuple access
/// (see `mduck-rowdb`); they are also the storage format of BLOB exports.
fn register_codecs(reg: &mut Registry) {
    reg.register_ext_codec("tgeompoint", |b| {
        Ok(MdTGeomPoint(
            mduck_temporal::binser::tgeompoint_from_bytes(b).map_err(types::to_exec)?,
        )
        .into_value())
    });
    reg.register_ext_codec("tgeometry", |b| {
        Ok(MdTGeometry(
            mduck_temporal::binser::tgeompoint_from_bytes(b).map_err(types::to_exec)?,
        )
        .into_value())
    });
    // Text-literal codecs for the remaining types (their to_bytes is the
    // printed literal).
    macro_rules! text_codec {
        ($name:literal, $wrapper:ident, $parse:expr) => {
            reg.register_ext_codec($name, |b| {
                let s = std::str::from_utf8(b)
                    .map_err(|e| mduck_sql::SqlError::execution(e.to_string()))?;
                let parsed = $parse(s).map_err(types::to_exec)?;
                Ok(types::$wrapper(parsed).into_value())
            });
        };
    }
    text_codec!("tstzspan", MdTstzSpan, mduck_temporal::parse_span);
    text_codec!("tstzspanset", MdTstzSpanSet, mduck_temporal::parse_spanset);
    text_codec!("stbox", MdStbox, mduck_temporal::parse_stbox);
    text_codec!("tbox", MdTbox, mduck_temporal::parse_tbox);
    text_codec!("tbool", MdTBool, mduck_temporal::temporal::parse_tbool);
    text_codec!("tint", MdTInt, mduck_temporal::temporal::parse_tint);
    text_codec!("tfloat", MdTFloat, mduck_temporal::temporal::parse_tfloat);
    text_codec!("ttext", MdTText, mduck_temporal::temporal::parse_ttext);
    reg.register_ext_codec("geometry", |b| {
        Ok(MdGeom(mduck_geo::gserialized::from_native(b).map_err(types::to_exec)?).into_value())
    });
}

/// Load the extension into a quackdb instance: types, casts, functions,
/// operators, aggregates, and the TRTREE / RTREE index types.
pub fn load(db: &quackdb::Database) {
    register_all(&mut db.registry_mut());
    let mut idx = db.index_types_mut();
    idx.register(Arc::new(index::TRTreeIndexType));
    idx.register(Arc::new(index::GeomRTreeIndexType));
}

/// Load the extension into a rowdb instance (the MobilityDB-on-PostgreSQL
/// baseline): same SQL surface, GiST + B-tree access methods.
pub fn load_row(db: &mduck_rowdb::RowDatabase) {
    register_all(&mut db.registry_mut());
    db.index_types_mut().register(Arc::new(index::GistIndexType));
}

/// The Table-1 coverage matrix: (base type, [set, span, spanset, temporal])
/// support report generated from the live registry. Used by the
/// `table1_types` report binary.
pub fn type_coverage() -> Vec<(&'static str, [Option<&'static str>; 4])> {
    vec![
        ("bool", [None, None, None, Some("tbool")]),
        ("text", [Some("textset"), None, None, Some("ttext")]),
        ("integer", [Some("intset"), Some("intspan"), Some("intspanset"), Some("tint")]),
        (
            "bigint",
            [Some("bigintset"), Some("bigintspan"), Some("bigintspanset"), None],
        ),
        ("float", [Some("floatset"), Some("floatspan"), Some("floatspanset"), Some("tfloat")]),
        ("date", [Some("dateset"), Some("datespan"), Some("datespanset"), None]),
        ("timestamptz", [Some("tstzset"), Some("tstzspan"), Some("tstzspanset"), None]),
        ("geometry", [Some("geomset"), None, None, Some("tgeompoint")]),
        ("geometry (general)", [None, None, None, Some("tgeometry")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_loads_without_conflicts() {
        let mut reg = Registry::with_builtins();
        register_all(&mut reg);
        assert!(reg.has_scalar("tdwithin"));
        assert!(reg.has_scalar("&&"));
        assert!(reg.has_scalar("st_intersects"));
        assert!(reg.is_aggregate("extent"));
        assert!(reg.resolve_type("stbox").is_ok());
        assert!(reg.resolve_type("tgeompoint").is_ok());
    }

    #[test]
    fn coverage_types_are_registered() {
        let mut reg = Registry::with_builtins();
        register_all(&mut reg);
        for (_, cols) in type_coverage() {
            for name in cols.into_iter().flatten() {
                assert!(reg.resolve_type(name).is_ok(), "type {name} missing");
            }
        }
    }
}
