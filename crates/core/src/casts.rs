//! Type aliases and cast functions (§3.3–§3.4): every MEOS type registered
//! as a UDT, VARCHAR→type input casts (the `Tbox_in`-style functions of
//! the paper), type→VARCHAR output casts, and the cross-type casts the
//! benchmark queries use (`trip::tstzspan`, `trip::STBOX`,
//! `geom::WKB_BLOB`, ...).

use mduck_sql::{LogicalType, Registry, Value};
use mduck_temporal::set::{parse_geomset, parse_set, Set};
use mduck_temporal::span::parse_span;
use mduck_temporal::spanset::{parse_spanset, SpanSet};
use mduck_temporal::temporal::{
    parse_tbool, parse_tfloat, parse_tgeompoint, parse_tint, parse_ttext, parse_temporal,
};
use mduck_temporal::{parse_stbox, parse_tbox};

use crate::types::*;

/// Register every UDT alias and cast into a registry (engine-agnostic).
pub fn register_types_and_casts(reg: &mut Registry) {
    // ---- type aliases (CREATE TYPE x AS BLOB; CREATE ... ALIAS)
    for name in [
        "stbox",
        "tbox",
        "intspan",
        "bigintspan",
        "floatspan",
        "datespan",
        "tstzspan",
        "intspanset",
        "bigintspanset",
        "floatspanset",
        "datespanset",
        "tstzspanset",
        "intset",
        "bigintset",
        "floatset",
        "textset",
        "dateset",
        "tstzset",
        "geomset",
        "tbool",
        "tint",
        "tfloat",
        "ttext",
        "tgeompoint",
        "tgeometry",
        "geometry",
    ] {
        reg.register_type(name, LogicalType::ext(name));
    }
    // The paper's period aliases.
    reg.register_type("period", LogicalType::ext("tstzspan"));
    reg.register_type("periodset", LogicalType::ext("tstzspanset"));

    // ---- VARCHAR → type input casts (the `<type>_in` functions)
    macro_rules! in_cast {
        ($name:literal, $parse:expr) => {
            reg.register_cast(LogicalType::Text, LogicalType::ext($name), move |a| {
                let v = a[0].as_text()?;
                $parse(v)
            });
        };
    }
    in_cast!("stbox", |s: &str| Ok(MdStbox(parse_stbox(s).map_err(to_exec)?).into_value()));
    in_cast!("tbox", |s: &str| Ok(MdTbox(parse_tbox(s).map_err(to_exec)?).into_value()));
    in_cast!("intspan", |s: &str| Ok(
        MdIntSpan(parse_span(s).map_err(to_exec)?).into_value()
    ));
    in_cast!("bigintspan", |s: &str| Ok(MdBigintSpan(parse_span(s).map_err(to_exec)?)
        .into_value()));
    in_cast!("floatspan", |s: &str| Ok(MdFloatSpan(parse_span(s).map_err(to_exec)?)
        .into_value()));
    in_cast!("datespan", |s: &str| Ok(
        MdDateSpan(parse_span(s).map_err(to_exec)?).into_value()
    ));
    in_cast!("tstzspan", |s: &str| Ok(
        MdTstzSpan(parse_span(s).map_err(to_exec)?).into_value()
    ));
    in_cast!("intspanset", |s: &str| Ok(MdIntSpanSet(parse_spanset(s).map_err(to_exec)?)
        .into_value()));
    in_cast!("bigintspanset", |s: &str| Ok(MdBigintSpanSet(
        parse_spanset(s).map_err(to_exec)?
    )
    .into_value()));
    in_cast!("floatspanset", |s: &str| Ok(MdFloatSpanSet(
        parse_spanset(s).map_err(to_exec)?
    )
    .into_value()));
    in_cast!("datespanset", |s: &str| Ok(MdDateSpanSet(parse_spanset(s).map_err(to_exec)?)
        .into_value()));
    in_cast!("tstzspanset", |s: &str| Ok(MdTstzSpanSet(parse_spanset(s).map_err(to_exec)?)
        .into_value()));
    in_cast!("intset", |s: &str| Ok(MdIntSet(parse_set(s).map_err(to_exec)?).into_value()));
    in_cast!("bigintset", |s: &str| Ok(
        MdBigintSet(parse_set(s).map_err(to_exec)?).into_value()
    ));
    in_cast!("floatset", |s: &str| Ok(
        MdFloatSet(parse_set(s).map_err(to_exec)?).into_value()
    ));
    in_cast!("textset", |s: &str| Ok(MdTextSet(parse_set(s).map_err(to_exec)?).into_value()));
    in_cast!("dateset", |s: &str| Ok(MdDateSet(parse_set(s).map_err(to_exec)?).into_value()));
    in_cast!("tstzset", |s: &str| Ok(MdTstzSet(parse_set(s).map_err(to_exec)?).into_value()));
    in_cast!("geomset", |s: &str| Ok(
        MdGeomSet(parse_geomset(s).map_err(to_exec)?).into_value()
    ));
    in_cast!("tbool", |s: &str| Ok(MdTBool(parse_tbool(s).map_err(to_exec)?).into_value()));
    in_cast!("tint", |s: &str| Ok(MdTInt(parse_tint(s).map_err(to_exec)?).into_value()));
    in_cast!("tfloat", |s: &str| Ok(MdTFloat(parse_tfloat(s).map_err(to_exec)?).into_value()));
    in_cast!("ttext", |s: &str| Ok(MdTText(parse_ttext(s).map_err(to_exec)?).into_value()));
    in_cast!("tgeompoint", |s: &str| Ok(MdTGeomPoint(parse_tgeompoint(s).map_err(to_exec)?)
        .into_value()));
    in_cast!("tgeometry", |s: &str| {
        // tgeometry defaults to step interpolation.
        let (mut temp, srid) = parse_temporal::<mduck_geo::Point>(&format!("Interp=Step;{s}"))
            .or_else(|_| parse_temporal::<mduck_geo::Point>(s))
            .map_err(to_exec)?;
        if let mduck_temporal::temporal::Temporal::Instant(_) = temp {
            // instants carry no interpolation
        } else {
            // keep parsed interpolation
        }
        let _ = &mut temp;
        Ok(MdTGeometry(mduck_temporal::temporal::TGeomPoint::new(temp, srid.unwrap_or(0)))
            .into_value())
    });
    in_cast!("geometry", |s: &str| Ok(
        MdGeom(mduck_geo::wkt::parse_wkt(s).map_err(to_exec)?).into_value()
    ));

    // ---- type → VARCHAR output casts
    for name in [
        "stbox",
        "tbox",
        "intspan",
        "bigintspan",
        "floatspan",
        "datespan",
        "tstzspan",
        "intspanset",
        "bigintspanset",
        "floatspanset",
        "datespanset",
        "tstzspanset",
        "intset",
        "bigintset",
        "floatset",
        "textset",
        "dateset",
        "tstzset",
        "geomset",
        "tbool",
        "tint",
        "tfloat",
        "ttext",
        "tgeompoint",
        "tgeometry",
        "geometry",
    ] {
        reg.register_cast(LogicalType::ext(name), LogicalType::Text, |a| {
            Ok(Value::text(a[0].as_ext()?.obj.to_text()))
        });
    }

    // ---- cross-type casts used by the queries
    // trip::tstzspan (Query 3) — the temporal value's bounding period.
    for src in ["tgeompoint", "tgeometry"] {
        reg.register_cast(LogicalType::ext(src), LogicalType::ext("tstzspan"), |a| {
            let t = value_to_tgeom(&a[0])?;
            Ok(MdTstzSpan(t.timespan()).into_value())
        });
        // trip::STBOX (Query 10).
        reg.register_cast(LogicalType::ext(src), LogicalType::ext("stbox"), |a| {
            let t = value_to_tgeom(&a[0])?;
            Ok(MdStbox(t.stbox()).into_value())
        });
    }
    for src in ["tbool", "tint", "tfloat", "ttext"] {
        reg.register_cast(LogicalType::ext(src), LogicalType::ext("tstzspan"), move |a| {
            let e = a[0].as_ext()?;
            let span = if let Some(t) = e.downcast::<MdTBool>() {
                t.0.timespan()
            } else if let Some(t) = e.downcast::<MdTInt>() {
                t.0.timespan()
            } else if let Some(t) = e.downcast::<MdTFloat>() {
                t.0.timespan()
            } else if let Some(t) = e.downcast::<MdTText>() {
                t.0.timespan()
            } else {
                return Err(mduck_sql::SqlError::execution("not a temporal value"));
            };
            Ok(MdTstzSpan(span).into_value())
        });
    }
    // tint ↔ tfloat.
    reg.register_cast(LogicalType::ext("tint"), LogicalType::ext("tfloat"), |a| {
        let t = &a[0].ext_as::<MdTInt>()?.0;
        Ok(MdTFloat(t.map_values(|v| *v as f64)).into_value())
    });
    reg.register_cast(LogicalType::ext("tfloat"), LogicalType::ext("tint"), |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        Ok(MdTInt(t.map_values(|v| v.round() as i64)).into_value())
    });
    // span → spanset.
    reg.register_cast(LogicalType::ext("tstzspan"), LogicalType::ext("tstzspanset"), |a| {
        let s = a[0].ext_as::<MdTstzSpan>()?.0;
        Ok(MdTstzSpanSet(SpanSet::from_span(s)).into_value())
    });
    // set casts of Table 1's cross-type functions.
    reg.register_cast(LogicalType::ext("intset"), LogicalType::ext("floatset"), |a| {
        let s = &a[0].ext_as::<MdIntSet>()?.0;
        Ok(MdFloatSet(Set::new(s.values().iter().map(|v| *v as f64).collect()).map_err(to_exec)?)
            .into_value())
    });
    reg.register_cast(LogicalType::ext("floatset"), LogicalType::ext("intset"), |a| {
        let s = &a[0].ext_as::<MdFloatSet>()?.0;
        Ok(MdIntSet(
            Set::new(s.values().iter().map(|v| v.round() as i64).collect()).map_err(to_exec)?,
        )
        .into_value())
    });
    reg.register_cast(LogicalType::ext("dateset"), LogicalType::ext("tstzset"), |a| {
        let s = &a[0].ext_as::<MdDateSet>()?.0;
        Ok(MdTstzSet(
            Set::new(s.values().iter().map(|d| d.at_midnight()).collect()).map_err(to_exec)?,
        )
        .into_value())
    });
    reg.register_cast(LogicalType::ext("tstzset"), LogicalType::ext("dateset"), |a| {
        let s = &a[0].ext_as::<MdTstzSet>()?.0;
        Ok(MdDateSet(Set::new(s.values().iter().map(|t| t.date()).collect()).map_err(to_exec)?)
            .into_value())
    });

    // ---- spatial proxy-layer casts (§6.2 / §7): GEOMETRY ↔ WKB_BLOB.
    // Serializing to WKB and parsing it back are real conversions — the
    // overhead the `_gs` functions avoid.
    reg.register_cast(LogicalType::ext("geometry"), LogicalType::Blob, |a| {
        let g = &a[0].ext_as::<MdGeom>()?.0;
        Ok(Value::blob(mduck_geo::wkb::to_wkb(g)))
    });
    reg.register_cast(LogicalType::Blob, LogicalType::ext("geometry"), |a| {
        Ok(MdGeom(value_to_geometry(&a[0])?).into_value())
    });
    reg.register_cast(LogicalType::Text, LogicalType::Blob, |a| {
        // WKT text → WKB blob (used when VARCHAR stands in for geometry).
        let g = mduck_geo::wkt::parse_wkt(a[0].as_text()?).map_err(to_exec)?;
        Ok(Value::blob(mduck_geo::wkb::to_wkb(&g)))
    });
    // stbox::geometry — the spatial footprint (§4.4's geometry(box)).
    reg.register_cast(LogicalType::ext("stbox"), LogicalType::ext("geometry"), |a| {
        let b = a[0].ext_as::<MdStbox>()?.0;
        Ok(MdGeom(b.to_geometry().map_err(to_exec)?).into_value())
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        let mut r = Registry::with_builtins();
        register_types_and_casts(&mut r);
        r
    }

    fn cast(r: &Registry, from: &LogicalType, to: &LogicalType, v: Value) -> Value {
        (r.resolve_cast(from, to).unwrap())(&[v]).unwrap()
    }

    #[test]
    fn text_to_types_roundtrip() {
        let r = reg();
        for (ty, lit) in [
            ("stbox", "STBOX X((1,2),(3,4))"),
            ("tstzspan", "[2025-01-01, 2025-01-02]"),
            ("tstzset", "{2025-01-01, 2025-01-02}"),
            ("tint", "{1@2025-01-01, 2@2025-01-02}"),
            ("tgeompoint", "[POINT(1 1)@2025-01-01 00:00:00+00]"),
        ] {
            let lt = LogicalType::ext(ty);
            let v = cast(&r, &LogicalType::Text, &lt, Value::text(lit));
            let back = cast(&r, &lt, &LogicalType::Text, v);
            // Parse the printed form again: must be identical (fixpoint).
            let v2 = cast(&r, &LogicalType::Text, &lt, back.clone());
            let back2 = cast(&r, &lt, &LogicalType::Text, v2);
            assert_eq!(back.to_string(), back2.to_string(), "fixpoint for {ty}");
        }
    }

    #[test]
    fn trip_to_period_and_stbox() {
        let r = reg();
        let trip = cast(
            &r,
            &LogicalType::Text,
            &LogicalType::ext("tgeompoint"),
            Value::text("[Point(0 0)@2025-01-01, Point(5 5)@2025-01-03]"),
        );
        let p = cast(&r, &LogicalType::ext("tgeompoint"), &LogicalType::ext("tstzspan"), trip.clone());
        assert_eq!(p.to_string(), "[2025-01-01 00:00:00+00, 2025-01-03 00:00:00+00]");
        let b = cast(&r, &LogicalType::ext("tgeompoint"), &LogicalType::ext("stbox"), trip);
        assert!(b.to_string().starts_with("STBOX XT"), "{b}");
    }

    #[test]
    fn geometry_wkb_roundtrip() {
        let r = reg();
        let g = cast(
            &r,
            &LogicalType::Text,
            &LogicalType::ext("geometry"),
            Value::text("POINT(1 2)"),
        );
        let blob = cast(&r, &LogicalType::ext("geometry"), &LogicalType::Blob, g.clone());
        assert!(matches!(blob, Value::Blob(_)));
        let back = cast(&r, &LogicalType::Blob, &LogicalType::ext("geometry"), blob);
        assert!(g.sql_eq(&back));
    }

    #[test]
    fn set_cross_casts() {
        let r = reg();
        let s = cast(&r, &LogicalType::Text, &LogicalType::ext("intset"), Value::text("{1, 2}"));
        let f = cast(&r, &LogicalType::ext("intset"), &LogicalType::ext("floatset"), s);
        assert_eq!(f.to_string(), "{1, 2}");
        let back = cast(&r, &LogicalType::ext("floatset"), &LogicalType::ext("intset"), f);
        assert_eq!(back.logical_type(), LogicalType::ext("intset"));
    }
}
