//! The TRTREE index type (§4): an R-tree over `stbox` (and `tgeompoint`,
//! via its bounding box) registered with the vectorized engine, plus the
//! GiST twin registered with the row engine for the "MobilityDB with
//! indexes" scenario.
//!
//! Index construction follows §4.2 exactly: the *index-first* `Append`
//! path inserts incrementally through `rtree_insert`, and the *data-first*
//! `CREATE INDEX` path runs the three-phase pipeline — parallel `Sink`
//! into thread-local collections, mutex-protected `Combine`, then
//! `BulkConstruct`.

use std::sync::Mutex;

use mduck_rtree::{RTree, Rect3};
use mduck_sql::{LogicalType, SqlError, SqlResult, Value};

use crate::types::{value_to_stbox, MdStbox, MdTGeomPoint, MdTGeometry};

/// Extract the 3-D (x, y, t) box of an indexable value; `None` for NULLs.
pub fn value_box3(v: &Value) -> SqlResult<Option<Rect3>> {
    if v.is_null() {
        return Ok(None);
    }
    let b = value_to_stbox(v)?;
    let (lo, hi) = b.to_xyt();
    Ok(Some(Rect3::new(lo, hi)))
}

/// Can a column of this type carry a TRTREE index?
pub fn is_indexable(ty: &LogicalType) -> bool {
    matches!(ty, LogicalType::Ext(name) if matches!(&**name, "stbox" | "tgeompoint" | "tgeometry"))
}

/// Shared index core used by both engines' registrations.
pub struct SpatioTemporalIndex {
    name: String,
    method: &'static str,
    column: usize,
    tree: RTree,
}

impl SpatioTemporalIndex {
    /// The data-first bulk path (§4.2.2): Sink / Combine / BulkConstruct.
    pub fn bulk_build(
        name: &str,
        method: &'static str,
        column: usize,
        existing: &[Value],
    ) -> SqlResult<Self> {
        // Phase 1 — Sink: threads scan partitions into thread-local
        // collections. Partition count scales with the data, mirroring
        // DuckDB's parallel table scan.
        let num_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(existing.len().div_ceil(4096).max(1));
        // Phase 2 — Combine: thread-local results merge under a mutex.
        let combined: Mutex<Vec<(Rect3, u64)>> = Mutex::new(Vec::with_capacity(existing.len()));
        let chunk_size = existing.len().div_ceil(num_threads).max(1);
        let failure: Mutex<Option<SqlError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for (pi, part) in existing.chunks(chunk_size).enumerate() {
                let combined = &combined;
                let failure = &failure;
                scope.spawn(move || {
                    let mut local: Vec<(Rect3, u64)> = Vec::with_capacity(part.len());
                    let base = (pi * chunk_size) as u64;
                    for (i, v) in part.iter().enumerate() {
                        match value_box3(v) {
                            Ok(Some(rect)) => local.push((rect, base + i as u64)),
                            Ok(None) => {}
                            Err(e) => {
                                *failure.lock().unwrap() = Some(e);
                                return;
                            }
                        }
                    }
                    combined.lock().unwrap().extend(local);
                });
            }
        });
        if let Some(e) = failure.into_inner().unwrap() {
            return Err(e);
        }
        // Phase 3 — BulkConstruct.
        let tree = RTree::bulk_load(combined.into_inner().unwrap());
        Ok(SpatioTemporalIndex { name: name.to_string(), method, column, tree })
    }

    fn append_values(&mut self, values: &[Value], first_row: u64) -> SqlResult<()> {
        for (i, v) in values.iter().enumerate() {
            if let Some(rect) = value_box3(v)? {
                self.tree.insert(rect, first_row + i as u64);
            }
        }
        Ok(())
    }

    fn scan(&self, op: &str, constant: &Value) -> SqlResult<Option<Vec<u64>>> {
        // The scan matcher (§4.3): overlap (and containment, which implies
        // box overlap) against an stbox/tgeompoint constant.
        if op != "&&" && op != "@>" && op != "<@" {
            return Ok(None);
        }
        let Some(rect) = value_box3(constant)? else {
            return Ok(Some(Vec::new()));
        };
        Ok(Some(self.tree.search(&rect)))
    }
}

// ------------------------------------------------------------ quackdb side

/// TRTREE instance bound to a quackdb table column.
pub struct TRTreeIndex(SpatioTemporalIndex);

impl quackdb::TableIndex for TRTreeIndex {
    fn name(&self) -> &str {
        &self.0.name
    }
    fn method(&self) -> &str {
        self.0.method
    }
    fn column(&self) -> usize {
        self.0.column
    }
    fn append(&mut self, values: &[Value], first_row: u64) -> SqlResult<()> {
        self.0.append_values(values, first_row)
    }
    fn try_scan(&self, op: &str, constant: &Value) -> SqlResult<Option<Vec<u64>>> {
        self.0.scan(op, constant)
    }
    fn len(&self) -> usize {
        self.0.tree.len()
    }
}

/// The registered TRTREE index type (the paper's `RegisterRTreeIndex`,
/// named TRTREE to avoid clashing with Spatial's RTREE).
pub struct TRTreeIndexType;

impl quackdb::IndexType for TRTreeIndexType {
    fn type_name(&self) -> &str {
        "TRTREE"
    }
    fn can_index(&self, ty: &LogicalType) -> bool {
        is_indexable(ty)
    }
    fn create(
        &self,
        index_name: &str,
        column: usize,
        _column_type: &LogicalType,
        existing: &[Value],
    ) -> SqlResult<Box<dyn quackdb::TableIndex>> {
        Ok(Box::new(TRTreeIndex(SpatioTemporalIndex::bulk_build(
            index_name, "TRTREE", column, existing,
        )?)))
    }
}

/// The geometry-column RTREE analogue of DuckDB Spatial's index (used by
/// the Figure 2 comparison): indexes GEOMETRY/WKB columns by their 2-D
/// bounding box (time axis collapsed), answering `ST_Intersects`-shaped
/// probes via the `&&` pattern on geometry values.
pub struct GeomRTreeIndex {
    inner: SpatioTemporalIndex,
}

impl quackdb::TableIndex for GeomRTreeIndex {
    fn name(&self) -> &str {
        &self.inner.name
    }
    fn method(&self) -> &str {
        "RTREE"
    }
    fn column(&self) -> usize {
        self.inner.column
    }
    fn append(&mut self, values: &[Value], first_row: u64) -> SqlResult<()> {
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            let g = crate::types::value_to_geometry(v)?;
            if let Some(r) = g.bounding_rect() {
                self.inner.tree.insert(
                    Rect3::new(
                        [r.xmin, r.ymin, f64::NEG_INFINITY],
                        [r.xmax, r.ymax, f64::INFINITY],
                    ),
                    first_row + i as u64,
                );
            }
        }
        Ok(())
    }
    fn try_scan(&self, op: &str, constant: &Value) -> SqlResult<Option<Vec<u64>>> {
        if op != "&&" {
            return Ok(None);
        }
        let g = crate::types::value_to_geometry(constant)?;
        let Some(r) = g.bounding_rect() else { return Ok(Some(Vec::new())) };
        Ok(Some(self.inner.tree.search(&Rect3::new(
            [r.xmin, r.ymin, f64::NEG_INFINITY],
            [r.xmax, r.ymax, f64::INFINITY],
        ))))
    }
    fn len(&self) -> usize {
        self.inner.tree.len()
    }
}

/// `USING RTREE(geom)` — DuckDB Spatial's native index, reproduced.
pub struct GeomRTreeIndexType;

impl quackdb::IndexType for GeomRTreeIndexType {
    fn type_name(&self) -> &str {
        "RTREE"
    }
    fn can_index(&self, ty: &LogicalType) -> bool {
        matches!(ty, LogicalType::Blob) || matches!(ty, LogicalType::Ext(n) if &**n == "geometry")
    }
    fn create(
        &self,
        index_name: &str,
        column: usize,
        _column_type: &LogicalType,
        existing: &[Value],
    ) -> SqlResult<Box<dyn quackdb::TableIndex>> {
        let mut idx = GeomRTreeIndex {
            inner: SpatioTemporalIndex {
                name: index_name.to_string(),
                method: "RTREE",
                column,
                tree: RTree::new(),
            },
        };
        // Bulk path: collect boxes then STR-pack.
        let mut items = Vec::with_capacity(existing.len());
        for (i, v) in existing.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            let g = crate::types::value_to_geometry(v)?;
            if let Some(r) = g.bounding_rect() {
                items.push((
                    Rect3::new(
                        [r.xmin, r.ymin, f64::NEG_INFINITY],
                        [r.xmax, r.ymax, f64::INFINITY],
                    ),
                    i as u64,
                ));
            }
        }
        idx.inner.tree = RTree::bulk_load(items);
        Ok(Box::new(idx))
    }
}

// ------------------------------------------------------------- rowdb side

/// GiST instance bound to a rowdb table column.
pub struct GistIndex(SpatioTemporalIndex);

impl mduck_rowdb::RowIndex for GistIndex {
    fn name(&self) -> &str {
        &self.0.name
    }
    fn method(&self) -> &str {
        "GIST"
    }
    fn column(&self) -> usize {
        self.0.column
    }
    fn append(&mut self, values: &[Value], first_row: u64) -> SqlResult<()> {
        self.0.append_values(values, first_row)
    }
    fn try_scan(&self, op: &str, probe: &Value) -> SqlResult<Option<Vec<u64>>> {
        self.0.scan(op, probe)
    }
    fn len(&self) -> usize {
        self.0.tree.len()
    }
}

/// `USING GIST` for the PostgreSQL-like baseline.
pub struct GistIndexType;

impl mduck_rowdb::RowIndexType for GistIndexType {
    fn type_name(&self) -> &str {
        "GIST"
    }
    fn can_index(&self, ty: &LogicalType) -> bool {
        is_indexable(ty)
    }
    fn create(
        &self,
        index_name: &str,
        column: usize,
        _column_type: &LogicalType,
        existing: &[Value],
    ) -> SqlResult<Box<dyn mduck_rowdb::RowIndex>> {
        Ok(Box::new(GistIndex(SpatioTemporalIndex::bulk_build(
            index_name, "GIST", column, existing,
        )?)))
    }
}

// Keep downcast paths alive for tests.
#[allow(unused)]
fn _wrappers(_: (&MdStbox, &MdTGeomPoint, &MdTGeometry)) {}
