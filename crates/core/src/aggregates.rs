//! Temporal aggregates: `extent`, `tcount`, and the `tgeompointseq`
//! sequence-building aggregate the §6.2 data-preparation pipeline uses to
//! fold per-observation instants into trip sequences.

use mduck_geo::point::Point;
use mduck_sql::{AggState, LogicalType, Registry, SqlResult, Value};
use mduck_temporal::temporal::{Interp, TGeomPoint, TInstant, TSequence, Temporal};
use mduck_temporal::temporal::{ExtentAgg, TCountAgg};

use crate::types::{lt, to_exec, value_to_stbox, value_to_tgeom, value_to_ts, MdStbox, MdTGeomPoint, MdTInt};

struct ExtentState {
    agg: ExtentAgg,
}

impl AggState for ExtentState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let b = value_to_stbox(&args[0])?;
        self.agg.add_stbox(&b).map_err(to_exec)
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        Ok(match self.agg.finish() {
            Some(b) => MdStbox(b).into_value(),
            None => Value::Null,
        })
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        // Bounding-box union is pure min/max comparison — no rounding, so
        // partial extents merge exactly.
        let o = mduck_sql::downcast_partial::<ExtentState>(other)?;
        if let Some(b) = o.agg.finish() {
            self.agg.add_stbox(&b).map_err(to_exec)?;
        }
        Ok(())
    }
}

struct TCountState {
    agg: TCountAgg,
}

impl AggState for TCountState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let t = value_to_tgeom(&args[0])?;
        self.agg.add_temporal(&t.temp);
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        Ok(match self.agg.finish() {
            Some(t) => MdTInt(t).into_value(),
            None => Value::Null,
        })
    }
}

/// Builds a linear `tgeompoint` sequence from instant observations
/// (`tgeompointseq(tgeompoint-instant)`); unordered input is sorted.
struct SeqBuildState {
    instants: Vec<TInstant<Point>>,
    srid: i32,
}

impl AggState for SeqBuildState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if args[0].is_null() {
            return Ok(());
        }
        let t = value_to_tgeom(&args[0])?;
        if self.srid == 0 {
            self.srid = t.srid;
        }
        for i in t.temp.instants() {
            self.instants.push(i.clone());
        }
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        if self.instants.is_empty() {
            return Ok(Value::Null);
        }
        let mut instants = std::mem::take(&mut self.instants);
        instants.sort_by_key(|i| i.t);
        instants.dedup_by(|a, b| a.t == b.t);
        let seq = TSequence::new(instants, true, true, Interp::Linear).map_err(to_exec)?;
        Ok(MdTGeomPoint(TGeomPoint::new(Temporal::Sequence(seq), self.srid)).into_value())
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        // Finalize sorts by timestamp and dedups keeping the first of each
        // equal-timestamp run, so appending in range order reproduces the
        // serial result exactly.
        let o = mduck_sql::downcast_partial::<SeqBuildState>(other)?;
        if self.srid == 0 {
            self.srid = o.srid;
        }
        self.instants.append(&mut o.instants);
        Ok(())
    }
}

/// Builds a linear trip from raw (x, y, t) observations:
/// `tgeompointseq_xy(x, y, t)` — the load path BerlinMOD uses.
struct SeqBuildXyState {
    samples: Vec<(TInstant<Point>,)>,
}

impl AggState for SeqBuildXyState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if args.iter().any(Value::is_null) {
            return Ok(());
        }
        let p = Point::new(args[0].as_float()?, args[1].as_float()?);
        self.samples.push((TInstant::new(p, value_to_ts(&args[2])?),));
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        if self.samples.is_empty() {
            return Ok(Value::Null);
        }
        let mut instants: Vec<TInstant<Point>> =
            std::mem::take(&mut self.samples).into_iter().map(|(i,)| i).collect();
        instants.sort_by_key(|i| i.t);
        instants.dedup_by(|a, b| a.t == b.t);
        let seq = TSequence::new(instants, true, true, Interp::Linear).map_err(to_exec)?;
        Ok(MdTGeomPoint(TGeomPoint::new(Temporal::Sequence(seq), 0)).into_value())
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        let o = mduck_sql::downcast_partial::<SeqBuildXyState>(other)?;
        self.samples.append(&mut o.samples);
        Ok(())
    }
}

/// Register the temporal aggregates.
pub fn register_aggregates(reg: &mut Registry) {
    for src in [lt("stbox"), lt("tgeompoint"), lt("tgeometry")] {
        reg.register_aggregate("extent", vec![src], lt("stbox"), || {
            Box::new(ExtentState { agg: ExtentAgg::new() })
        });
    }
    for src in [lt("tgeompoint"), lt("tgeometry")] {
        reg.register_aggregate("tcount", vec![src.clone()], lt("tint"), || {
            Box::new(TCountState { agg: TCountAgg::new() })
        });
        reg.register_aggregate("tgeompointseq", vec![src], lt("tgeompoint"), || {
            Box::new(SeqBuildState { instants: Vec::new(), srid: 0 })
        });
    }
    reg.register_aggregate(
        "tgeompointseq_xy",
        vec![LogicalType::Float, LogicalType::Float, LogicalType::Timestamp],
        lt("tgeompoint"),
        || Box::new(SeqBuildXyState { samples: Vec::new() }),
    );
}
