//! Extension type wrappers: every MEOS type exposed to the engines as a
//! user-defined type (the paper's §3.3 — MEOS types live in DuckDB as
//! aliased BLOBs whose contents only the extension's functions interpret).

use std::any::Any;
use std::sync::Arc;

use mduck_geo::{gserialized, Geometry};
use mduck_sql::{ExtObject, ExtValue, LogicalType, SqlResult, Value};
use mduck_temporal::set::{DateSet, FloatSet, GeomSet, IntSet, TextSet, TstzSet};
use mduck_temporal::span::{DateSpan, FloatSpan, IntSpan, TstzSpan};
use mduck_temporal::spanset::{DateSpanSet, FloatSpanSet, IntSpanSet, TstzSpanSet};
use mduck_temporal::temporal::{TBool, TFloat, TGeomPoint, TInt, TText};
use mduck_temporal::{STBox, TBox};

/// Implement [`ExtObject`] for a wrapper around a temporal-algebra type.
macro_rules! ext_wrapper {
    ($wrapper:ident, $inner:ty, $name:literal) => {
        /// Extension payload wrapper (`
        #[doc = $name]
        /// `).
        #[derive(Debug, Clone, PartialEq)]
        pub struct $wrapper(pub $inner);

        impl ExtObject for $wrapper {
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn ext_type_name(&self) -> &str {
                $name
            }
            fn to_text(&self) -> String {
                self.0.to_string()
            }
            fn to_bytes(&self) -> Vec<u8> {
                self.0.to_string().into_bytes()
            }
        }

        impl $wrapper {
            /// Wrap into a runtime [`Value`].
            pub fn into_value(self) -> Value {
                Value::Ext(ExtValue::new(Arc::new(self)))
            }
        }
    };
}

// Boxes.
ext_wrapper!(MdStbox, STBox, "stbox");
ext_wrapper!(MdTbox, TBox, "tbox");

// Spans.
ext_wrapper!(MdIntSpan, IntSpan, "intspan");
ext_wrapper!(MdBigintSpan, IntSpan, "bigintspan");
ext_wrapper!(MdFloatSpan, FloatSpan, "floatspan");
ext_wrapper!(MdDateSpan, DateSpan, "datespan");
ext_wrapper!(MdTstzSpan, TstzSpan, "tstzspan");

// Span sets.
ext_wrapper!(MdIntSpanSet, IntSpanSet, "intspanset");
ext_wrapper!(MdBigintSpanSet, IntSpanSet, "bigintspanset");
ext_wrapper!(MdFloatSpanSet, FloatSpanSet, "floatspanset");
ext_wrapper!(MdDateSpanSet, DateSpanSet, "datespanset");
ext_wrapper!(MdTstzSpanSet, TstzSpanSet, "tstzspanset");

// Sets.
ext_wrapper!(MdIntSet, IntSet, "intset");
ext_wrapper!(MdBigintSet, IntSet, "bigintset");
ext_wrapper!(MdFloatSet, FloatSet, "floatset");
ext_wrapper!(MdTextSet, TextSet, "textset");
ext_wrapper!(MdDateSet, DateSet, "dateset");
ext_wrapper!(MdTstzSet, TstzSet, "tstzset");

// Temporal types.
ext_wrapper!(MdTBool, TBool, "tbool");
ext_wrapper!(MdTInt, TInt, "tint");
ext_wrapper!(MdTFloat, TFloat, "tfloat");
ext_wrapper!(MdTText, TText, "ttext");

/// `tgeompoint` (prints via `asText`, serializes via EWKT-style text).
#[derive(Debug, Clone, PartialEq)]
pub struct MdTGeomPoint(pub TGeomPoint);

impl ExtObject for MdTGeomPoint {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn ext_type_name(&self) -> &str {
        "tgeompoint"
    }
    fn to_text(&self) -> String {
        self.0.as_ewkt()
    }
    fn to_bytes(&self) -> Vec<u8> {
        // The MEOS-flat-varlena-style wire format (see
        // `mduck_temporal::binser`): what MobilityDB stores on disk and
        // what the row engine deforms/detoasts per access.
        mduck_temporal::binser::tgeompoint_to_bytes(&self.0)
    }
    fn approx_bytes(&self) -> u64 {
        tgeompoint_approx_bytes(&self.0)
    }
}

impl MdTGeomPoint {
    pub fn into_value(self) -> Value {
        Value::Ext(ExtValue::new(Arc::new(self)))
    }
}

/// `tgeometry`: the general temporal geometry of Table 1. Backed by the
/// same point implementation (the paper's evaluation only moves points);
/// its default interpolation is `step`, matching MobilityDB.
#[derive(Debug, Clone, PartialEq)]
pub struct MdTGeometry(pub TGeomPoint);

impl ExtObject for MdTGeometry {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn ext_type_name(&self) -> &str {
        "tgeometry"
    }
    fn to_text(&self) -> String {
        // Step interpolation is tgeometry's default, so the Interp prefix
        // (printed by the point-type formatter, whose default is linear)
        // is dropped — matching the paper's §3.5 output.
        let s = self.0.as_ewkt();
        match s.strip_prefix("Interp=Step;") {
            Some(rest) => rest.to_string(),
            None => s,
        }
    }
    fn to_bytes(&self) -> Vec<u8> {
        mduck_temporal::binser::tgeompoint_to_bytes(&self.0)
    }
    fn approx_bytes(&self) -> u64 {
        tgeompoint_approx_bytes(&self.0)
    }
}

/// Size estimate shared by the temporal-point wrappers: sequences grow
/// with their instant count (x, y, t, flags per instant), so a BerlinMOD
/// trip weighs its real length rather than the 64-byte `ExtObject`
/// default.
fn tgeompoint_approx_bytes(t: &TGeomPoint) -> u64 {
    48 + t.temp.num_instants() as u64 * 32
}

impl MdTGeometry {
    pub fn into_value(self) -> Value {
        Value::Ext(ExtValue::new(Arc::new(self)))
    }
}

/// `geomset`.
#[derive(Debug, Clone, PartialEq)]
pub struct MdGeomSet(pub GeomSet);

impl ExtObject for MdGeomSet {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn ext_type_name(&self) -> &str {
        "geomset"
    }
    fn to_text(&self) -> String {
        self.0.as_ewkt(None)
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.0.as_ewkt(None).into_bytes()
    }
}

impl MdGeomSet {
    pub fn into_value(self) -> Value {
        Value::Ext(ExtValue::new(Arc::new(self)))
    }
}

/// `geometry`: the native (GSERIALIZED-like) geometry type. This is the
/// stand-in for the DuckDB Spatial extension's GEOMETRY; the `_gs`
/// functions of §6.3 return it directly, skipping WKB round trips.
#[derive(Debug, Clone, PartialEq)]
pub struct MdGeom(pub Geometry);

impl ExtObject for MdGeom {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn ext_type_name(&self) -> &str {
        "geometry"
    }
    fn to_text(&self) -> String {
        mduck_geo::wkt::to_ewkt(&self.0, None)
    }
    fn to_bytes(&self) -> Vec<u8> {
        gserialized::to_native(&self.0)
    }
}

impl MdGeom {
    pub fn into_value(self) -> Value {
        Value::Ext(ExtValue::new(Arc::new(self)))
    }
}

// ---------------------------------------------------------------- helpers

/// Logical types for the registered UDTs.
pub fn lt(name: &str) -> LogicalType {
    LogicalType::ext(name)
}

/// Extract a geometry from any of the accepted spatial representations:
/// the native GEOMETRY ext type, a WKB/native BLOB, or WKT text. This is
/// the proxy layer of §6.2/§7 — BLOB-borne geometries are decoded on every
/// call, which is precisely the overhead the `_gs` fast path avoids.
pub fn value_to_geometry(v: &Value) -> SqlResult<Geometry> {
    match v {
        Value::Ext(e) => {
            if let Some(g) = e.downcast::<MdGeom>() {
                return Ok(g.0.clone());
            }
            if let Some(b) = e.downcast::<MdStbox>() {
                return b.0.to_geometry().map_err(to_exec);
            }
            Err(mduck_sql::SqlError::execution(format!(
                "expected a geometry, got {}",
                e.type_name()
            )))
        }
        Value::Blob(b) => {
            if gserialized::is_native(b) {
                gserialized::from_native(b).map_err(to_exec)
            } else {
                mduck_geo::wkb::from_wkb(b).map_err(to_exec)
            }
        }
        Value::Text(s) => mduck_geo::wkt::parse_wkt(s).map_err(to_exec),
        other => Err(mduck_sql::SqlError::execution(format!(
            "expected a geometry, got {other:?}"
        ))),
    }
}

/// Extract a tgeompoint (accepting both tgeompoint and tgeometry values).
pub fn value_to_tgeom(v: &Value) -> SqlResult<TGeomPoint> {
    let e = v.as_ext()?;
    if let Some(t) = e.downcast::<MdTGeomPoint>() {
        return Ok(t.0.clone());
    }
    if let Some(t) = e.downcast::<MdTGeometry>() {
        return Ok(t.0.clone());
    }
    Err(mduck_sql::SqlError::execution(format!(
        "expected a temporal geometry, got {}",
        e.type_name()
    )))
}

/// Extract an stbox.
pub fn value_to_stbox(v: &Value) -> SqlResult<STBox> {
    let e = v.as_ext()?;
    if let Some(b) = e.downcast::<MdStbox>() {
        return Ok(b.0);
    }
    if let Some(t) = e.downcast::<MdTGeomPoint>() {
        return Ok(t.0.stbox());
    }
    if let Some(t) = e.downcast::<MdTGeometry>() {
        return Ok(t.0.stbox());
    }
    Err(mduck_sql::SqlError::execution(format!(
        "expected an stbox, got {}",
        e.type_name()
    )))
}

/// Extract a `tstzspan`.
pub fn value_to_period(v: &Value) -> SqlResult<TstzSpan> {
    Ok(v.ext_as::<MdTstzSpan>()?.0)
}

/// Map temporal-algebra errors into execution errors.
pub fn to_exec(e: impl std::fmt::Display) -> mduck_sql::SqlError {
    mduck_sql::SqlError::execution(e.to_string())
}

/// Wrap an interval value.
pub fn value_to_interval(v: &Value) -> SqlResult<mduck_temporal::Interval> {
    match v {
        Value::Interval { months, days, usecs } => Ok(mduck_temporal::Interval {
            months: *months,
            days: *days,
            usecs: *usecs,
        }),
        other => Err(mduck_sql::SqlError::execution(format!(
            "expected an interval, got {other:?}"
        ))),
    }
}

/// Wrap a timestamp value.
pub fn value_to_ts(v: &Value) -> SqlResult<mduck_temporal::TimestampTz> {
    Ok(mduck_temporal::TimestampTz(v.as_timestamp()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mduck_temporal::parse_stbox;
    use mduck_temporal::temporal::parse_tgeompoint;

    #[test]
    fn wrappers_print_like_their_inner_type() {
        let b = parse_stbox("STBOX X((1,2),(3,4))").unwrap();
        let v = MdStbox(b).into_value();
        assert_eq!(v.to_string(), "STBOX X(((1,2),(3,4)))");
        assert_eq!(v.logical_type(), LogicalType::ext("stbox"));
    }

    #[test]
    fn geometry_accepts_all_representations() {
        let g = mduck_geo::wkt::parse_wkt("POINT(1 2)").unwrap();
        // Native ext value.
        let v = MdGeom(g.clone()).into_value();
        assert_eq!(value_to_geometry(&v).unwrap(), g);
        // WKB blob.
        let v = Value::blob(mduck_geo::wkb::to_wkb(&g));
        assert_eq!(value_to_geometry(&v).unwrap(), g);
        // Native blob.
        let v = Value::blob(gserialized::to_native(&g));
        assert_eq!(value_to_geometry(&v).unwrap(), g);
        // WKT text.
        let v = Value::text("POINT(1 2)");
        assert_eq!(value_to_geometry(&v).unwrap(), g);
        assert!(value_to_geometry(&Value::Int(3)).is_err());
    }

    #[test]
    fn tgeom_and_stbox_extraction() {
        let t = parse_tgeompoint("[Point(0 0)@2025-01-01, Point(2 2)@2025-01-02]").unwrap();
        let v = MdTGeomPoint(t.clone()).into_value();
        assert_eq!(value_to_tgeom(&v).unwrap(), t);
        let b = value_to_stbox(&v).unwrap();
        assert_eq!(b.rect.unwrap().xmax, 2.0);
        assert!(b.period.is_some());
    }

    #[test]
    fn ext_equality_via_bytes() {
        let a = MdTstzSpan(mduck_temporal::parse_span("[2025-01-01, 2025-01-02]").unwrap())
            .into_value();
        let b = MdTstzSpan(mduck_temporal::parse_span("[2025-01-01, 2025-01-02]").unwrap())
            .into_value();
        assert!(a.sql_eq(&b));
    }
}
