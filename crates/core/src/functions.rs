//! Scalar functions and operators (§3.4): the MEOS functionality exposed
//! through the engines' function registries, operators registered as
//! binary scalar functions named by their symbol — exactly the paper's
//! `RegisterFunction(ScalarFunction("&&", ...))` pattern.

use std::sync::Arc;

use mduck_geo::algorithms;
use mduck_geo::Geometry;
use mduck_sql::{LogicalType, Registry, SqlError, SqlResult, Value};
use mduck_temporal::span::{Span, TstzSpan};
use mduck_temporal::spanset::TstzSpanSet;
use mduck_temporal::temporal::{Interp, TGeomPoint, TInstant, TSequence, Temporal};
use mduck_temporal::{Interval, STBox, TimestampTz};

use crate::types::*;

/// Register every scalar function and operator.
pub fn register_functions(reg: &mut Registry) {
    register_accessors(reg);
    register_restrictions(reg);
    register_transformations(reg);
    register_spatial_relationships(reg);
    register_box_functions(reg);
    register_operators(reg);
    register_span_set_functions(reg);
    register_constructors(reg);
}

fn lt_any_temporal() -> Vec<LogicalType> {
    vec![
        lt("tbool"),
        lt("tint"),
        lt("tfloat"),
        lt("ttext"),
        lt("tgeompoint"),
        lt("tgeometry"),
    ]
}

/// Apply a closure to whatever concrete temporal hides in the value.
fn with_temporal<R>(
    v: &Value,
    f: impl Fn(TemporalRef<'_>) -> SqlResult<R>,
) -> SqlResult<R> {
    let e = v.as_ext()?;
    if let Some(t) = e.downcast::<MdTBool>() {
        return f(TemporalRef::Bool(&t.0));
    }
    if let Some(t) = e.downcast::<MdTInt>() {
        return f(TemporalRef::Int(&t.0));
    }
    if let Some(t) = e.downcast::<MdTFloat>() {
        return f(TemporalRef::Float(&t.0));
    }
    if let Some(t) = e.downcast::<MdTText>() {
        return f(TemporalRef::Text(&t.0));
    }
    if let Some(t) = e.downcast::<MdTGeomPoint>() {
        return f(TemporalRef::Geom(&t.0));
    }
    if let Some(t) = e.downcast::<MdTGeometry>() {
        return f(TemporalRef::Geom(&t.0));
    }
    Err(SqlError::execution(format!("expected a temporal value, got {}", e.type_name())))
}

/// A borrowed view over any temporal type.
pub enum TemporalRef<'a> {
    Bool(&'a Temporal<bool>),
    Int(&'a Temporal<i64>),
    Float(&'a Temporal<f64>),
    Text(&'a Temporal<String>),
    Geom(&'a TGeomPoint),
}

impl TemporalRef<'_> {
    fn timespan(&self) -> TstzSpan {
        match self {
            TemporalRef::Bool(t) => t.timespan(),
            TemporalRef::Int(t) => t.timespan(),
            TemporalRef::Float(t) => t.timespan(),
            TemporalRef::Text(t) => t.timespan(),
            TemporalRef::Geom(t) => t.temp.timespan(),
        }
    }

    fn duration(&self, boundspan: bool) -> Interval {
        match self {
            TemporalRef::Bool(t) => t.duration(boundspan),
            TemporalRef::Int(t) => t.duration(boundspan),
            TemporalRef::Float(t) => t.duration(boundspan),
            TemporalRef::Text(t) => t.duration(boundspan),
            TemporalRef::Geom(t) => t.temp.duration(boundspan),
        }
    }

    fn num_instants(&self) -> usize {
        match self {
            TemporalRef::Bool(t) => t.num_instants(),
            TemporalRef::Int(t) => t.num_instants(),
            TemporalRef::Float(t) => t.num_instants(),
            TemporalRef::Text(t) => t.num_instants(),
            TemporalRef::Geom(t) => t.temp.num_instants(),
        }
    }

    fn value_at(&self, ts: TimestampTz) -> Option<Value> {
        match self {
            TemporalRef::Bool(t) => t.value_at(ts).map(Value::Bool),
            TemporalRef::Int(t) => t.value_at(ts).map(Value::Int),
            TemporalRef::Float(t) => t.value_at(ts).map(Value::Float),
            TemporalRef::Text(t) => t.value_at(ts).map(Value::text),
            TemporalRef::Geom(t) => t
                .value_at(ts)
                .map(|g| Value::blob(mduck_geo::wkb::to_wkb(&g))),
        }
    }
}

// ---------------------------------------------------------------- accessors

fn register_accessors(reg: &mut Registry) {
    for tty in lt_any_temporal() {
        // duration(temp [, boundspan]).
        reg.register_scalar("duration", vec![tty.clone(), LogicalType::Bool], LogicalType::Interval, |a| {
            with_temporal(&a[0], |t| {
                let iv = t.duration(a[1].as_bool()?);
                Ok(Value::Interval { months: iv.months, days: iv.days, usecs: iv.usecs })
            })
        });
        reg.register_scalar("duration", vec![tty.clone()], LogicalType::Interval, |a| {
            with_temporal(&a[0], |t| {
                let iv = t.duration(false);
                Ok(Value::Interval { months: iv.months, days: iv.days, usecs: iv.usecs })
            })
        });
        reg.register_scalar("starttimestamp", vec![tty.clone()], LogicalType::Timestamp, |a| {
            with_temporal(&a[0], |t| Ok(Value::Timestamp(t.timespan().lower.0)))
        });
        reg.register_scalar("endtimestamp", vec![tty.clone()], LogicalType::Timestamp, |a| {
            with_temporal(&a[0], |t| Ok(Value::Timestamp(t.timespan().upper.0)))
        });
        reg.register_scalar("numinstants", vec![tty.clone()], LogicalType::Int, |a| {
            with_temporal(&a[0], |t| Ok(Value::Int(t.num_instants() as i64)))
        });
        reg.register_scalar("timespan", vec![tty.clone()], lt("tstzspan"), |a| {
            with_temporal(&a[0], |t| Ok(MdTstzSpan(t.timespan()).into_value()))
        });
    }
    // valueAtTimestamp with type-correct returns (Query 3 casts the
    // tgeompoint result to GEOMETRY, so it must be a WKB blob).
    for (tty, ret) in [
        (lt("tbool"), LogicalType::Bool),
        (lt("tint"), LogicalType::Int),
        (lt("tfloat"), LogicalType::Float),
        (lt("ttext"), LogicalType::Text),
        (lt("tgeompoint"), LogicalType::Blob),
        (lt("tgeometry"), LogicalType::Blob),
    ] {
        reg.register_scalar(
            "valueattimestamp",
            vec![tty, LogicalType::Timestamp],
            ret,
            |a| {
                with_temporal(&a[0], |t| {
                    Ok(t.value_at(value_to_ts(&a[1])?).unwrap_or(Value::Null))
                })
            },
        );
    }

    // time(temp) → tstzspanset.
    for tty in lt_any_temporal() {
        reg.register_scalar("gettime", vec![tty], lt("tstzspanset"), |a| {
            with_temporal(&a[0], |t| {
                let ps = match t {
                    TemporalRef::Bool(t) => t.time(),
                    TemporalRef::Int(t) => t.time(),
                    TemporalRef::Float(t) => t.time(),
                    TemporalRef::Text(t) => t.time(),
                    TemporalRef::Geom(t) => t.temp.time(),
                };
                Ok(MdTstzSpanSet(ps).into_value())
            })
        });
    }
    // startValue / endValue / min / max for tfloat and tint.
    reg.register_scalar("startvalue", vec![lt("tfloat")], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].ext_as::<MdTFloat>()?.0.start_value()))
    });
    reg.register_scalar("endvalue", vec![lt("tfloat")], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].ext_as::<MdTFloat>()?.0.end_value()))
    });
    reg.register_scalar("minvalue", vec![lt("tfloat")], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].ext_as::<MdTFloat>()?.0.min_value()))
    });
    reg.register_scalar("maxvalue", vec![lt("tfloat")], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].ext_as::<MdTFloat>()?.0.max_value()))
    });
    reg.register_scalar("startvalue", vec![lt("tint")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdTInt>()?.0.start_value()))
    });
    reg.register_scalar("minvalue", vec![lt("tint")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdTInt>()?.0.min_value()))
    });
    reg.register_scalar("maxvalue", vec![lt("tint")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdTInt>()?.0.max_value()))
    });

    // tgeompoint spatial accessors.
    for src in [lt("tgeompoint"), lt("tgeometry")] {
        // trajectory → WKB_BLOB (the §7 proxy layer) and trajectory_gs →
        // native GEOMETRY (the §6.3 optimization).
        reg.register_scalar("trajectory", vec![src.clone()], LogicalType::Blob, |a| {
            let t = value_to_tgeom(&a[0])?;
            Ok(Value::blob(mduck_geo::wkb::to_wkb(&t.trajectory())))
        });
        reg.register_scalar("trajectory_gs", vec![src.clone()], lt("geometry"), |a| {
            let t = value_to_tgeom(&a[0])?;
            Ok(MdGeom(t.trajectory()).into_value())
        });
        reg.register_scalar("length", vec![src.clone()], LogicalType::Float, |a| {
            Ok(Value::Float(value_to_tgeom(&a[0])?.length()))
        });
        reg.register_scalar("speed", vec![src.clone()], lt("tfloat"), |a| {
            let t = value_to_tgeom(&a[0])?;
            Ok(MdTFloat(t.speed().map_err(to_exec)?).into_value())
        });
        reg.register_scalar("srid", vec![src.clone()], LogicalType::Int, |a| {
            Ok(Value::Int(value_to_tgeom(&a[0])?.srid as i64))
        });
        reg.register_scalar("astext", vec![src.clone()], LogicalType::Text, |a| {
            // tgeometry values print through their wrapper (which hides the
            // Interp=Step prefix, step being their default interpolation).
            let e = a[0].as_ext()?;
            if e.downcast::<MdTGeometry>().is_some() {
                return Ok(Value::text(e.obj.to_text()));
            }
            Ok(Value::text(value_to_tgeom(&a[0])?.as_text()))
        });
        reg.register_scalar("asewkt", vec![src.clone()], LogicalType::Text, |a| {
            let e = a[0].as_ext()?;
            if e.downcast::<MdTGeometry>().is_some() {
                return Ok(Value::text(e.obj.to_text()));
            }
            Ok(Value::text(value_to_tgeom(&a[0])?.as_ewkt()))
        });
    }
    // length(tstzspanset)/duration for period sets.
    reg.register_scalar("duration", vec![lt("tstzspanset")], LogicalType::Interval, |a| {
        let ps = &a[0].ext_as::<MdTstzSpanSet>()?.0;
        let iv = ps.duration();
        Ok(Value::Interval { months: iv.months, days: iv.days, usecs: iv.usecs })
    });
    reg.register_scalar(
        "duration",
        vec![lt("tstzspanset"), LogicalType::Bool],
        LogicalType::Interval,
        |a| {
            let ps = &a[0].ext_as::<MdTstzSpanSet>()?.0;
            let iv = if a[1].as_bool()? { ps.duration_bound() } else { ps.duration() };
            Ok(Value::Interval { months: iv.months, days: iv.days, usecs: iv.usecs })
        },
    );
    reg.register_scalar("duration", vec![lt("tstzspan")], LogicalType::Interval, |a| {
        let p = value_to_period(&a[0])?;
        let iv = p.duration();
        Ok(Value::Interval { months: iv.months, days: iv.days, usecs: iv.usecs })
    });
    // Span accessors.
    reg.register_scalar("lower", vec![lt("tstzspan")], LogicalType::Timestamp, |a| {
        Ok(Value::Timestamp(value_to_period(&a[0])?.lower.0))
    });
    reg.register_scalar("upper", vec![lt("tstzspan")], LogicalType::Timestamp, |a| {
        Ok(Value::Timestamp(value_to_period(&a[0])?.upper.0))
    });
    reg.register_scalar("starttimestamp", vec![lt("tstzspan")], LogicalType::Timestamp, |a| {
        Ok(Value::Timestamp(value_to_period(&a[0])?.lower.0))
    });
    reg.register_scalar("endtimestamp", vec![lt("tstzspan")], LogicalType::Timestamp, |a| {
        Ok(Value::Timestamp(value_to_period(&a[0])?.upper.0))
    });
    reg.register_scalar("numspans", vec![lt("tstzspanset")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdTstzSpanSet>()?.0.num_spans() as i64))
    });
    // Set accessors.
    reg.register_scalar("memsize", vec![lt("tstzset")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdTstzSet>()?.0.mem_size() as i64))
    });
    reg.register_scalar("memsize", vec![lt("intset")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdIntSet>()?.0.mem_size() as i64))
    });
    reg.register_scalar("memsize", vec![lt("floatset")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdFloatSet>()?.0.mem_size() as i64))
    });
    reg.register_scalar("numvalues", vec![lt("tstzset")], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].ext_as::<MdTstzSet>()?.0.len() as i64))
    });
    // asEWKT(geomset [, digits]).
    reg.register_scalar("asewkt", vec![lt("geomset")], LogicalType::Text, |a| {
        Ok(Value::text(a[0].ext_as::<MdGeomSet>()?.0.as_ewkt(None)))
    });
    reg.register_scalar(
        "asewkt",
        vec![lt("geomset"), LogicalType::Int],
        LogicalType::Text,
        |a| {
            let digits = a[1].as_int()? as usize;
            Ok(Value::text(a[0].ext_as::<MdGeomSet>()?.0.as_ewkt(Some(digits))))
        },
    );
    reg.register_scalar("astext", vec![lt("geometry")], LogicalType::Text, |a| {
        Ok(Value::text(mduck_geo::wkt::to_wkt(&a[0].ext_as::<MdGeom>()?.0, None)))
    });
    reg.register_scalar("asewkt", vec![lt("geometry")], LogicalType::Text, |a| {
        Ok(Value::text(mduck_geo::wkt::to_ewkt(&a[0].ext_as::<MdGeom>()?.0, None)))
    });
}

// -------------------------------------------------------------- restriction

fn register_restrictions(reg: &mut Registry) {
    for src in [lt("tgeompoint"), lt("tgeometry")] {
        reg.register_scalar("attime", vec![src.clone(), lt("tstzspan")], src.clone(), |a| {
            let t = value_to_tgeom(&a[0])?;
            match t.at_period(&value_to_period(&a[1])?) {
                Some(r) => Ok(MdTGeomPoint(r).into_value()),
                None => Ok(Value::Null),
            }
        });
        reg.register_scalar("attime", vec![src.clone(), lt("tstzspanset")], src.clone(), |a| {
            let t = value_to_tgeom(&a[0])?;
            let ps = &a[1].ext_as::<MdTstzSpanSet>()?.0;
            match t.at_periodset(ps) {
                Some(r) => Ok(MdTGeomPoint(r).into_value()),
                None => Ok(Value::Null),
            }
        });
        // atGeometry over WKB_BLOB (the paper's §6.2 signature) and over
        // native GEOMETRY.
        for geom_ty in [LogicalType::Blob, lt("geometry")] {
            reg.register_scalar("atgeometry", vec![src.clone(), geom_ty.clone()], src.clone(), |a| {
                let t = value_to_tgeom(&a[0])?;
                let g = value_to_geometry(&a[1])?;
                match t.at_geometry(&g).map_err(to_exec)? {
                    Some(r) => Ok(MdTGeomPoint(r).into_value()),
                    None => Ok(Value::Null),
                }
            });
            reg.register_scalar("atvalues", vec![src.clone(), geom_ty.clone()], src.clone(), |a| {
                let t = value_to_tgeom(&a[0])?;
                let g = value_to_geometry(&a[1])?;
                let p = g.as_point().ok_or_else(|| {
                    SqlError::execution("atValues expects a point geometry")
                })?;
                match t.at_value(p) {
                    Some(r) => Ok(MdTGeomPoint(r).into_value()),
                    None => Ok(Value::Null),
                }
            });
        }
        reg.register_scalar("atstbox", vec![src.clone(), lt("stbox")], src.clone(), |a| {
            let t = value_to_tgeom(&a[0])?;
            let b = value_to_stbox(&a[1])?;
            match t.at_stbox(&b).map_err(to_exec)? {
                Some(r) => Ok(MdTGeomPoint(r).into_value()),
                None => Ok(Value::Null),
            }
        });
        reg.register_scalar("minustime", vec![src.clone(), lt("tstzspan")], src.clone(), |a| {
            let t = value_to_tgeom(&a[0])?;
            let p = value_to_period(&a[1])?;
            match t.temp.minus_period(&p) {
                Some(r) => Ok(MdTGeomPoint(TGeomPoint::new(r, t.srid)).into_value()),
                None => Ok(Value::Null),
            }
        });
    }
    // whenTrue(tbool) → tstzspanset (Query 10).
    reg.register_scalar("whentrue", vec![lt("tbool")], lt("tstzspanset"), |a| {
        let t = &a[0].ext_as::<MdTBool>()?.0;
        match t.when_true() {
            Some(ps) => Ok(MdTstzSpanSet(ps).into_value()),
            None => Ok(Value::Null),
        }
    });
    // atTime for tfloat (used by speed-restriction analyses).
    reg.register_scalar("attime", vec![lt("tfloat"), lt("tstzspan")], lt("tfloat"), |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        match t.at_period(&value_to_period(&a[1])?) {
            Some(r) => Ok(MdTFloat(r).into_value()),
            None => Ok(Value::Null),
        }
    });
    reg.register_scalar("atvalues", vec![lt("tint"), LogicalType::Int], lt("tint"), |a| {
        let t = &a[0].ext_as::<MdTInt>()?.0;
        match t.at_value(&a[1].as_int()?) {
            Some(r) => Ok(MdTInt(r).into_value()),
            None => Ok(Value::Null),
        }
    });
    reg.register_scalar("atvalues", vec![lt("tfloat"), LogicalType::Float], lt("tfloat"), |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        match t.at_value(&a[1].as_float()?) {
            Some(r) => Ok(MdTFloat(r).into_value()),
            None => Ok(Value::Null),
        }
    });
}

// ---------------------------------------------------------- transformations

fn register_transformations(reg: &mut Registry) {
    // shiftScale over tstzset (the paper's §3.5 sample).
    reg.register_scalar(
        "shiftscale",
        vec![lt("tstzset"), LogicalType::Interval, LogicalType::Interval],
        lt("tstzset"),
        |a| {
            let s = &a[0].ext_as::<MdTstzSet>()?.0;
            let shift = value_to_interval(&a[1])?;
            let width = value_to_interval(&a[2])?;
            Ok(MdTstzSet(
                s.shift_scale(Some(shift), Some(width.approx_usecs() as f64)).map_err(to_exec)?,
            )
            .into_value())
        },
    );
    reg.register_scalar(
        "shift",
        vec![lt("tstzset"), LogicalType::Interval],
        lt("tstzset"),
        |a| {
            let s = &a[0].ext_as::<MdTstzSet>()?.0;
            Ok(MdTstzSet(s.shift(value_to_interval(&a[1])?)).into_value())
        },
    );
    reg.register_scalar(
        "shiftscale",
        vec![lt("intset"), LogicalType::Int, LogicalType::Int],
        lt("intset"),
        |a| {
            let s = &a[0].ext_as::<MdIntSet>()?.0;
            Ok(MdIntSet(
                s.shift_scale(Some(a[1].as_int()?), Some(a[2].as_int()? as f64))
                    .map_err(to_exec)?,
            )
            .into_value())
        },
    );
    reg.register_scalar(
        "shifttime",
        vec![lt("tgeompoint"), LogicalType::Interval],
        lt("tgeompoint"),
        |a| {
            let t = value_to_tgeom(&a[0])?;
            Ok(MdTGeomPoint(t.shift_time(&value_to_interval(&a[1])?)).into_value())
        },
    );
    // transform(geomset, srid), transform(geometry, srid), transform(stbox?).
    reg.register_scalar("transform", vec![lt("geomset"), LogicalType::Int], lt("geomset"), |a| {
        let s = &a[0].ext_as::<MdGeomSet>()?.0;
        Ok(MdGeomSet(s.transform(a[1].as_int()? as i32).map_err(to_exec)?).into_value())
    });
    for geom_ty in [lt("geometry"), LogicalType::Blob] {
        reg.register_scalar("transform", vec![geom_ty, LogicalType::Int], lt("geometry"), |a| {
            let g = value_to_geometry(&a[0])?;
            Ok(MdGeom(
                mduck_geo::transform::transform(&g, a[1].as_int()? as i32).map_err(to_exec)?,
            )
            .into_value())
        });
    }
    reg.register_scalar(
        "transform",
        vec![lt("tgeompoint"), LogicalType::Int],
        lt("tgeompoint"),
        |a| {
            let t = value_to_tgeom(&a[0])?;
            let to = a[1].as_int()? as i32;
            let mapped = t.temp.map_values(|p| {
                let g = Geometry::from_point(*p).with_srid(t.srid);
                mduck_geo::transform::transform(&g, to)
                    .ok()
                    .and_then(|g| g.as_point())
                    .unwrap_or(*p)
            });
            Ok(MdTGeomPoint(TGeomPoint::new(mapped, to)).into_value())
        },
    );
    // setInterp-style: toLinear / toStep.
    reg.register_scalar("setinterp", vec![lt("tgeompoint"), LogicalType::Text], lt("tgeompoint"), |a| {
        let t = value_to_tgeom(&a[0])?;
        let interp = match a[1].as_text()?.to_ascii_lowercase().as_str() {
            "linear" => Interp::Linear,
            "step" => Interp::Step,
            "discrete" => Interp::Discrete,
            other => return Err(SqlError::execution(format!("unknown interpolation {other:?}"))),
        };
        let seqs: Vec<TSequence<mduck_geo::Point>> = t
            .temp
            .as_sequences()
            .iter()
            .map(|s| {
                TSequence::new(s.instants().to_vec(), s.lower_inc, s.upper_inc, interp)
                    .map_err(to_exec)
            })
            .collect::<SqlResult<_>>()?;
        Ok(MdTGeomPoint(TGeomPoint::new(
            Temporal::from_sequences(seqs).map_err(to_exec)?,
            t.srid,
        ))
        .into_value())
    });
}

// ------------------------------------------------- spatial relationships

fn register_spatial_relationships(reg: &mut Registry) {
    for a_ty in [lt("tgeompoint"), lt("tgeometry")] {
        for b_ty in [lt("tgeompoint"), lt("tgeometry")] {
            // tDwithin (Query 10).
            reg.register_scalar(
                "tdwithin",
                vec![a_ty.clone(), b_ty.clone(), LogicalType::Float],
                lt("tbool"),
                |args| {
                    let a = value_to_tgeom(&args[0])?;
                    let b = value_to_tgeom(&args[1])?;
                    match a.tdwithin(&b, args[2].as_float()?) {
                        Some(t) => Ok(MdTBool(t).into_value()),
                        None => Ok(Value::Null),
                    }
                },
            );
            // eDwithin (Query 6 / the demo).
            reg.register_scalar(
                "edwithin",
                vec![a_ty.clone(), b_ty.clone(), LogicalType::Float],
                LogicalType::Bool,
                |args| {
                    let a = value_to_tgeom(&args[0])?;
                    let b = value_to_tgeom(&args[1])?;
                    Ok(Value::Bool(a.edwithin(&b, args[2].as_float()?)))
                },
            );
            reg.register_scalar(
                "adwithin",
                vec![a_ty.clone(), b_ty.clone(), LogicalType::Float],
                LogicalType::Bool,
                |args| {
                    let a = value_to_tgeom(&args[0])?;
                    let b = value_to_tgeom(&args[1])?;
                    Ok(Value::Bool(a.adwithin(&b, args[2].as_float()?)))
                },
            );
            // tdistance.
            reg.register_scalar(
                "tdistance",
                vec![a_ty.clone(), b_ty.clone()],
                lt("tfloat"),
                |args| {
                    let a = value_to_tgeom(&args[0])?;
                    let b = value_to_tgeom(&args[1])?;
                    match a.tdistance(&b) {
                        Some(t) => Ok(MdTFloat(t).into_value()),
                        None => Ok(Value::Null),
                    }
                },
            );
        }
        // eIntersects / aIntersects / eDwithin against static geometries.
        for geom_ty in [lt("geometry"), LogicalType::Blob] {
            reg.register_scalar(
                "eintersects",
                vec![a_ty.clone(), geom_ty.clone()],
                LogicalType::Bool,
                |args| {
                    let t = value_to_tgeom(&args[0])?;
                    let g = value_to_geometry(&args[1])?;
                    Ok(Value::Bool(t.eintersects(&g)))
                },
            );
            reg.register_scalar(
                "aintersects",
                vec![a_ty.clone(), geom_ty.clone()],
                LogicalType::Bool,
                |args| {
                    let t = value_to_tgeom(&args[0])?;
                    let g = value_to_geometry(&args[1])?;
                    Ok(Value::Bool(t.always_inside(&g)))
                },
            );
            reg.register_scalar(
                "edwithin",
                vec![a_ty.clone(), geom_ty.clone(), LogicalType::Float],
                LogicalType::Bool,
                |args| {
                    let t = value_to_tgeom(&args[0])?;
                    let g = value_to_geometry(&args[1])?;
                    Ok(Value::Bool(t.edwithin_geo(&g, args[2].as_float()?)))
                },
            );
        }
    }
}

// ------------------------------------------------------------ box functions

fn register_box_functions(reg: &mut Registry) {
    // stbox constructors: from geometry blob/ext, temporal, with timestamp.
    reg.register_scalar("stbox", vec![LogicalType::Text], lt("stbox"), |a| {
        let txt = a[0].as_text()?;
        // Accept either an stbox literal (the §4.4 STBOX('STBOX X(...)')
        // constructor) or WKT.
        if let Ok(b) = mduck_temporal::parse_stbox(txt) {
            return Ok(MdStbox(b).into_value());
        }
        let g = value_to_geometry(&a[0])?;
        Ok(MdStbox(STBox::from_geometry(&g).map_err(to_exec)?).into_value())
    });
    for geom_ty in [lt("geometry"), LogicalType::Blob] {
        reg.register_scalar("stbox", vec![geom_ty.clone()], lt("stbox"), |a| {
            let g = value_to_geometry(&a[0])?;
            Ok(MdStbox(STBox::from_geometry(&g).map_err(to_exec)?).into_value())
        });
        reg.register_scalar(
            "stbox",
            vec![geom_ty, LogicalType::Timestamp],
            lt("stbox"),
            |a| {
                let g = value_to_geometry(&a[0])?;
                Ok(MdStbox(
                    STBox::from_geometry_at(&g, value_to_ts(&a[1])?).map_err(to_exec)?,
                )
                .into_value())
            },
        );
    }
    reg.register_scalar(
        "stbox",
        vec![LogicalType::Text, LogicalType::Timestamp],
        lt("stbox"),
        |a| {
            let g = value_to_geometry(&a[0])?;
            Ok(MdStbox(STBox::from_geometry_at(&g, value_to_ts(&a[1])?).map_err(to_exec)?)
                .into_value())
        },
    );
    reg.register_scalar("stbox", vec![lt("stbox")], lt("stbox"), |a| Ok(a[0].clone()));
    for src in [lt("tgeompoint"), lt("tgeometry")] {
        reg.register_scalar("stbox", vec![src], lt("stbox"), |a| {
            Ok(MdStbox(value_to_stbox(&a[0])?).into_value())
        });
    }
    reg.register_scalar("stbox", vec![lt("tstzspan")], lt("stbox"), |a| {
        Ok(MdStbox(STBox::from_period(value_to_period(&a[0])?)).into_value())
    });
    // expandSpace / expandTime (§3.5, Query 10).
    reg.register_scalar("expandspace", vec![lt("stbox"), LogicalType::Float], lt("stbox"), |a| {
        let b = value_to_stbox(&a[0])?;
        Ok(MdStbox(b.expand_space(a[1].as_float()?).map_err(to_exec)?).into_value())
    });
    for src in [lt("tgeompoint"), lt("tgeometry")] {
        reg.register_scalar("expandspace", vec![src, LogicalType::Float], lt("stbox"), |a| {
            let b = value_to_stbox(&a[0])?;
            Ok(MdStbox(b.expand_space(a[1].as_float()?).map_err(to_exec)?).into_value())
        });
    }
    reg.register_scalar(
        "expandtime",
        vec![lt("stbox"), LogicalType::Interval],
        lt("stbox"),
        |a| {
            let b = value_to_stbox(&a[0])?;
            Ok(MdStbox(b.expand_time(&value_to_interval(&a[1])?).map_err(to_exec)?).into_value())
        },
    );
    reg.register_scalar(
        "expandtime",
        vec![lt("tbox"), LogicalType::Interval],
        lt("tbox"),
        |a| {
            let b = a[0].ext_as::<MdTbox>()?.0;
            Ok(MdTbox(b.expand_time(&value_to_interval(&a[1])?).map_err(to_exec)?).into_value())
        },
    );
    reg.register_scalar("expandvalue", vec![lt("tbox"), LogicalType::Float], lt("tbox"), |a| {
        let b = a[0].ext_as::<MdTbox>()?.0;
        Ok(MdTbox(b.expand_value(a[1].as_float()?).map_err(to_exec)?).into_value())
    });
    // geometry(stbox) → WKB_BLOB footprint (§4.4's UPDATE).
    reg.register_scalar("geometry", vec![lt("stbox")], LogicalType::Blob, |a| {
        let b = value_to_stbox(&a[0])?;
        Ok(Value::blob(mduck_geo::wkb::to_wkb(&b.to_geometry().map_err(to_exec)?)))
    });
}

// ---------------------------------------------------------------- operators

/// Register an operator as a binary scalar function whose name is the
/// symbol (the paper's §3.4 "Operators").
fn register_operators(reg: &mut Registry) {
    // && over stbox/tgeompoint/tbox combinations.
    let overlap_impl = |a: &Value, b: &Value| -> SqlResult<Value> {
        let ba = value_to_stbox(a)?;
        let bb = value_to_stbox(b)?;
        Ok(Value::Bool(ba.overlaps(&bb).map_err(to_exec)?))
    };
    for a_ty in [lt("stbox"), lt("tgeompoint"), lt("tgeometry")] {
        for b_ty in [lt("stbox"), lt("tgeompoint"), lt("tgeometry")] {
            reg.register_scalar("&&", vec![a_ty.clone(), b_ty.clone()], LogicalType::Bool, move |a| {
                overlap_impl(&a[0], &a[1])
            });
        }
    }
    reg.register_scalar("&&", vec![lt("tbox"), lt("tbox")], LogicalType::Bool, |a| {
        let x = a[0].ext_as::<MdTbox>()?.0;
        let y = a[1].ext_as::<MdTbox>()?.0;
        Ok(Value::Bool(x.overlaps(&y).map_err(to_exec)?))
    });
    // Span overlap/containment operators.
    macro_rules! span_ops {
        ($wrap:ty, $name:literal) => {
            reg.register_scalar("&&", vec![lt($name), lt($name)], LogicalType::Bool, |a| {
                let x = &a[0].ext_as::<$wrap>()?.0;
                let y = &a[1].ext_as::<$wrap>()?.0;
                Ok(Value::Bool(x.overlaps(y)))
            });
            reg.register_scalar("@>", vec![lt($name), lt($name)], LogicalType::Bool, |a| {
                let x = &a[0].ext_as::<$wrap>()?.0;
                let y = &a[1].ext_as::<$wrap>()?.0;
                Ok(Value::Bool(x.contains_span(y)))
            });
            reg.register_scalar("<@", vec![lt($name), lt($name)], LogicalType::Bool, |a| {
                let x = &a[0].ext_as::<$wrap>()?.0;
                let y = &a[1].ext_as::<$wrap>()?.0;
                Ok(Value::Bool(y.contains_span(x)))
            });
            reg.register_scalar("<<", vec![lt($name), lt($name)], LogicalType::Bool, |a| {
                let x = &a[0].ext_as::<$wrap>()?.0;
                let y = &a[1].ext_as::<$wrap>()?.0;
                Ok(Value::Bool(x.left_of(y)))
            });
            reg.register_scalar("-|-", vec![lt($name), lt($name)], LogicalType::Bool, |a| {
                let x = &a[0].ext_as::<$wrap>()?.0;
                let y = &a[1].ext_as::<$wrap>()?.0;
                Ok(Value::Bool(x.adjacent(y)))
            });
            reg.register_scalar("<->", vec![lt($name), lt($name)], LogicalType::Float, |a| {
                let x = &a[0].ext_as::<$wrap>()?.0;
                let y = &a[1].ext_as::<$wrap>()?.0;
                Ok(Value::Float(x.distance(y)))
            });
        };
    }
    span_ops!(MdIntSpan, "intspan");
    span_ops!(MdFloatSpan, "floatspan");
    span_ops!(MdTstzSpan, "tstzspan");
    span_ops!(MdDateSpan, "datespan");

    // tstzspan @> timestamptz (Query 3).
    reg.register_scalar(
        "@>",
        vec![lt("tstzspan"), LogicalType::Timestamp],
        LogicalType::Bool,
        |a| {
            let p = value_to_period(&a[0])?;
            Ok(Value::Bool(p.contains_value(value_to_ts(&a[1])?)))
        },
    );
    reg.register_scalar(
        "@>",
        vec![lt("tstzspanset"), LogicalType::Timestamp],
        LogicalType::Bool,
        |a| {
            let ps = &a[0].ext_as::<MdTstzSpanSet>()?.0;
            Ok(Value::Bool(ps.contains_value(value_to_ts(&a[1])?)))
        },
    );
    reg.register_scalar("&&", vec![lt("tstzspanset"), lt("tstzspan")], LogicalType::Bool, |a| {
        let ps = &a[0].ext_as::<MdTstzSpanSet>()?.0;
        Ok(Value::Bool(ps.overlaps_span(&value_to_period(&a[1])?)))
    });
    reg.register_scalar("&&", vec![lt("tstzspanset"), lt("tstzspanset")], LogicalType::Bool, |a| {
        let x = &a[0].ext_as::<MdTstzSpanSet>()?.0;
        let y = &a[1].ext_as::<MdTstzSpanSet>()?.0;
        Ok(Value::Bool(x.overlaps(y)))
    });
    // stbox @> stbox.
    reg.register_scalar("@>", vec![lt("stbox"), lt("stbox")], LogicalType::Bool, |a| {
        let x = value_to_stbox(&a[0])?;
        let y = value_to_stbox(&a[1])?;
        Ok(Value::Bool(x.contains(&y).map_err(to_exec)?))
    });
    reg.register_scalar("<@", vec![lt("stbox"), lt("stbox")], LogicalType::Bool, |a| {
        let x = value_to_stbox(&a[0])?;
        let y = value_to_stbox(&a[1])?;
        Ok(Value::Bool(y.contains(&x).map_err(to_exec)?))
    });
    // Geometry operators: <-> (distance) and && (bounding-box overlap,
    // PostGIS-style — the pattern the Figure 2 geometry-RTREE index scan
    // matches on).
    for a_ty in [lt("geometry"), LogicalType::Blob] {
        for b_ty in [lt("geometry"), LogicalType::Blob] {
            reg.register_scalar("<->", vec![a_ty.clone(), b_ty.clone()], LogicalType::Float, |a| {
                let x = value_to_geometry(&a[0])?;
                let y = value_to_geometry(&a[1])?;
                Ok(Value::Float(algorithms::distance(&x, &y)))
            });
            reg.register_scalar("&&", vec![a_ty.clone(), b_ty.clone()], LogicalType::Bool, |a| {
                let x = value_to_geometry(&a[0])?;
                let y = value_to_geometry(&a[1])?;
                Ok(Value::Bool(match (x.bounding_rect(), y.bounding_rect()) {
                    (Some(rx), Some(ry)) => rx.intersects(&ry),
                    _ => false,
                }))
            });
        }
    }
}

// ------------------------------------------------------- span/set functions

fn register_span_set_functions(reg: &mut Registry) {
    // span(lo, hi) constructors.
    reg.register_scalar(
        "span",
        vec![LogicalType::Timestamp, LogicalType::Timestamp],
        lt("tstzspan"),
        |a| {
            Ok(MdTstzSpan(
                Span::new(value_to_ts(&a[0])?, value_to_ts(&a[1])?, true, true)
                    .map_err(to_exec)?,
            )
            .into_value())
        },
    );
    reg.register_scalar(
        "tstzspan",
        vec![LogicalType::Timestamp, LogicalType::Timestamp],
        lt("tstzspan"),
        |a| {
            Ok(MdTstzSpan(
                Span::new(value_to_ts(&a[0])?, value_to_ts(&a[1])?, true, true)
                    .map_err(to_exec)?,
            )
            .into_value())
        },
    );
    reg.register_scalar(
        "span",
        vec![LogicalType::Float, LogicalType::Float],
        lt("floatspan"),
        |a| {
            Ok(MdFloatSpan(
                Span::new(a[0].as_float()?, a[1].as_float()?, true, true).map_err(to_exec)?,
            )
            .into_value())
        },
    );
    // set union/intersection/minus for tstzset.
    reg.register_scalar("set_union", vec![lt("tstzset"), lt("tstzset")], lt("tstzset"), |a| {
        let x = &a[0].ext_as::<MdTstzSet>()?.0;
        let y = &a[1].ext_as::<MdTstzSet>()?.0;
        Ok(MdTstzSet(x.union(y)).into_value())
    });
    reg.register_scalar(
        "set_intersection",
        vec![lt("tstzset"), lt("tstzset")],
        lt("tstzset"),
        |a| {
            let x = &a[0].ext_as::<MdTstzSet>()?.0;
            let y = &a[1].ext_as::<MdTstzSet>()?.0;
            match x.intersection(y) {
                Some(s) => Ok(MdTstzSet(s).into_value()),
                None => Ok(Value::Null),
            }
        },
    );
    // spanset union/intersection for periods.
    reg.register_scalar(
        "union",
        vec![lt("tstzspanset"), lt("tstzspanset")],
        lt("tstzspanset"),
        |a| {
            let x = &a[0].ext_as::<MdTstzSpanSet>()?.0;
            let y = &a[1].ext_as::<MdTstzSpanSet>()?.0;
            Ok(MdTstzSpanSet(x.union(y)).into_value())
        },
    );
    reg.register_scalar(
        "intersection",
        vec![lt("tstzspanset"), lt("tstzspanset")],
        lt("tstzspanset"),
        |a| {
            let x = &a[0].ext_as::<MdTstzSpanSet>()?.0;
            let y = &a[1].ext_as::<MdTstzSpanSet>()?.0;
            match x.intersection(y) {
                Some(s) => Ok(MdTstzSpanSet(s).into_value()),
                None => Ok(Value::Null),
            }
        },
    );
    reg.register_scalar(
        "intersection",
        vec![lt("tstzspan"), lt("tstzspan")],
        lt("tstzspan"),
        |a| {
            let x = value_to_period(&a[0])?;
            let y = value_to_period(&a[1])?;
            match x.intersection(&y) {
                Some(s) => Ok(MdTstzSpan(s).into_value()),
                None => Ok(Value::Null),
            }
        },
    );
}

// ------------------------------------------------------------- constructors

fn register_constructors(reg: &mut Registry) {
    // tgeometry(point-text, tstzspan, interp) — the §3.5 sample.
    for name in ["tgeometry", "tgeompoint"] {
        reg.register_scalar(
            name,
            vec![LogicalType::Text, lt("tstzspan"), LogicalType::Text],
            lt(name),
            move |a| {
                let g = mduck_geo::wkt::parse_wkt(a[0].as_text()?).map_err(to_exec)?;
                let p = g.as_point().ok_or_else(|| {
                    SqlError::execution("temporal geometry constructor expects a point")
                })?;
                let span = value_to_period(&a[1])?;
                let interp = match a[2].as_text()?.to_ascii_lowercase().as_str() {
                    "step" => Interp::Step,
                    "linear" => Interp::Linear,
                    "discrete" => Interp::Discrete,
                    other => {
                        return Err(SqlError::execution(format!(
                            "unknown interpolation {other:?}"
                        )))
                    }
                };
                let instants = if span.lower == span.upper {
                    vec![TInstant::new(p, span.lower)]
                } else {
                    vec![TInstant::new(p, span.lower), TInstant::new(p, span.upper)]
                };
                let seq = TSequence::new(instants, span.lower_inc, span.upper_inc, interp)
                    .map_err(to_exec)?;
                let t = TGeomPoint::new(Temporal::Sequence(seq), g.srid);
                Ok(MdTGeometry(t).into_value())
            },
        );
    }
    // tgeompoint(wkb/geom, timestamptz) — instant constructor used by data
    // loading.
    for geom_ty in [lt("geometry"), LogicalType::Blob, LogicalType::Text] {
        reg.register_scalar(
            "tgeompoint",
            vec![geom_ty, LogicalType::Timestamp],
            lt("tgeompoint"),
            |a| {
                let g = value_to_geometry(&a[0])?;
                let p = g
                    .as_point()
                    .ok_or_else(|| SqlError::execution("tgeompoint expects a point"))?;
                Ok(MdTGeomPoint(TGeomPoint::instant(p, value_to_ts(&a[1])?, g.srid))
                    .into_value())
            },
        );
    }
    // tgeompointseq(x, y, t) aggregation support arrives via the
    // `tgeompointseq` aggregate in aggregates.rs; here we add the pairwise
    // merge used by tests.
    reg.register_scalar(
        "appendinstant",
        vec![lt("tgeompoint"), lt("tgeompoint")],
        lt("tgeompoint"),
        |a| {
            let x = value_to_tgeom(&a[0])?;
            let y = value_to_tgeom(&a[1])?;
            let mut instants: Vec<TInstant<mduck_geo::Point>> =
                x.temp.instants().into_iter().cloned().collect();
            instants.extend(y.temp.instants().into_iter().cloned());
            instants.sort_by_key(|i| i.t);
            instants.dedup_by(|a, b| a.t == b.t);
            let seq = TSequence::new(instants, true, true, Interp::Linear).map_err(to_exec)?;
            Ok(MdTGeomPoint(TGeomPoint::new(Temporal::Sequence(seq), x.srid)).into_value())
        },
    );
    // tbool/tint/tfloat instant constructors.
    reg.register_scalar(
        "tint",
        vec![LogicalType::Int, LogicalType::Timestamp],
        lt("tint"),
        |a| {
            Ok(MdTInt(Temporal::Instant(TInstant::new(a[0].as_int()?, value_to_ts(&a[1])?)))
                .into_value())
        },
    );
    reg.register_scalar(
        "tfloat",
        vec![LogicalType::Float, LogicalType::Timestamp],
        lt("tfloat"),
        |a| {
            Ok(MdTFloat(Temporal::Instant(TInstant::new(
                a[0].as_float()?,
                value_to_ts(&a[1])?,
            )))
            .into_value())
        },
    );
    let _ = Arc::new(()); // keep Arc in scope for future constructors
    let _: Option<TstzSpanSet> = None;
}
