//! Extended MEOS surface: temporal arithmetic, temporal comparisons,
//! ever/always predicates, tbool logic, and additional accessors — the
//! functions beyond the benchmark's needs that move the implementation
//! toward full Table-1 parity (the paper's stated future work).

use mduck_sql::{LogicalType, Registry, SqlError, Value};
use mduck_temporal::set::Set;
use mduck_temporal::temporal::{tfloat_cmp_const, Temporal};

use crate::types::*;

/// Register the extended surface.
pub fn register_extended(reg: &mut Registry) {
    register_temporal_math(reg);
    register_temporal_comparisons(reg);
    register_ever_always(reg);
    register_tbool_logic(reg);
    register_more_accessors(reg);
}

// -------------------------------------------------------- temporal math

fn register_temporal_math(reg: &mut Registry) {
    // tfloat ⊕ float (and the commuted forms), computed instant-wise — the
    // value-level lifting MEOS provides for temporal arithmetic.
    macro_rules! tfloat_const_op {
        ($sym:literal, $f:expr) => {
            reg.register_scalar(
                $sym,
                vec![lt("tfloat"), LogicalType::Float],
                lt("tfloat"),
                |a| {
                    let t = &a[0].ext_as::<MdTFloat>()?.0;
                    let k = a[1].as_float()?;
                    let f = $f;
                    Ok(MdTFloat(t.map_values(|v| f(*v, k))).into_value())
                },
            );
            reg.register_scalar(
                $sym,
                vec![LogicalType::Float, lt("tfloat")],
                lt("tfloat"),
                |a| {
                    let k = a[0].as_float()?;
                    let t = &a[1].ext_as::<MdTFloat>()?.0;
                    let f = $f;
                    Ok(MdTFloat(t.map_values(|v| f(k, *v))).into_value())
                },
            );
        };
    }
    tfloat_const_op!("+", |a: f64, b: f64| a + b);
    tfloat_const_op!("-", |a: f64, b: f64| a - b);
    tfloat_const_op!("*", |a: f64, b: f64| a * b);
    reg.register_scalar("/", vec![lt("tfloat"), LogicalType::Float], lt("tfloat"), |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        let k = a[1].as_float()?;
        if k == 0.0 {
            return Err(SqlError::execution("division by zero"));
        }
        Ok(MdTFloat(t.map_values(|v| v / k)).into_value())
    });
    // tint ⊕ int.
    reg.register_scalar("+", vec![lt("tint"), LogicalType::Int], lt("tint"), |a| {
        let t = &a[0].ext_as::<MdTInt>()?.0;
        let k = a[1].as_int()?;
        Ok(MdTInt(t.map_values(|v| v + k)).into_value())
    });
    reg.register_scalar("*", vec![lt("tint"), LogicalType::Int], lt("tint"), |a| {
        let t = &a[0].ext_as::<MdTInt>()?.0;
        let k = a[1].as_int()?;
        Ok(MdTInt(t.map_values(|v| v * k)).into_value())
    });
    // round(tfloat, digits), abs(tfloat).
    reg.register_scalar("round", vec![lt("tfloat"), LogicalType::Int], lt("tfloat"), |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        let scale = 10f64.powi(a[1].as_int()? as i32);
        Ok(MdTFloat(t.map_values(|v| (v * scale).round() / scale)).into_value())
    });
    reg.register_scalar("abs", vec![lt("tfloat")], lt("tfloat"), |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        Ok(MdTFloat(t.map_values(|v| v.abs())).into_value())
    });
    // twAvg: time-weighted average of a tfloat.
    reg.register_scalar("twavg", vec![lt("tfloat")], LogicalType::Float, |a| {
        let t = &a[0].ext_as::<MdTFloat>()?.0;
        let mut weighted = 0.0f64;
        let mut total = 0.0f64;
        for s in t.as_sequences() {
            let inst = s.instants();
            if inst.len() == 1 {
                continue;
            }
            for w in inst.windows(2) {
                let dt = (w[1].t.0 - w[0].t.0) as f64;
                let mean = match s.interp {
                    mduck_temporal::temporal::Interp::Linear => (w[0].value + w[1].value) / 2.0,
                    _ => w[0].value,
                };
                weighted += mean * dt;
                total += dt;
            }
        }
        if total == 0.0 {
            // Discrete/instant: plain average.
            let vals = t.values();
            Ok(Value::Float(vals.iter().sum::<f64>() / vals.len() as f64))
        } else {
            Ok(Value::Float(weighted / total))
        }
    });
}

// -------------------------------------------------- temporal comparisons

fn register_temporal_comparisons(reg: &mut Registry) {
    // tfloat <op> float → tbool with exact crossings ("#<" family in
    // MobilityDB; exposed here as functions).
    macro_rules! tcmp {
        ($name:literal, $cmp:expr) => {
            reg.register_scalar(
                $name,
                vec![lt("tfloat"), LogicalType::Float],
                lt("tbool"),
                |a| {
                    let t = &a[0].ext_as::<MdTFloat>()?.0;
                    let k = a[1].as_float()?;
                    let c = $cmp;
                    Ok(MdTBool(tfloat_cmp_const(t, k, |v| c(v, k))).into_value())
                },
            );
        };
    }
    tcmp!("tlt", |v: f64, k: f64| v < k);
    tcmp!("tle", |v: f64, k: f64| v <= k);
    tcmp!("tgt", |v: f64, k: f64| v > k);
    tcmp!("tge", |v: f64, k: f64| v >= k);
    tcmp!("teq", |v: f64, k: f64| v == k);
    tcmp!("tne", |v: f64, k: f64| v != k);
}

// ------------------------------------------------------------ ever/always

fn register_ever_always(reg: &mut Registry) {
    reg.register_scalar("ever_eq", vec![lt("tint"), LogicalType::Int], LogicalType::Bool, |a| {
        let t = &a[0].ext_as::<MdTInt>()?.0;
        Ok(Value::Bool(t.ever_eq_at_instants(&a[1].as_int()?)))
    });
    reg.register_scalar(
        "always_eq",
        vec![lt("tint"), LogicalType::Int],
        LogicalType::Bool,
        |a| {
            let t = &a[0].ext_as::<MdTInt>()?.0;
            Ok(Value::Bool(t.always_eq_at_instants(&a[1].as_int()?)))
        },
    );
    reg.register_scalar(
        "ever_eq",
        vec![lt("tfloat"), LogicalType::Float],
        LogicalType::Bool,
        |a| {
            let t = &a[0].ext_as::<MdTFloat>()?.0;
            // Linear interpolation: crossing counts as ever-equal.
            Ok(Value::Bool(t.at_value(&a[1].as_float()?).is_some()))
        },
    );
    reg.register_scalar(
        "ever_eq",
        vec![lt("ttext"), LogicalType::Text],
        LogicalType::Bool,
        |a| {
            let t = &a[0].ext_as::<MdTText>()?.0;
            Ok(Value::Bool(t.ever_eq_at_instants(&a[1].as_text()?.to_string())))
        },
    );
    reg.register_scalar("ever_true", vec![lt("tbool")], LogicalType::Bool, |a| {
        Ok(Value::Bool(a[0].ext_as::<MdTBool>()?.0.ever_true()))
    });
    reg.register_scalar("always_true", vec![lt("tbool")], LogicalType::Bool, |a| {
        Ok(Value::Bool(a[0].ext_as::<MdTBool>()?.0.always_true()))
    });
}

// ------------------------------------------------------------ tbool logic

fn register_tbool_logic(reg: &mut Registry) {
    reg.register_scalar("tnot", vec![lt("tbool")], lt("tbool"), |a| {
        Ok(MdTBool(a[0].ext_as::<MdTBool>()?.0.tnot()).into_value())
    });
    reg.register_scalar("tand", vec![lt("tbool"), lt("tbool")], lt("tbool"), |a| {
        let x = &a[0].ext_as::<MdTBool>()?.0;
        let y = &a[1].ext_as::<MdTBool>()?.0;
        match x.tand(y) {
            Some(t) => Ok(MdTBool(t).into_value()),
            None => Ok(Value::Null),
        }
    });
    reg.register_scalar("tor", vec![lt("tbool"), lt("tbool")], lt("tbool"), |a| {
        let x = &a[0].ext_as::<MdTBool>()?.0;
        let y = &a[1].ext_as::<MdTBool>()?.0;
        match x.tor(y) {
            Some(t) => Ok(MdTBool(t).into_value()),
            None => Ok(Value::Null),
        }
    });
}

// --------------------------------------------------------- more accessors

fn register_more_accessors(reg: &mut Registry) {
    // timestamps(temp) → tstzset.
    for tty in [lt("tbool"), lt("tint"), lt("tfloat"), lt("ttext"), lt("tgeompoint"), lt("tgeometry")]
    {
        reg.register_scalar("timestamps", vec![tty.clone()], lt("tstzset"), |a| {
            let e = a[0].as_ext()?;
            let ts: Vec<mduck_temporal::TimestampTz> = if let Some(t) = e.downcast::<MdTBool>() {
                t.0.timestamps()
            } else if let Some(t) = e.downcast::<MdTInt>() {
                t.0.timestamps()
            } else if let Some(t) = e.downcast::<MdTFloat>() {
                t.0.timestamps()
            } else if let Some(t) = e.downcast::<MdTText>() {
                t.0.timestamps()
            } else {
                value_to_tgeom(&a[0])?.temp.timestamps()
            };
            Ok(MdTstzSet(Set::new(ts).map_err(to_exec)?).into_value())
        });
        reg.register_scalar("numsequences", vec![tty.clone()], LogicalType::Int, |a| {
            let e = a[0].as_ext()?;
            let n = if let Some(t) = e.downcast::<MdTBool>() {
                count_seqs(&t.0)
            } else if let Some(t) = e.downcast::<MdTInt>() {
                count_seqs(&t.0)
            } else if let Some(t) = e.downcast::<MdTFloat>() {
                count_seqs(&t.0)
            } else if let Some(t) = e.downcast::<MdTText>() {
                count_seqs(&t.0)
            } else {
                count_seqs(&value_to_tgeom(&a[0])?.temp)
            };
            Ok(Value::Int(n as i64))
        });
        reg.register_scalar("interp", vec![tty], LogicalType::Text, |a| {
            let e = a[0].as_ext()?;
            let interp = if let Some(t) = e.downcast::<MdTBool>() {
                t.0.interp()
            } else if let Some(t) = e.downcast::<MdTInt>() {
                t.0.interp()
            } else if let Some(t) = e.downcast::<MdTFloat>() {
                t.0.interp()
            } else if let Some(t) = e.downcast::<MdTText>() {
                t.0.interp()
            } else {
                value_to_tgeom(&a[0])?.temp.interp()
            };
            Ok(Value::text(match interp {
                mduck_temporal::temporal::Interp::Discrete => "Discrete",
                mduck_temporal::temporal::Interp::Step => "Step",
                mduck_temporal::temporal::Interp::Linear => "Linear",
            }))
        });
    }
    // valueSet(tint) → intset; startValue/endValue geometries.
    reg.register_scalar("getvalues", vec![lt("tint")], lt("intset"), |a| {
        let t = &a[0].ext_as::<MdTInt>()?.0;
        Ok(MdIntSet(Set::new(t.values()).map_err(to_exec)?).into_value())
    });
    for src in [lt("tgeompoint"), lt("tgeometry")] {
        reg.register_scalar("startvalue", vec![src.clone()], LogicalType::Blob, |a| {
            let t = value_to_tgeom(&a[0])?;
            let g = mduck_geo::Geometry::from_point(t.temp.start_value()).with_srid(t.srid);
            Ok(Value::blob(mduck_geo::wkb::to_wkb(&g)))
        });
        reg.register_scalar("endvalue", vec![src], LogicalType::Blob, |a| {
            let t = value_to_tgeom(&a[0])?;
            let g = mduck_geo::Geometry::from_point(t.temp.end_value()).with_srid(t.srid);
            Ok(Value::blob(mduck_geo::wkb::to_wkb(&g)))
        });
    }
    // Span width / set span.
    reg.register_scalar("width", vec![lt("floatspan")], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].ext_as::<MdFloatSpan>()?.0.width()))
    });
    reg.register_scalar("width", vec![lt("intspan")], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].ext_as::<MdIntSpan>()?.0.width()))
    });
    reg.register_scalar("span", vec![lt("tstzset")], lt("tstzspan"), |a| {
        Ok(MdTstzSpan(a[0].ext_as::<MdTstzSet>()?.0.to_span()).into_value())
    });
    reg.register_scalar("span", vec![lt("tstzspanset")], lt("tstzspan"), |a| {
        Ok(MdTstzSpan(a[0].ext_as::<MdTstzSpanSet>()?.0.to_span()).into_value())
    });
}

fn count_seqs<V: mduck_temporal::temporal::TValue>(t: &Temporal<V>) -> usize {
    match t {
        Temporal::Instant(_) => 1,
        Temporal::Sequence(_) => 1,
        Temporal::SequenceSet(ss) => ss.sequences().len(),
    }
}
