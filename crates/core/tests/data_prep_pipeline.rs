//! The §6.2 data-preparation pipeline: raw per-observation rows
//! (vehicle, trip, lon, lat, timestamp) are folded into `tgeompoint`
//! sequences with an aggregate, then into trajectories — exactly the flow
//! the paper demonstrates through the Python API.

use quackdb::Database;

fn db() -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    db
}

#[test]
fn observations_fold_into_trips_and_trajectories() {
    let db = db();
    db.execute(
        "CREATE TABLE observations(vehicleid INTEGER, tripid INTEGER, \
         x DOUBLE, y DOUBLE, at TIMESTAMPTZ)",
    )
    .unwrap();
    // Two vehicles, two trips each, out-of-order inserts (the aggregate
    // must sort by time).
    db.execute(
        "INSERT INTO observations VALUES \
         (1, 1, 10, 0, '2025-01-01 08:10:00'), \
         (1, 1, 0, 0, '2025-01-01 08:00:00'), \
         (1, 1, 20, 0, '2025-01-01 08:20:00'), \
         (1, 2, 20, 0, '2025-01-01 17:00:00'), \
         (1, 2, 0, 0, '2025-01-01 17:30:00'), \
         (2, 3, 0, 5, '2025-01-01 08:00:00'), \
         (2, 3, 20, 5, '2025-01-01 08:30:00')",
    )
    .unwrap();

    // Fold into sequences (the tgeompointSeq step of §6.2).
    db.execute("CREATE TABLE trips(vehicleid INTEGER, tripid INTEGER, trip TGEOMPOINT)")
        .unwrap();
    db.execute(
        "INSERT INTO trips \
         SELECT vehicleid, tripid, tgeompointseq_xy(x, y, at) \
         FROM observations GROUP BY vehicleid, tripid",
    )
    .unwrap();
    let r = db.execute("SELECT count(*) FROM trips").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "3");

    // Sequences are time-ordered regardless of insert order.
    let r = db
        .execute("SELECT numInstants(trip), length(trip) FROM trips WHERE tripid = 1")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "3");
    assert_eq!(r.rows[0][1].to_string(), "20.0");

    // The trajectory() step.
    let r = db
        .execute(
            "SELECT tripid, ST_AsText(trajectory(trip)) AS traj FROM trips ORDER BY tripid",
        )
        .unwrap();
    assert_eq!(r.rows[0][1].to_string(), "LINESTRING(0 0,10 0,20 0)");
    assert_eq!(r.rows[1][1].to_string(), "LINESTRING(20 0,0 0)");

    // Close-pair analysis over the folded trips (operation 6): vehicles 1
    // and 2 run parallel 5 apart during trip 1/3.
    let r = db
        .execute(
            "SELECT t1.vehicleid, t2.vehicleid FROM trips t1, trips t2 \
             WHERE t1.vehicleid < t2.vehicleid AND eDwithin(t1.trip, t2.trip, 5.0) \
             ORDER BY 1, 2",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    // ... but not within 4.
    let r = db
        .execute(
            "SELECT count(*) FROM trips t1, trips t2 \
             WHERE t1.vehicleid < t2.vehicleid AND eDwithin(t1.trip, t2.trip, 4.0)",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "0");
}

#[test]
fn distance_per_district_query_shape() {
    // Operation 4's SQL shape: atGeometry + length + GROUP BY, with the
    // WKB cast of the paper's listing.
    let db = db();
    db.execute("CREATE TABLE trips(tripid INTEGER, trip TGEOMPOINT, traj WKB_BLOB)").unwrap();
    db.execute("CREATE TABLE hanoi(municipalityname VARCHAR, geom WKB_BLOB)").unwrap();
    db.execute(
        "INSERT INTO trips SELECT 1, \
         '[Point(-5 5)@2025-01-01 08:00:00, Point(15 5)@2025-01-01 08:20:00]'::tgeompoint, \
         trajectory('[Point(-5 5)@2025-01-01 08:00:00, Point(15 5)@2025-01-01 08:20:00]'::tgeompoint)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO hanoi VALUES \
         ('West', geometry 'POLYGON((-10 0,0 0,0 10,-10 10,-10 0))'::WKB_BLOB), \
         ('Center', geometry 'POLYGON((0 0,10 0,10 10,0 10,0 0))'::WKB_BLOB), \
         ('FarAway', geometry 'POLYGON((100 100,110 100,110 110,100 110,100 100))'::WKB_BLOB)",
    )
    .unwrap();
    let r = db
        .execute(
            "SELECT h.municipalityname, \
                    round((sum(length(atGeometry(t.trip, h.geom))) / 1000), 3) AS total_km \
             FROM trips t, hanoi h \
             WHERE ST_Intersects(t.traj, h.geom) \
             GROUP BY h.municipalityname ORDER BY h.municipalityname",
        )
        .unwrap();
    // The trip spends 5 units in West ([-5,0]) and 10 in Center ([0,10]).
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0].to_string(), "Center");
    assert_eq!(r.rows[0][1].to_string(), "0.01"); // 10 m → 0.010 km
    assert_eq!(r.rows[1][0].to_string(), "West");
    assert_eq!(r.rows[1][1].to_string(), "0.005");
}
