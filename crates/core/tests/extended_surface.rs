//! Tests for the extended MEOS surface (temporal arithmetic, temporal
//! comparisons, ever/always, tbool logic, extra accessors).

use quackdb::Database;

fn db() -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    db
}

fn scalar(db: &Database, sql: &str) -> String {
    db.execute(sql)
        .unwrap_or_else(|e| panic!("{sql} failed: {e}"))
        .rows[0][0]
        .to_string()
}

#[test]
fn temporal_arithmetic() {
    let d = db();
    assert_eq!(
        scalar(&d, "SELECT tfloat '[1@2025-01-01, 3@2025-01-03]' + 10.0"),
        "[11@2025-01-01 00:00:00+00, 13@2025-01-03 00:00:00+00]"
    );
    assert_eq!(
        scalar(&d, "SELECT 2.0 * tfloat '[1@2025-01-01, 3@2025-01-03]'"),
        "[2@2025-01-01 00:00:00+00, 6@2025-01-03 00:00:00+00]"
    );
    assert_eq!(
        scalar(&d, "SELECT tint '{5@2025-01-01, 7@2025-01-02}' + 1"),
        "{6@2025-01-01 00:00:00+00, 8@2025-01-02 00:00:00+00}"
    );
    assert!(d
        .execute("SELECT tfloat '[1@2025-01-01, 3@2025-01-03]' / 0.0")
        .is_err());
    assert_eq!(
        scalar(&d, "SELECT abs(tfloat '[-4@2025-01-01, 2@2025-01-03]' )"),
        "[4@2025-01-01 00:00:00+00, 2@2025-01-03 00:00:00+00]"
    );
}

#[test]
fn time_weighted_average() {
    let d = db();
    // Linear ramp 0→10 over 2 days: twAvg = 5.
    assert_eq!(scalar(&d, "SELECT twAvg(tfloat '[0@2025-01-01, 10@2025-01-03]')"), "5.0");
    // Step: value 2 for 1 day, then 8 for 3 days → (2 + 8*3)/4 = 6.5.
    assert_eq!(
        scalar(
            &d,
            "SELECT twAvg(tfloat 'Interp=Step;[2@2025-01-01, 8@2025-01-02, 8@2025-01-05]')"
        ),
        "6.5"
    );
}

#[test]
fn temporal_comparisons_to_tbool() {
    let d = db();
    // Ramp 0→10 crosses 5 midway.
    let out = scalar(
        &d,
        "SELECT whenTrue(tle(tfloat '[0@2025-01-01, 10@2025-01-03]', 5.0))",
    );
    assert_eq!(out, "{[2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00]}");
    let out = scalar(
        &d,
        "SELECT whenTrue(tgt(tfloat '[0@2025-01-01, 10@2025-01-03]', 5.0))",
    );
    assert_eq!(out, "{(2025-01-02 00:00:00+00, 2025-01-03 00:00:00+00]}");
}

#[test]
fn ever_always() {
    let d = db();
    assert_eq!(scalar(&d, "SELECT ever_eq(tint '{1@2025-01-01, 2@2025-01-02}', 2)"), "true");
    assert_eq!(scalar(&d, "SELECT ever_eq(tint '{1@2025-01-01, 2@2025-01-02}', 9)"), "false");
    assert_eq!(scalar(&d, "SELECT always_eq(tint '{2@2025-01-01, 2@2025-01-02}', 2)"), "true");
    // Linear tfloat passes through 5 even without an instant there.
    assert_eq!(
        scalar(&d, "SELECT ever_eq(tfloat '[0@2025-01-01, 10@2025-01-03]', 5.0)"),
        "true"
    );
    assert_eq!(
        scalar(&d, "SELECT ever_true(tbool '[f@2025-01-01, t@2025-01-02]')"),
        "true"
    );
    assert_eq!(
        scalar(&d, "SELECT always_true(tbool '[f@2025-01-01, t@2025-01-02]')"),
        "false"
    );
}

#[test]
fn tbool_logic() {
    let d = db();
    assert_eq!(
        scalar(
            &d,
            "SELECT whenTrue(tand(tbool '[t@2025-01-01, t@2025-01-03]', \
                                  tbool '[f@2025-01-01, t@2025-01-02, t@2025-01-03]'))"
        ),
        "{[2025-01-02 00:00:00+00, 2025-01-03 00:00:00+00]}"
    );
    assert_eq!(
        scalar(&d, "SELECT ever_true(tnot(tbool '[t@2025-01-01, t@2025-01-02]'))"),
        "false"
    );
}

#[test]
fn extra_accessors() {
    let d = db();
    assert_eq!(
        scalar(&d, "SELECT timestamps(tint '{1@2025-01-01, 2@2025-01-02}')"),
        "{2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00}"
    );
    assert_eq!(
        scalar(
            &d,
            "SELECT numsequences(tfloat '{[1@2025-01-01, 2@2025-01-02], [5@2025-01-04, 5@2025-01-05]}')"
        ),
        "2"
    );
    assert_eq!(
        scalar(&d, "SELECT interp(tgeompoint '[Point(0 0)@2025-01-01, Point(1 1)@2025-01-02]')"),
        "Linear"
    );
    assert_eq!(scalar(&d, "SELECT getvalues(tint '{3@2025-01-01, 1@2025-01-02, 3@2025-01-03}')"), "{1, 3}");
    assert_eq!(
        scalar(
            &d,
            "SELECT ST_AsText(startValue(tgeompoint '[Point(7 8)@2025-01-01, Point(1 1)@2025-01-02]'))"
        ),
        "POINT(7 8)"
    );
    assert_eq!(scalar(&d, "SELECT width(floatspan '[2, 9]')"), "7.0");
    assert_eq!(
        scalar(&d, "SELECT span(tstzset '{2025-01-01, 2025-01-05}')"),
        "[2025-01-01 00:00:00+00, 2025-01-05 00:00:00+00]"
    );
}

#[test]
fn extended_surface_loads_in_row_engine_too() {
    let d = mduck_rowdb::RowDatabase::new();
    mobilityduck::load_row(&d);
    let r = d
        .execute("SELECT twAvg(tfloat '[0@2025-01-01, 10@2025-01-03]')")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "5.0");
}
