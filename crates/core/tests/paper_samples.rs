//! The paper's §3.5 sample queries and §4.4 indexing example, executed
//! through SQL on the vectorized engine, with outputs pinned to what the
//! paper prints.

use quackdb::Database;

fn db() -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    db
}

fn scalar(db: &Database, sql: &str) -> String {
    db.execute(sql)
        .unwrap_or_else(|e| panic!("{sql} failed: {e}"))
        .rows[0][0]
        .to_string()
}

#[test]
fn sample_duration() {
    // -- 2 days
    let db = db();
    assert_eq!(
        scalar(
            &db,
            "SELECT duration('{1@2025-01-01, 2@2025-01-02, 1@2025-01-03}'::TINT, true)"
        ),
        "2 days"
    );
}

#[test]
fn sample_shift_scale() {
    let db = db();
    let out = scalar(
        &db,
        "SELECT shiftScale(tstzset '{2025-01-01, 2025-01-02, 2025-01-03}', \
         interval '1 day', interval '1 hour')",
    );
    assert_eq!(
        out,
        "{2025-01-02 00:00:00+00, 2025-01-02 00:30:00+00, 2025-01-02 01:00:00+00}"
    );
}

#[test]
fn sample_transform_geomset() {
    // -- SRID=3812;{"POINT(502773.429981 511805.120402)", ...}
    let db = db();
    let out = scalar(
        &db,
        "SELECT asEWKT(transform(geomset 'SRID=4326;{Point(2.340088 49.400250), \
         Point(6.575317 51.553167)}', 3812), 6)",
    );
    assert!(out.starts_with("SRID=3812;{\"POINT("), "{out}");
    // Sub-metre agreement with the paper's printed coordinates.
    assert!(out.contains("502773.4"), "{out}");
    assert!(out.contains("511805.1"), "{out}");
    assert!(out.contains("803028.9"), "{out}");
    assert!(out.contains("751590.7"), "{out}");
}

#[test]
fn sample_expand_space() {
    // -- STBOX XT(((-1,0),(3,4)),[2025-01-01 ..., 2025-01-01 ...])
    let db = db();
    let out = scalar(
        &db,
        "SELECT expandSpace(stbox 'STBOX XT(((1.0,2.0),(1.0,2.0)),\
         [2025-01-01,2025-01-01])', 2.0)",
    );
    assert_eq!(
        out,
        "STBOX XT(((-1,0),(3,4)),[2025-01-01 00:00:00+00, 2025-01-01 00:00:00+00])"
    );
}

#[test]
fn sample_expand_time() {
    // -- TBOXFLOAT XT([1, 2],[2024-12-31 ..., 2025-01-03 ...])
    let db = db();
    let out = scalar(
        &db,
        "SELECT expandTime(tbox 'TBOXFLOAT XT([1.0,2.0],[2025-01-01,2025-01-02])', \
         interval '1 day')",
    );
    assert_eq!(
        out,
        "TBOXFLOAT XT([1, 2],[2024-12-31 00:00:00+00, 2025-01-03 00:00:00+00])"
    );
}

#[test]
fn sample_tgeometry_constructor() {
    // -- [POINT(1 1)@2025-01-01 00:00:00+00, POINT(1 1)@2025-01-02 00:00:00+00]
    let db = db();
    let out = scalar(
        &db,
        "SELECT asEWKT(tgeometry('Point(1 1)', tstzspan '[2025-01-01, 2025-01-02]', 'step'))",
    );
    assert_eq!(
        out,
        "[POINT(1 1)@2025-01-01 00:00:00+00, POINT(1 1)@2025-01-02 00:00:00+00]"
    );
}

#[test]
fn sample_overlap_is_false() {
    // -- false
    let db = db();
    let out = scalar(
        &db,
        "SELECT tgeompoint '{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, \
         Point(1 1)@2025-01-03], [Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}' \
         && stbox 'STBOX X((10.0,20.0),(10.0,20.0))'",
    );
    assert_eq!(out, "false");
}

#[test]
fn sample_at_time() {
    // -- {[POINT(1 1)@2025-01-01 ..., POINT(2 2)@2025-01-02 ...]}
    let db = db();
    let out = scalar(
        &db,
        "SELECT asText(atTime(tgeompoint '{[Point(1 1)@2025-01-01, \
         Point(2 2)@2025-01-02, Point(1 1)@2025-01-03],[Point(3 3)@2025-01-04, \
         Point(3 3)@2025-01-05]}', tstzspan '[2025-01-01,2025-01-02]'))",
    );
    assert_eq!(
        out,
        "[POINT(1 1)@2025-01-01 00:00:00+00, POINT(2 2)@2025-01-02 00:00:00+00]"
    );
}

// ------------------------------------------------------------- §4.4 example

#[test]
fn indexing_example_end_to_end() {
    let db = db();
    db.execute("CREATE TABLE test_geo(\"times\" timestamptz, \"box\" stbox)").unwrap();
    db.execute("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)").unwrap();
    // Insert synthetic data exactly as the paper's script does.
    db.execute(
        "INSERT INTO test_geo \
         SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')) AS times, \
         ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) || '),(' \
         || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) \
         || '))')::stbox AS stbox_data \
         FROM generate_series(1, 1000) AS t(i)",
    )
    .unwrap();
    let r = db.execute("SELECT count(*) FROM test_geo").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1000");

    // The paper's overlap query: boxes 1000..1100 don't exist → 0 rows...
    // wait, box i spans [i, i+0.5], so the query box (1000,1100) touches
    // box 1000 exactly at its corner — but i stops at 1000. Box 1000
    // spans (1000, 1000.5): it overlaps.
    let r = db
        .execute(
            "SELECT * FROM test_geo WHERE box && \
             STBOX('STBOX X((1000.0,1000.0),(1100.0,1100.0))')",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);

    // A mid-range query returns the right slice.
    let r = db
        .execute(
            "SELECT count(*) FROM test_geo WHERE box && \
             STBOX('STBOX X((100.0,100.0),(110.0,110.0))')",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "11");

    // The EXPLAIN plan shows the injected TRTREE index scan (Figure 1).
    let r = db
        .execute(
            "EXPLAIN SELECT * FROM test_geo WHERE box && \
             STBOX('STBOX X((100.0,100.0),(110.0,110.0))')",
        )
        .unwrap();
    let plan = r.rows[0][0].to_string();
    assert!(plan.contains("TRTREE_INDEX_SCAN"), "{plan}");
    assert!(!plan.contains("SEQ_SCAN"), "{plan}");
}

#[test]
fn index_first_vs_data_first_agree() {
    // Incremental (index-first) and bulk (data-first) construction answer
    // identically.
    let incremental = db();
    incremental
        .execute("CREATE TABLE g(b stbox)")
        .unwrap();
    incremental.execute("CREATE INDEX gi ON g USING TRTREE(b)").unwrap();
    incremental
        .execute(
            "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),(' || (i+2) || ',' \
             || (i+2) || '))')::stbox FROM generate_series(1, 500) AS t(i)",
        )
        .unwrap();

    let bulk = db();
    bulk.execute("CREATE TABLE g(b stbox)").unwrap();
    bulk.execute(
        "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),(' || (i+2) || ',' \
         || (i+2) || '))')::stbox FROM generate_series(1, 500) AS t(i)",
    )
    .unwrap();
    bulk.execute("CREATE INDEX gi ON g USING TRTREE(b)").unwrap();

    for probe in ["STBOX X((10,10),(20,20))", "STBOX X((499,499),(600,600))"] {
        let q = format!("SELECT count(*) FROM g WHERE b && stbox '{probe}'");
        let a = incremental.execute(&q).unwrap().rows[0][0].to_string();
        let b = bulk.execute(&q).unwrap().rows[0][0].to_string();
        assert_eq!(a, b, "probe {probe}");
        // Cross-check against a sequential scan on a third instance with
        // no index at all.
        let plain = db();
        plain.execute("CREATE TABLE g(b stbox)").unwrap();
        plain
            .execute(
                "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),(' || (i+2) || ',' \
                 || (i+2) || '))')::stbox FROM generate_series(1, 500) AS t(i)",
            )
            .unwrap();
        let c = plain.execute(&q).unwrap().rows[0][0].to_string();
        assert_eq!(a, c, "index vs seq scan for {probe}");
    }
}

#[test]
fn tdwithin_whentrue_pipeline() {
    // The Query-10 expression shape end to end.
    let db = db();
    let out = scalar(
        &db,
        "SELECT whenTrue(tDwithin(\
           tgeompoint '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]', \
           tgeompoint '[Point(10 0)@2025-01-01, Point(0 0)@2025-01-03]', 2.0))",
    );
    assert_eq!(
        out,
        "{[2025-01-01 19:12:00+00, 2025-01-02 04:48:00+00]}"
    );
    // eDwithin agrees.
    assert_eq!(
        scalar(
            &db,
            "SELECT eDwithin(\
               tgeompoint '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]', \
               tgeompoint '[Point(10 0)@2025-01-01, Point(0 0)@2025-01-03]', 2.0)"
        ),
        "true"
    );
}

#[test]
fn trajectory_gs_pipeline_matches_wkb_pipeline() {
    // Query 5's optimization: both formulations give the same distance.
    let db = db();
    db.execute("CREATE TABLE trips(id INTEGER, trip tgeompoint)").unwrap();
    db.execute(
        "INSERT INTO trips VALUES \
         (1, '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]'::tgeompoint), \
         (2, '[Point(0 5)@2025-01-01, Point(10 5)@2025-01-02]'::tgeompoint)",
    )
    .unwrap();
    let wkb = scalar(
        &db,
        "SELECT ST_Distance(a.t1, b.t2) FROM \
         (SELECT trajectory(trip)::GEOMETRY AS t1 FROM trips WHERE id = 1) a, \
         (SELECT trajectory(trip)::GEOMETRY AS t2 FROM trips WHERE id = 2) b",
    );
    let gs = scalar(
        &db,
        "SELECT distance_gs(a.t1, b.t2) FROM \
         (SELECT trajectory_gs(trip) AS t1 FROM trips WHERE id = 1) a, \
         (SELECT trajectory_gs(trip) AS t2 FROM trips WHERE id = 2) b",
    );
    assert_eq!(wkb, "5.0");
    assert_eq!(gs, "5.0");
    // And the collect variants.
    let wkb = scalar(
        &db,
        "SELECT ST_AsText(ST_Collect(list(trajectory(trip)::GEOMETRY))) FROM trips",
    );
    let gs = scalar(&db, "SELECT ST_AsText(collect_gs(list(trajectory_gs(trip)))) FROM trips");
    assert_eq!(wkb, gs);
    assert!(wkb.starts_with("MULTILINESTRING"), "{wkb}");
}

#[test]
fn value_at_timestamp_and_contains() {
    // Query 3's expression shape.
    let db = db();
    db.execute("CREATE TABLE trips(vid INTEGER, trip tgeompoint)").unwrap();
    db.execute(
        "INSERT INTO trips VALUES (1, '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]'::tgeompoint)",
    )
    .unwrap();
    let r = db
        .execute(
            "SELECT ST_AsText(valueAtTimestamp(trip, timestamptz '2025-01-02')::GEOMETRY) \
             FROM trips WHERE trip::tstzspan @> timestamptz '2025-01-02'",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].to_string(), "POINT(5 0)");
    // Instant outside the trip: filtered out by @>.
    let r = db
        .execute(
            "SELECT vid FROM trips WHERE trip::tstzspan @> timestamptz '2026-01-01'",
        )
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn row_engine_runs_the_same_surface() {
    // The baseline engine executes the same SQL (Figure 12's scenarios).
    let db = mduck_rowdb::RowDatabase::new();
    mobilityduck::load_row(&db);
    db.execute("CREATE TABLE trips(vid INTEGER, trip tgeompoint)").unwrap();
    db.execute(
        "INSERT INTO trips VALUES (1, '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]'::tgeompoint)",
    )
    .unwrap();
    // GiST index on the temporal column.
    db.execute("CREATE INDEX trips_gist ON trips USING GIST(trip)").unwrap();
    let r = db
        .execute("SELECT count(*) FROM trips WHERE trip && stbox 'STBOX X((4,-1),(6,1))'")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1");
    let r = db
        .execute("SELECT count(*) FROM trips WHERE trip && stbox 'STBOX X((40,-1),(60,1))'")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "0");
}
