//! Std-backed locks with a `parking_lot`-shaped API.
//!
//! Replaces the external `parking_lot` dependency so the workspace builds
//! fully offline. Unlike raw `std::sync` locks, `read()`/`write()`/`lock()`
//! here never return a `Result`: a poisoned lock is *recovered* instead of
//! propagated. That choice is deliberate and part of the engine's no-panic
//! contract — with the `catch_unwind` backstop in `quackdb::Database`, a
//! panicking query must not permanently wedge the registry locks of an
//! embedded database shared by other threads.

use std::sync::PoisonError;

/// A reader-writer lock that recovers from poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex that recovers from poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A lock-free work queue for morsel-driven parallelism: `n` units of
/// work (morsel indexes `0..n`), claimed one at a time by any number of
/// worker threads via an atomic cursor. Once a worker hits an error it
/// calls [`MorselQueue::stop`] so the rest of the fleet drains quickly
/// instead of finishing the whole input.
#[derive(Debug)]
pub struct MorselQueue {
    next: std::sync::atomic::AtomicUsize,
    stop: std::sync::atomic::AtomicBool,
    n: usize,
}

impl MorselQueue {
    pub fn new(n: usize) -> Self {
        MorselQueue {
            next: std::sync::atomic::AtomicUsize::new(0),
            stop: std::sync::atomic::AtomicBool::new(false),
            n,
        }
    }

    /// Claim the next unclaimed morsel index, or `None` when the queue is
    /// exhausted or stopped. Each index is handed out exactly once.
    pub fn claim(&self) -> Option<usize> {
        if self.stopped() {
            return None;
        }
        let i = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (i < self.n).then_some(i)
    }

    /// Ask all workers to stop claiming (used on first error / guard trip).
    pub fn stop(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn stopped(&self) -> bool {
        self.stop.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total number of morsels this queue was created with.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        // A std lock would now return Err(Poisoned); ours recovers.
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn morsel_queue_hands_out_each_index_once() {
        let q = MorselQueue::new(1000);
        let claimed = Mutex::new(vec![false; 1000]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(i) = q.claim() {
                        let mut c = claimed.lock();
                        assert!(!c[i], "morsel {i} claimed twice");
                        c[i] = true;
                    }
                });
            }
        });
        assert!(claimed.lock().iter().all(|b| *b), "some morsel never claimed");
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn morsel_queue_stop_drains() {
        let q = MorselQueue::new(10);
        assert_eq!(q.claim(), Some(0));
        q.stop();
        assert_eq!(q.claim(), None);
        assert!(q.stopped());
        assert_eq!(MorselQueue::new(0).claim(), None);
        assert!(MorselQueue::new(0).is_empty());
        assert_eq!(q.len(), 10);
    }
}
