//! The error type shared by the SQL frontend and both engines.

use std::fmt;

/// Errors raised while lexing, parsing, binding, or executing SQL.
#[derive(Debug, Clone)]
pub enum SqlError {
    /// Lexer-level problem (unterminated string, stray character).
    Lex(String),
    /// Grammar-level problem.
    Parse(String),
    /// Name resolution / type checking problem.
    Bind(String),
    /// Catalog problem (unknown table, duplicate index, ...).
    Catalog(String),
    /// Runtime evaluation problem.
    Execution(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Bind(m) => write!(f, "binder error: {m}"),
            SqlError::Catalog(m) => write!(f, "catalog error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias.
pub type SqlResult<T> = Result<T, SqlError>;

impl SqlError {
    pub fn execution(msg: impl Into<String>) -> Self {
        SqlError::Execution(msg.into())
    }

    pub fn bind(msg: impl Into<String>) -> Self {
        SqlError::Bind(msg.into())
    }
}
