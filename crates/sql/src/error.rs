//! The error type shared by the SQL frontend and both engines.

use std::fmt;

/// Errors raised while lexing, parsing, binding, or executing SQL.
///
/// The public query path is **panic-free**: every malformed input,
/// unsupported operation, arithmetic overflow, or exhausted resource
/// budget must surface as one of these variants, never as a process
/// abort. `Internal` is the `catch_unwind` backstop for defects that
/// slip through the typed paths.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer-level problem (unterminated string, stray character).
    Lex(String),
    /// Grammar-level problem.
    Parse(String),
    /// Name resolution / type checking problem.
    Bind(String),
    /// Catalog problem (unknown table, duplicate index, ...).
    Catalog(String),
    /// Runtime evaluation problem.
    Execution(String),
    /// A value had the wrong runtime type for an operation.
    Type(String),
    /// Integer/decimal arithmetic overflowed.
    Overflow(String),
    /// An index, ordinal, or argument was outside its valid range.
    OutOfRange(String),
    /// A per-query resource budget was exceeded (timeout, row budget,
    /// recursion/parser depth, cancellation).
    ResourceExhausted(String),
    /// On-disk state failed an integrity check (WAL CRC mismatch,
    /// bad magic, truncated checkpoint). Recovery refuses to guess.
    Corruption(String),
    /// The storage layer hit an I/O failure (disk full, permission,
    /// injected fault). The in-memory state is unchanged.
    Io(String),
    /// A defect reached the panic backstop; the query failed but the
    /// process survives. Always a bug worth reporting.
    Internal(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Bind(m) => write!(f, "binder error: {m}"),
            SqlError::Catalog(m) => write!(f, "catalog error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Overflow(m) => write!(f, "overflow: {m}"),
            SqlError::OutOfRange(m) => write!(f, "out of range: {m}"),
            SqlError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            SqlError::Corruption(m) => write!(f, "corruption: {m}"),
            SqlError::Io(m) => write!(f, "io error: {m}"),
            SqlError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias.
pub type SqlResult<T> = Result<T, SqlError>;

impl SqlError {
    pub fn execution(msg: impl Into<String>) -> Self {
        SqlError::Execution(msg.into())
    }

    pub fn bind(msg: impl Into<String>) -> Self {
        SqlError::Bind(msg.into())
    }

    pub fn type_error(msg: impl Into<String>) -> Self {
        SqlError::Type(msg.into())
    }

    pub fn overflow(msg: impl Into<String>) -> Self {
        SqlError::Overflow(msg.into())
    }

    pub fn out_of_range(msg: impl Into<String>) -> Self {
        SqlError::OutOfRange(msg.into())
    }

    pub fn resource_exhausted(msg: impl Into<String>) -> Self {
        SqlError::ResourceExhausted(msg.into())
    }

    pub fn internal(msg: impl Into<String>) -> Self {
        SqlError::Internal(msg.into())
    }

    pub fn corruption(msg: impl Into<String>) -> Self {
        SqlError::Corruption(msg.into())
    }

    pub fn io(msg: impl Into<String>) -> Self {
        SqlError::Io(msg.into())
    }

    /// True for errors that indicate an engine defect rather than bad
    /// user input.
    pub fn is_internal(&self) -> bool {
        matches!(self, SqlError::Internal(_))
    }
}

impl From<mduck_temporal::TemporalError> for SqlError {
    fn from(e: mduck_temporal::TemporalError) -> Self {
        use mduck_temporal::TemporalError as TE;
        match &e {
            TE::Parse(_) => SqlError::Execution(format!("temporal: {e}")),
            TE::Invalid(_) => SqlError::Execution(format!("temporal: {e}")),
            TE::Unsupported(_) => SqlError::Execution(format!("temporal: {e}")),
            TE::Geo(_) => SqlError::Execution(format!("temporal: {e}")),
            TE::Overflow(_) => SqlError::Overflow(format!("temporal: {e}")),
            TE::OutOfRange(_) => SqlError::OutOfRange(format!("temporal: {e}")),
            TE::ResourceExhausted(_) => SqlError::ResourceExhausted(format!("temporal: {e}")),
        }
    }
}
