//! Bound (name-resolved, type-checked) plans — the contract between the
//! shared frontend and the two executors (vectorized `quackdb`,
//! tuple-at-a-time `mduck-rowdb`).

use std::sync::Arc;

use crate::ast::BinaryOp;
use crate::registry::{AggState, ScalarFn};
use crate::value::{LogicalType, Value};

/// A named, typed output column.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    /// The binding alias of the FROM item the column came from.
    pub table: Option<String>,
    pub ty: LogicalType,
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Concatenate (for comma joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Find a column by (optional table alias, name); both lowercased.
    /// Returns `Err(true)` on ambiguity, `Err(false)` when absent.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, bool> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            let name_matches = f.name == name;
            let table_matches = match table {
                None => true,
                Some(t) => f.table.as_deref() == Some(t),
            };
            if name_matches && table_matches {
                if found.is_some() {
                    return Err(true);
                }
                found = Some(i);
            }
        }
        found.ok_or(false)
    }
}

/// A bound expression, evaluated against an environment row (plus a stack
/// of outer rows for correlated subqueries).
#[derive(Clone)]
pub enum BoundExpr {
    Literal(Value),
    /// Column of the current environment row.
    ColumnRef { index: usize, ty: LogicalType },
    /// Column of an enclosing query's row (`depth` scopes up, 1-based).
    OuterRef { depth: usize, index: usize, ty: LogicalType },
    /// A resolved scalar function / operator / cast call.
    Call {
        name: String,
        func: ScalarFn,
        args: Vec<BoundExpr>,
        ty: LogicalType,
        strict: bool,
    },
    /// Built-in comparison with SQL semantics.
    Compare { op: BinaryOp, left: Box<BoundExpr>, right: Box<BoundExpr> },
    /// Built-in arithmetic / concatenation.
    Arith { op: BinaryOp, left: Box<BoundExpr>, right: Box<BoundExpr>, ty: LogicalType },
    And(Vec<BoundExpr>),
    Or(Vec<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull { expr: Box<BoundExpr>, negated: bool },
    InList { expr: Box<BoundExpr>, list: Vec<BoundExpr>, negated: bool },
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
        ty: LogicalType,
    },
    /// Uncorrelated or correlated scalar subquery.
    ScalarSubquery { plan: Box<BoundSelect>, ty: LogicalType },
    /// `expr op ALL/ANY (subquery)`.
    Quantified { op: BinaryOp, all: bool, left: Box<BoundExpr>, plan: Box<BoundSelect> },
    Exists { plan: Box<BoundSelect>, negated: bool },
}

impl std::fmt::Debug for BoundExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundExpr::Literal(v) => write!(f, "lit({v:?})"),
            BoundExpr::ColumnRef { index, .. } => write!(f, "col#{index}"),
            BoundExpr::OuterRef { depth, index, .. } => write!(f, "outer#{depth}.{index}"),
            BoundExpr::Call { name, args, .. } => write!(f, "{name}({args:?})"),
            BoundExpr::Compare { op, left, right } => {
                write!(f, "({left:?} {} {right:?})", op.symbol())
            }
            BoundExpr::Arith { op, left, right, .. } => {
                write!(f, "({left:?} {} {right:?})", op.symbol())
            }
            BoundExpr::And(es) => write!(f, "and{es:?}"),
            BoundExpr::Or(es) => write!(f, "or{es:?}"),
            BoundExpr::Not(e) => write!(f, "not({e:?})"),
            BoundExpr::IsNull { expr, negated } => {
                write!(f, "({expr:?} is {}null)", if *negated { "not " } else { "" })
            }
            BoundExpr::InList { expr, list, .. } => write!(f, "({expr:?} in {list:?})"),
            BoundExpr::Case { .. } => write!(f, "case(...)"),
            BoundExpr::ScalarSubquery { .. } => write!(f, "subquery(...)"),
            BoundExpr::Quantified { op, all, left, .. } => {
                write!(f, "({left:?} {} {}(...))", op.symbol(), if *all { "ALL" } else { "ANY" })
            }
            BoundExpr::Exists { negated, .. } => {
                write!(f, "{}exists(...)", if *negated { "not " } else { "" })
            }
        }
    }
}

impl BoundExpr {
    pub fn ty(&self) -> LogicalType {
        match self {
            BoundExpr::Literal(v) => v.logical_type(),
            BoundExpr::ColumnRef { ty, .. }
            | BoundExpr::OuterRef { ty, .. }
            | BoundExpr::Call { ty, .. }
            | BoundExpr::Arith { ty, .. }
            | BoundExpr::Case { ty, .. }
            | BoundExpr::ScalarSubquery { ty, .. } => ty.clone(),
            BoundExpr::Compare { .. }
            | BoundExpr::And(_)
            | BoundExpr::Or(_)
            | BoundExpr::Not(_)
            | BoundExpr::IsNull { .. }
            | BoundExpr::InList { .. }
            | BoundExpr::Quantified { .. }
            | BoundExpr::Exists { .. } => LogicalType::Bool,
        }
    }

    /// Does evaluation need anything beyond the current row (subqueries /
    /// outer references)? Vectorized fast paths bail out when true.
    pub fn is_complex(&self) -> bool {
        match self {
            BoundExpr::Literal(_) | BoundExpr::ColumnRef { .. } => false,
            BoundExpr::OuterRef { .. }
            | BoundExpr::ScalarSubquery { .. }
            | BoundExpr::Quantified { .. }
            | BoundExpr::Exists { .. } => true,
            BoundExpr::Call { args, .. } => args.iter().any(BoundExpr::is_complex),
            BoundExpr::Compare { left, right, .. } | BoundExpr::Arith { left, right, .. } => {
                left.is_complex() || right.is_complex()
            }
            BoundExpr::And(es) | BoundExpr::Or(es) => es.iter().any(BoundExpr::is_complex),
            BoundExpr::Not(e) => e.is_complex(),
            BoundExpr::IsNull { expr, .. } => expr.is_complex(),
            BoundExpr::InList { expr, list, .. } => {
                expr.is_complex() || list.iter().any(BoundExpr::is_complex)
            }
            BoundExpr::Case { operand, branches, else_expr, .. } => {
                operand.as_deref().is_some_and(BoundExpr::is_complex)
                    || branches.iter().any(|(c, v)| c.is_complex() || v.is_complex())
                    || else_expr.as_deref().is_some_and(BoundExpr::is_complex)
            }
        }
    }

    /// Collect column indices referenced at the current depth.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::ColumnRef { index, .. } => out.push(*index),
            BoundExpr::Call { args, .. } => args.iter().for_each(|a| a.collect_columns(out)),
            BoundExpr::Compare { left, right, .. } | BoundExpr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            BoundExpr::And(es) | BoundExpr::Or(es) => {
                es.iter().for_each(|e| e.collect_columns(out))
            }
            BoundExpr::Not(e) => e.collect_columns(out),
            BoundExpr::IsNull { expr, .. } => expr.collect_columns(out),
            BoundExpr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                list.iter().for_each(|e| e.collect_columns(out));
            }
            BoundExpr::Case { operand, branches, else_expr, .. } => {
                if let Some(o) = operand {
                    o.collect_columns(out);
                }
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            BoundExpr::Quantified { left, .. } => left.collect_columns(out),
            _ => {}
        }
    }
}

/// One bound aggregate call.
#[derive(Clone)]
pub struct BoundAggregate {
    pub name: String,
    pub args: Vec<BoundExpr>,
    pub distinct: bool,
    pub ty: LogicalType,
    pub factory: Arc<dyn Fn() -> Box<dyn AggState> + Send + Sync>,
}

impl std::fmt::Debug for BoundAggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({:?}{})", self.name, self.args, if self.distinct { " distinct" } else { "" })
    }
}

/// How to obtain a sort key.
#[derive(Debug, Clone)]
pub enum SortKey {
    /// Index into the projected output row.
    Output(usize),
    /// Expression over the projection-input environment.
    Input(BoundExpr),
}

#[derive(Debug, Clone)]
pub struct BoundOrder {
    pub key: SortKey,
    pub asc: bool,
}

/// Compare two ORDER BY key vectors under `order` — the one comparator
/// shared by both engines, so ordering semantics (and ordering *errors*)
/// are identical everywhere.
///
/// NULLs sort last ascending / first descending. A pair of **non-null**
/// values that [`Value::sql_cmp`] refuses to order (incompatible types,
/// or a NaN float) is a type error, not a silent tie: the first such
/// pair is recorded in `err` and reported as `Equal` so the sort can run
/// to completion, after which the caller fails the statement with the
/// recorded error.
pub fn cmp_order_keys(
    a: &[Value],
    b: &[Value],
    order: &[BoundOrder],
    err: &mut Option<crate::error::SqlError>,
) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for ((x, y), o) in a.iter().zip(b).zip(order) {
        let ord = match x.sql_cmp(y) {
            Some(ord) => ord,
            None => match (x.is_null(), y.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    if err.is_none() {
                        *err = Some(crate::error::SqlError::Type(format!(
                            "ORDER BY cannot compare {} with {}",
                            x.logical_type().name(),
                            y.logical_type().name()
                        )));
                    }
                    Ordering::Equal
                }
            },
        };
        let ord = if o.asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// A bound FROM item.
#[derive(Debug, Clone)]
pub enum BoundFrom {
    Table { name: String, alias: String, schema: Schema },
    Cte { index: usize, alias: String, schema: Schema },
    Subquery { plan: Box<BoundSelect>, alias: String, schema: Schema },
    /// `generate_series(start, stop[, step])`.
    Series { args: Vec<BoundExpr>, alias: String, schema: Schema },
    /// `mduck_spans()`: snapshot of the tracing-span ring buffer.
    Spans { alias: String, schema: Schema },
    /// `mduck_progress()`: snapshot of the live-progress registry.
    Progress { alias: String, schema: Schema },
    /// `mduck_query_log()`: snapshot of the query-log history.
    QueryLog { alias: String, schema: Schema },
}

impl BoundFrom {
    pub fn schema(&self) -> &Schema {
        match self {
            BoundFrom::Table { schema, .. }
            | BoundFrom::Cte { schema, .. }
            | BoundFrom::Subquery { schema, .. }
            | BoundFrom::Series { schema, .. }
            | BoundFrom::Spans { schema, .. }
            | BoundFrom::Progress { schema, .. }
            | BoundFrom::QueryLog { schema, .. } => schema,
        }
    }
}

/// A bound CTE (materialized once per execution, in order).
#[derive(Debug, Clone)]
pub struct BoundCte {
    pub name: String,
    /// Global CTE slot assigned by the binder; `BoundFrom::Cte` references
    /// use the same index space.
    pub index: usize,
    pub plan: BoundSelect,
}

/// A fully bound SELECT.
///
/// Evaluation model shared by both engines:
/// 1. materialize `ctes` in order;
/// 2. produce the cross product of `from` (engines extract equi-join and
///    index-join conditions from `filter`'s conjuncts);
/// 3. apply `filter`;
/// 4. if `aggregated`: group by `group_by`, compute `aggregates`, and form
///    the *aggregate environment row* `[group keys ++ agg results]`; apply
///    `having`; otherwise the environment row is the input row;
/// 5. evaluate `projections` over the environment row;
/// 6. DISTINCT, ORDER BY (`SortKey::Output` over the projected row,
///    `SortKey::Input` over the environment row), OFFSET/LIMIT.
#[derive(Debug, Clone, Default)]
pub struct BoundSelect {
    pub ctes: Vec<BoundCte>,
    pub from: Vec<BoundFrom>,
    pub filter: Option<BoundExpr>,
    pub aggregated: bool,
    pub group_by: Vec<BoundExpr>,
    pub aggregates: Vec<BoundAggregate>,
    pub having: Option<BoundExpr>,
    pub projections: Vec<BoundExpr>,
    pub distinct: bool,
    pub order_by: Vec<BoundOrder>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
    /// Schema of the concatenated FROM items.
    pub input_schema: Schema,
    /// Schema of the aggregate environment (equals `input_schema` when not
    /// aggregated).
    pub env_schema: Schema,
    pub output_schema: Schema,
}

/// Split a filter into top-level AND conjuncts.
pub fn split_conjuncts(expr: &BoundExpr, out: &mut Vec<BoundExpr>) {
    match expr {
        BoundExpr::And(es) => {
            for e in es {
                split_conjuncts(e, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Catalog abstraction the binder resolves table names against.
pub trait Catalog {
    /// Column names and types of a base table (lower-cased names).
    fn table_schema(&self, name: &str) -> Option<Vec<(String, LogicalType)>>;
}
