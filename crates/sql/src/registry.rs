//! Function, aggregate, cast, operator, and type registries — the
//! extension surface. This is the Rust equivalent of the paper's §3.4:
//! MobilityDuck registers cast functions, scalar functions, and operators
//! (binary scalar functions named by their symbol) against the engine.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{SqlError, SqlResult};
use crate::value::{LogicalType, Value};

/// A scalar function implementation over runtime values.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> SqlResult<Value> + Send + Sync>;

/// One overload of a scalar function (or operator — operators are scalar
/// functions whose name is the operator symbol, exactly as in §3.4).
#[derive(Clone)]
pub struct ScalarSig {
    pub name: String,
    pub args: Vec<LogicalType>,
    /// When true, extra trailing arguments of any type are accepted.
    pub varargs: bool,
    pub ret: LogicalType,
    pub func: ScalarFn,
    /// Strict functions (the default) return NULL on any NULL argument
    /// without being called.
    pub strict: bool,
}

/// Incremental aggregate state.
pub trait AggState: Send {
    fn update(&mut self, args: &[Value]) -> SqlResult<()>;
    fn finalize(&mut self) -> SqlResult<Value>;

    /// Two-phase parallel aggregation opt-in. A state returning `true`
    /// promises that folding partial states built over contiguous,
    /// in-order input ranges (via [`AggState::merge`], left to right)
    /// produces a result **bit-identical** to serial accumulation.
    /// Float `sum`/`avg` must opt out: merging partial sums reorders the
    /// additions, and IEEE 754 addition is not associative.
    fn exact_merge(&self) -> bool {
        false
    }

    /// Downcast hook for [`AggState::merge`] implementations; states
    /// opting into merging return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Fold `other` — a partial state covering the input range *after*
    /// `self`'s — into `self`. Called only when [`AggState::exact_merge`]
    /// is `true`; `other` is the same concrete type by construction.
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        let _ = other;
        Err(SqlError::internal("aggregate state does not support merging"))
    }
}

/// Downcast a partial aggregate state to the concrete type a
/// [`AggState::merge`] implementation expects.
pub fn downcast_partial<T: 'static>(other: &mut dyn AggState) -> SqlResult<&mut T> {
    other
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<T>())
        .ok_or_else(|| SqlError::internal("partial aggregate state type mismatch"))
}

/// One overload of an aggregate function.
#[derive(Clone)]
pub struct AggregateSig {
    pub name: String,
    pub args: Vec<LogicalType>,
    pub ret: LogicalType,
    pub factory: Arc<dyn Fn() -> Box<dyn AggState> + Send + Sync>,
}

/// Decoder turning a serialized extension value back into a runtime
/// [`Value`] (the detoast path of row stores).
pub type ExtDecoder = Arc<dyn Fn(&[u8]) -> SqlResult<Value> + Send + Sync>;

/// The shared registry: installed once per database instance; the
/// MobilityDuck extension populates it at load time.
#[derive(Clone, Default)]
pub struct Registry {
    scalars: HashMap<String, Vec<ScalarSig>>,
    aggregates: HashMap<String, Vec<AggregateSig>>,
    casts: HashMap<(LogicalType, LogicalType), ScalarFn>,
    types: HashMap<String, LogicalType>,
    ext_codecs: HashMap<String, ExtDecoder>,
}

impl Registry {
    /// A registry preloaded with the built-in SQL surface.
    pub fn with_builtins() -> Self {
        let mut r = Registry::default();
        crate::builtins::register_builtins(&mut r);
        r
    }

    // ---------------------------------------------------------- types

    /// Register a type alias (e.g. `"stbox"` → `Ext("stbox")`). Mirrors
    /// the paper's `CREATE TYPE ... AS BLOB` alias registration (§3.3).
    pub fn register_type(&mut self, name: &str, ty: LogicalType) {
        self.types.insert(name.to_ascii_lowercase(), ty);
    }

    /// Resolve a type name written in SQL.
    pub fn resolve_type(&self, name: &str) -> SqlResult<LogicalType> {
        self.types
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Bind(format!("unknown type {name:?}")))
    }

    pub fn type_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.types.keys().cloned().collect();
        v.sort();
        v
    }

    // ---------------------------------------------------------- scalars

    /// Register a scalar function overload (strict by default).
    pub fn register_scalar(
        &mut self,
        name: &str,
        args: Vec<LogicalType>,
        ret: LogicalType,
        func: impl Fn(&[Value]) -> SqlResult<Value> + Send + Sync + 'static,
    ) {
        self.scalars
            .entry(name.to_ascii_lowercase())
            .or_default()
            .push(ScalarSig {
                name: name.to_ascii_lowercase(),
                args,
                varargs: false,
                ret,
                func: Arc::new(func),
                strict: true,
            });
    }

    /// Register with full control over the signature.
    pub fn register_scalar_sig(&mut self, sig: ScalarSig) {
        self.scalars.entry(sig.name.clone()).or_default().push(sig);
    }

    /// Resolve a call by name and argument types, honouring implicit
    /// coercions (Int→Float, Null→anything).
    pub fn resolve_scalar(&self, name: &str, arg_types: &[LogicalType]) -> SqlResult<&ScalarSig> {
        let name = name.to_ascii_lowercase();
        let overloads = self
            .scalars
            .get(&name)
            .ok_or_else(|| SqlError::Bind(format!("unknown function {name:?}")))?;
        // Pass 1: exact match.
        for sig in overloads {
            if sig.args.len() == arg_types.len() && sig.args.iter().zip(arg_types).all(|(a, b)| a == b)
            {
                return Ok(sig);
            }
        }
        // Pass 2: coercible match.
        let matches: Vec<&ScalarSig> = overloads
            .iter()
            .filter(|sig| {
                (sig.args.len() == arg_types.len()
                    || (sig.varargs && arg_types.len() >= sig.args.len()))
                    && sig
                        .args
                        .iter()
                        .zip(arg_types)
                        .all(|(expected, actual)| actual.coercible_to(expected))
            })
            .collect();
        match matches.len() {
            0 => Err(SqlError::Bind(format!(
                "no overload of {name:?} matches argument types ({})",
                arg_types.iter().map(LogicalType::name).collect::<Vec<_>>().join(", ")
            ))),
            _ => Ok(matches[0]),
        }
    }

    pub fn has_scalar(&self, name: &str) -> bool {
        self.scalars.contains_key(&name.to_ascii_lowercase())
    }

    /// All registered scalar names (diagnostics / the Table-1 report).
    pub fn scalar_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.scalars.keys().cloned().collect();
        v.sort();
        v
    }

    // ---------------------------------------------------------- aggregates

    pub fn register_aggregate(
        &mut self,
        name: &str,
        args: Vec<LogicalType>,
        ret: LogicalType,
        factory: impl Fn() -> Box<dyn AggState> + Send + Sync + 'static,
    ) {
        self.aggregates
            .entry(name.to_ascii_lowercase())
            .or_default()
            .push(AggregateSig {
                name: name.to_ascii_lowercase(),
                args,
                ret,
                factory: Arc::new(factory),
            });
    }

    pub fn is_aggregate(&self, name: &str) -> bool {
        self.aggregates.contains_key(&name.to_ascii_lowercase())
    }

    pub fn resolve_aggregate(
        &self,
        name: &str,
        arg_types: &[LogicalType],
    ) -> SqlResult<&AggregateSig> {
        let name = name.to_ascii_lowercase();
        let overloads = self
            .aggregates
            .get(&name)
            .ok_or_else(|| SqlError::Bind(format!("unknown aggregate {name:?}")))?;
        for sig in overloads {
            if sig.args.len() == arg_types.len() && sig.args.iter().zip(arg_types).all(|(a, b)| a == b)
            {
                return Ok(sig);
            }
        }
        overloads
            .iter()
            .find(|sig| {
                sig.args.len() == arg_types.len()
                    && sig
                        .args
                        .iter()
                        .zip(arg_types)
                        .all(|(expected, actual)| actual.coercible_to(expected))
            })
            .ok_or_else(|| {
                SqlError::Bind(format!(
                    "no overload of aggregate {name:?} matches ({})",
                    arg_types.iter().map(LogicalType::name).collect::<Vec<_>>().join(", ")
                ))
            })
    }

    // ---------------------------------------------------------- casts

    /// Register an explicit cast (the paper's `RegisterCastFunction`).
    pub fn register_cast(
        &mut self,
        from: LogicalType,
        to: LogicalType,
        func: impl Fn(&[Value]) -> SqlResult<Value> + Send + Sync + 'static,
    ) {
        self.casts.insert((from, to), Arc::new(func));
    }

    // ---------------------------------------------------------- ext codecs

    /// Register the binary decoder of an extension type. The matching
    /// encoder is [`crate::value::ExtObject::to_bytes`]; together they are
    /// the type's wire/storage format (a varlena in PostgreSQL terms).
    pub fn register_ext_codec(
        &mut self,
        type_name: &str,
        decode: impl Fn(&[u8]) -> SqlResult<Value> + Send + Sync + 'static,
    ) {
        self.ext_codecs.insert(type_name.to_ascii_lowercase(), Arc::new(decode));
    }

    /// Look up the binary decoder of an extension type.
    pub fn ext_codec(&self, type_name: &str) -> Option<ExtDecoder> {
        self.ext_codecs.get(type_name).cloned()
    }

    /// Find a cast implementation.
    pub fn resolve_cast(&self, from: &LogicalType, to: &LogicalType) -> Option<ScalarFn> {
        if from == to {
            let identity: ScalarFn = Arc::new(|args: &[Value]| Ok(args[0].clone()));
            return Some(identity);
        }
        self.casts.get(&(from.clone(), to.clone())).cloned()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("scalars", &self.scalars.len())
            .field("aggregates", &self.aggregates.len())
            .field("casts", &self.casts.len())
            .field("types", &self.types.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_overload_resolution() {
        let mut r = Registry::default();
        r.register_scalar("f", vec![LogicalType::Int], LogicalType::Int, |a| {
            Ok(Value::Int(a[0].as_int()? + 1))
        });
        r.register_scalar("f", vec![LogicalType::Float], LogicalType::Float, |a| {
            Ok(Value::Float(a[0].as_float()? + 0.5))
        });
        let sig = r.resolve_scalar("F", &[LogicalType::Int]).unwrap();
        assert_eq!(sig.ret, LogicalType::Int);
        let sig = r.resolve_scalar("f", &[LogicalType::Float]).unwrap();
        assert_eq!(sig.ret, LogicalType::Float);
        assert!(r.resolve_scalar("f", &[LogicalType::Text]).is_err());
        assert!(r.resolve_scalar("g", &[]).is_err());
    }

    #[test]
    fn int_coerces_to_float_overload() {
        let mut r = Registry::default();
        r.register_scalar("sqrtish", vec![LogicalType::Float], LogicalType::Float, |a| {
            Ok(Value::Float(a[0].as_float()?.sqrt()))
        });
        let sig = r.resolve_scalar("sqrtish", &[LogicalType::Int]).unwrap();
        assert_eq!((sig.func)(&[Value::Int(9)]).unwrap().as_float().unwrap(), 3.0);
    }

    #[test]
    fn type_registration() {
        let mut r = Registry::default();
        r.register_type("STBOX", LogicalType::ext("stbox"));
        assert_eq!(r.resolve_type("stbox").unwrap(), LogicalType::ext("stbox"));
        assert!(r.resolve_type("nope").is_err());
    }

    #[test]
    fn cast_resolution() {
        let mut r = Registry::default();
        r.register_cast(LogicalType::Text, LogicalType::ext("stbox"), |a| {
            Ok(Value::text(format!("boxed:{}", a[0].as_text()?)))
        });
        assert!(r.resolve_cast(&LogicalType::Text, &LogicalType::ext("stbox")).is_some());
        assert!(r.resolve_cast(&LogicalType::Text, &LogicalType::ext("tbox")).is_none());
        // Identity cast always available.
        assert!(r.resolve_cast(&LogicalType::Int, &LogicalType::Int).is_some());
    }
}
