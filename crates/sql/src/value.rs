//! Runtime values and logical types.
//!
//! Extension types (the MobilityDuck UDTs — `stbox`, `tgeompoint`, `span`,
//! ...) are carried as [`ExtValue`]: a type name plus an `Arc`'d opaque
//! object implementing [`ExtObject`]. This mirrors the paper's design where
//! MEOS types live in DuckDB as aliased BLOBs: the logical type is opaque
//! to the engine, and only registered functions/casts can look inside.

use std::any::Any;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{SqlError, SqlResult};

/// A logical (column) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalType {
    /// The type of NULL literals; coerces to anything.
    Null,
    Bool,
    Int,
    Float,
    Text,
    Blob,
    Timestamp,
    Date,
    Interval,
    /// An extension type, identified by its canonical lower-case name
    /// (e.g. `"stbox"`, `"tgeompoint"`).
    Ext(Arc<str>),
    /// An untyped list (the `list()` aggregate's output).
    List,
    /// Registration wildcard: matches any argument type.
    Any,
}

impl LogicalType {
    pub fn ext(name: &str) -> LogicalType {
        LogicalType::Ext(Arc::from(name.to_ascii_lowercase().as_str()))
    }

    /// Can a value of `self` be used where `target` is expected without an
    /// explicit cast?
    pub fn coercible_to(&self, target: &LogicalType) -> bool {
        if self == target || matches!(target, LogicalType::Any) || matches!(self, LogicalType::Null)
        {
            return true;
        }
        matches!(
            (self, target),
            (LogicalType::Int, LogicalType::Float) | (LogicalType::Date, LogicalType::Timestamp)
        )
    }

    /// Display name (matches what `DESCRIBE` would print).
    pub fn name(&self) -> String {
        match self {
            LogicalType::Null => "NULL".into(),
            LogicalType::Bool => "BOOLEAN".into(),
            LogicalType::Int => "BIGINT".into(),
            LogicalType::Float => "DOUBLE".into(),
            LogicalType::Text => "VARCHAR".into(),
            LogicalType::Blob => "BLOB".into(),
            LogicalType::Timestamp => "TIMESTAMPTZ".into(),
            LogicalType::Date => "DATE".into(),
            LogicalType::Interval => "INTERVAL".into(),
            LogicalType::Ext(n) => n.to_uppercase(),
            LogicalType::List => "LIST".into(),
            LogicalType::Any => "ANY".into(),
        }
    }
}

/// Behaviour every extension object must provide so the engine can print,
/// hash, compare, and serialize it without knowing its structure.
pub trait ExtObject: Any + Send + Sync + fmt::Debug {
    fn as_any(&self) -> &dyn Any;
    /// Canonical lower-case type name (must match the registered alias).
    fn ext_type_name(&self) -> &str;
    /// Textual rendering used in query results.
    fn to_text(&self) -> String;
    /// Binary rendering (the BLOB the paper stores).
    fn to_bytes(&self) -> Vec<u8>;
    /// Equality against another object of the same extension type.
    fn eq_obj(&self, other: &dyn ExtObject) -> bool {
        self.to_bytes() == other.to_bytes()
    }
    /// Total order used by ORDER BY / MIN / MAX; defaults to byte order.
    fn cmp_obj(&self, other: &dyn ExtObject) -> Ordering {
        self.to_bytes().cmp(&other.to_bytes())
    }
    /// Approximate heap footprint, for per-query memory accounting.
    /// Must be O(1) — an estimate, not a serialization. Types whose size
    /// varies by orders of magnitude (temporal sequences) should
    /// override this; the default covers small fixed-shape objects.
    fn approx_bytes(&self) -> u64 {
        64
    }
}

/// A runtime extension value.
#[derive(Clone)]
pub struct ExtValue {
    pub obj: Arc<dyn ExtObject>,
}

impl ExtValue {
    pub fn new(obj: Arc<dyn ExtObject>) -> Self {
        ExtValue { obj }
    }

    pub fn type_name(&self) -> &str {
        self.obj.ext_type_name()
    }

    /// Downcast to a concrete extension payload.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        self.obj.as_any().downcast_ref::<T>()
    }
}

impl fmt::Debug for ExtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExtValue({}: {})", self.type_name(), self.obj.to_text())
    }
}

impl PartialEq for ExtValue {
    fn eq(&self, other: &Self) -> bool {
        self.type_name() == other.type_name() && self.obj.eq_obj(other.obj.as_ref())
    }
}

/// A runtime value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(Arc<str>),
    Blob(Arc<[u8]>),
    /// Microseconds since the Unix epoch, UTC.
    Timestamp(i64),
    /// Days since the Unix epoch.
    Date(i32),
    Interval {
        months: i32,
        days: i32,
        usecs: i64,
    },
    Ext(ExtValue),
    List(Arc<Vec<Value>>),
}

impl Value {
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    pub fn blob(b: impl Into<Arc<[u8]>>) -> Value {
        Value::Blob(b.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The logical type of this value.
    pub fn logical_type(&self) -> LogicalType {
        match self {
            Value::Null => LogicalType::Null,
            Value::Bool(_) => LogicalType::Bool,
            Value::Int(_) => LogicalType::Int,
            Value::Float(_) => LogicalType::Float,
            Value::Text(_) => LogicalType::Text,
            Value::Blob(_) => LogicalType::Blob,
            Value::Timestamp(_) => LogicalType::Timestamp,
            Value::Date(_) => LogicalType::Date,
            Value::Interval { .. } => LogicalType::Interval,
            Value::Ext(e) => LogicalType::ext(e.type_name()),
            Value::List(_) => LogicalType::List,
        }
    }

    /// Approximate bytes this value occupies when materialized, for
    /// per-query memory accounting. Shared payloads (`Arc` text, blobs,
    /// lists) are counted at every reference: the accounting measures
    /// what operators materialize, not unique ownership.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Date(_) => 4,
            Value::Interval { .. } => 16,
            Value::Text(s) => 16 + s.len() as u64,
            Value::Blob(b) => 16 + b.len() as u64,
            Value::Ext(e) => 16 + e.obj.approx_bytes(),
            Value::List(l) => 24 + l.iter().map(Value::approx_bytes).sum::<u64>(),
        }
    }

    pub fn as_list(&self) -> SqlResult<&[Value]> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(SqlError::execution(format!("expected LIST, got {other:?}"))),
        }
    }

    pub fn as_bool(&self) -> SqlResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(SqlError::execution(format!("expected BOOLEAN, got {other:?}"))),
        }
    }

    pub fn as_int(&self) -> SqlResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(SqlError::execution(format!("expected BIGINT, got {other:?}"))),
        }
    }

    pub fn as_float(&self) -> SqlResult<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(SqlError::execution(format!("expected DOUBLE, got {other:?}"))),
        }
    }

    pub fn as_text(&self) -> SqlResult<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(SqlError::execution(format!("expected VARCHAR, got {other:?}"))),
        }
    }

    pub fn as_blob(&self) -> SqlResult<&[u8]> {
        match self {
            Value::Blob(b) => Ok(b),
            other => Err(SqlError::execution(format!("expected BLOB, got {other:?}"))),
        }
    }

    pub fn as_timestamp(&self) -> SqlResult<i64> {
        match self {
            Value::Timestamp(t) => Ok(*t),
            Value::Date(d) => Ok(*d as i64 * 86_400_000_000),
            other => Err(SqlError::execution(format!("expected TIMESTAMPTZ, got {other:?}"))),
        }
    }

    pub fn as_ext(&self) -> SqlResult<&ExtValue> {
        match self {
            Value::Ext(e) => Ok(e),
            other => Err(SqlError::execution(format!("expected extension value, got {other:?}"))),
        }
    }

    /// Downcast an extension value's payload.
    pub fn ext_as<T: 'static>(&self) -> SqlResult<&T> {
        self.as_ext()?
            .downcast::<T>()
            .ok_or_else(|| SqlError::execution("extension value of unexpected concrete type"))
    }

    /// SQL equality (NULL ≠ anything). Numeric types compare across
    /// Int/Float.
    pub fn sql_eq(&self, other: &Value) -> bool {
        matches!(self.sql_cmp(other), Some(Ordering::Equal))
    }

    /// SQL ordering; `None` when either side is NULL or types are
    /// incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Date(a), Timestamp(b)) => Some((*a as i64 * 86_400_000_000).cmp(b)),
            (Timestamp(a), Date(b)) => Some(a.cmp(&(*b as i64 * 86_400_000_000))),
            (
                Interval { months: m1, days: d1, usecs: u1 },
                Interval { months: m2, days: d2, usecs: u2 },
            ) => {
                let a = (*m1 as i64 * 30 + *d1 as i64) * 86_400_000_000 + u1;
                let b = (*m2 as i64 * 30 + *d2 as i64) * 86_400_000_000 + u2;
                Some(a.cmp(&b))
            }
            (Ext(a), Ext(b)) if a.type_name() == b.type_name() => {
                Some(a.obj.cmp_obj(b.obj.as_ref()))
            }
            (List(_), List(_)) => None,
            _ => None,
        }
    }

    /// A stable hash key for GROUP BY / DISTINCT / hash joins. NULLs hash
    /// together (SQL DISTINCT semantics).
    pub fn hash_key(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                // Hash integral floats like ints so 1 and 1.0 join.
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    out.push(2);
                    out.extend_from_slice(&(*f as i64).to_le_bytes());
                } else {
                    out.push(3);
                    out.extend_from_slice(&f.to_bits().to_le_bytes());
                }
            }
            Value::Text(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Blob(b) => {
                out.push(5);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Timestamp(t) => {
                out.push(6);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Value::Date(d) => {
                out.push(7);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Interval { months, days, usecs } => {
                out.push(8);
                out.extend_from_slice(&months.to_le_bytes());
                out.extend_from_slice(&days.to_le_bytes());
                out.extend_from_slice(&usecs.to_le_bytes());
            }
            Value::Ext(e) => {
                out.push(9);
                let bytes = e.obj.to_bytes();
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&bytes);
            }
            Value::List(items) => {
                out.push(10);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for v in items.iter() {
                    v.hash_key(out);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    /// Result rendering (Postgres-flavoured).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}.0", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Blob(b) => {
                write!(f, "\\x")?;
                for byte in b.iter().take(32) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 32 {
                    write!(f, "… ({} bytes)", b.len())?;
                }
                Ok(())
            }
            Value::Timestamp(t) => write!(f, "{}", fmt_timestamp(*t)),
            Value::Date(d) => write!(f, "{}", fmt_date(*d)),
            Value::Interval { months, days, usecs } => {
                write!(f, "{}", fmt_interval(*months, *days, *usecs))
            }
            Value::Ext(e) => write!(f, "{}", e.obj.to_text()),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

// Minimal local timestamp formatting (the temporal crate owns the real
// implementation; this one keeps the sql crate dependency-free and is
// format-compatible).
fn fmt_timestamp(micros: i64) -> String {
    const USECS_PER_DAY: i64 = 86_400_000_000;
    let days = micros.div_euclid(USECS_PER_DAY);
    let tod = micros.rem_euclid(USECS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    let h = tod / 3_600_000_000;
    let mi = (tod / 60_000_000) % 60;
    let s = (tod / 1_000_000) % 60;
    let us = tod % 1_000_000;
    let mut out = format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}");
    if us != 0 {
        let frac = format!("{us:06}");
        out.push('.');
        out.push_str(frac.trim_end_matches('0'));
    }
    out.push_str("+00");
    out
}

fn fmt_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

fn fmt_interval(months: i32, days: i32, usecs: i64) -> String {
    // Justify: fold whole days out of the microsecond part (matches the
    // temporal crate's printer, so `interval '2 days'` and a 48-hour
    // difference render identically).
    const USECS_PER_DAY: i64 = 86_400_000_000;
    let extra_days = usecs.div_euclid(USECS_PER_DAY);
    let days = days + extra_days as i32;
    let usecs = usecs.rem_euclid(USECS_PER_DAY);
    let mut parts: Vec<String> = Vec::new();
    let years = months / 12;
    let months = months % 12;
    if years != 0 {
        parts.push(format!("{years} year{}", if years.abs() == 1 { "" } else { "s" }));
    }
    if months != 0 {
        parts.push(format!("{months} mon{}", if months.abs() == 1 { "" } else { "s" }));
    }
    if days != 0 {
        parts.push(format!("{days} day{}", if days.abs() == 1 { "" } else { "s" }));
    }
    if usecs != 0 || parts.is_empty() {
        let h = usecs / 3_600_000_000;
        let mi = (usecs / 60_000_000) % 60;
        let s = (usecs / 1_000_000) % 60;
        let frac = usecs % 1_000_000;
        let mut t = format!("{h:02}:{mi:02}:{s:02}");
        if frac != 0 {
            let fs = format!("{frac:06}");
            t.push('.');
            t.push_str(fs.trim_end_matches('0'));
        }
        parts.push(t);
    }
    parts.join(" ")
}

pub(crate) fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_types() {
        assert_eq!(Value::Int(1).logical_type(), LogicalType::Int);
        assert!(LogicalType::Int.coercible_to(&LogicalType::Float));
        assert!(!LogicalType::Float.coercible_to(&LogicalType::Int));
        assert!(LogicalType::Null.coercible_to(&LogicalType::Text));
        assert!(LogicalType::ext("STBOX") == LogicalType::ext("stbox"));
    }

    #[test]
    fn sql_cmp_promotes_numerics() {
        assert!(Value::Int(1).sql_eq(&Value::Float(1.0)));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn hash_key_joins_int_and_float() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Int(7).hash_key(&mut a);
        Value::Float(7.0).hash_key(&mut b);
        assert_eq!(a, b);
        let mut c = Vec::new();
        Value::Float(7.5).hash_key(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Timestamp(0).to_string(), "1970-01-01 00:00:00+00");
        assert_eq!(Value::Date(20_089).to_string(), "2025-01-01");
    }

    #[test]
    fn date_timestamp_cross_compare() {
        let d = Value::Date(20_089);
        let t = Value::Timestamp(20_089 * 86_400_000_000);
        assert!(d.sql_eq(&t));
    }
}
