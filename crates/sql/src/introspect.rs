//! SQL-surfaced introspection shared by both engines.
//!
//! Two surfaces, deliberately engine-agnostic so `PRAGMA metrics` returns
//! the exact same schema from the vectorized and the row engine:
//!
//! * [`pragma`] — resolves `PRAGMA <name> [= value]` statements
//!   (`metrics`, `reset_metrics`, `reset_spans`, `query_log`,
//!   `slow_query_ms`, ...) into a `(Schema, rows)` pair, or `None` for
//!   names this module does not know (the engine reports the error so it
//!   can mention its own name, and handles per-database settings like
//!   `threads` and `memory_limit` itself).
//! * [`span_fields`]/[`span_rows`], [`progress_fields`]/[`progress_rows`],
//!   [`query_log_fields`]/[`query_log_rows`] — the schemas and snapshot
//!   rows of the `mduck_spans()` / `mduck_progress()` /
//!   `mduck_query_log()` table functions.

use crate::ast::PragmaValue;
use crate::bound::{Field, Schema};
use crate::error::{SqlError, SqlResult};
use crate::value::{LogicalType, Value};

/// Schema of `PRAGMA metrics`: one row per registered metric.
pub fn metrics_schema() -> Schema {
    Schema::new(vec![
        Field { name: "name".into(), table: None, ty: LogicalType::Text },
        Field { name: "kind".into(), table: None, ty: LogicalType::Text },
        Field { name: "value".into(), table: None, ty: LogicalType::Int },
        Field { name: "detail".into(), table: None, ty: LogicalType::Text },
    ])
}

/// One row per metric in the global registry, in declaration order.
pub fn metrics_rows() -> Vec<Vec<Value>> {
    mduck_obs::metrics()
        .snapshot()
        .into_iter()
        .map(|m| {
            vec![
                Value::Text(m.name.into()),
                Value::Text(m.kind.into()),
                Value::Int(m.value),
                Value::Text(m.detail.into()),
            ]
        })
        .collect()
}

/// Schema of the `mduck_spans()` table function, columns qualified by the
/// binder-assigned alias.
pub fn span_fields(alias: &str) -> Vec<Field> {
    let table = Some(alias.to_string());
    let f = |name: &str, ty: LogicalType| Field { name: name.into(), table: table.clone(), ty };
    vec![
        f("span_id", LogicalType::Int),
        f("parent_id", LogicalType::Int),
        f("name", LogicalType::Text),
        f("depth", LogicalType::Int),
        f("start_us", LogicalType::Int),
        f("duration_us", LogicalType::Int),
        f("thread", LogicalType::Text),
    ]
}

/// Snapshot of the finished-span ring buffer, oldest first, shaped for
/// [`span_fields`].
pub fn span_rows() -> Vec<Vec<Value>> {
    mduck_obs::spans_snapshot()
        .into_iter()
        .map(|s| {
            vec![
                Value::Int(s.id as i64),
                s.parent.map(|p| Value::Int(p as i64)).unwrap_or(Value::Null),
                Value::Text(s.name.into()),
                Value::Int(s.depth as i64),
                Value::Int(s.start_us as i64),
                Value::Int(s.duration_us as i64),
                Value::Text(s.thread.into()),
            ]
        })
        .collect()
}

/// Schema of the `mduck_progress()` table function: one row per registry
/// entry (in-flight statements plus a tail of recently finished ones).
pub fn progress_fields(alias: &str) -> Vec<Field> {
    let table = Some(alias.to_string());
    let f = |name: &str, ty: LogicalType| Field { name: name.into(), table: table.clone(), ty };
    vec![
        f("query_id", LogicalType::Int),
        f("sql", LogicalType::Text),
        f("units_done", LogicalType::Int),
        f("units_total", LogicalType::Int),
        f("fraction", LogicalType::Float),
        f("finished", LogicalType::Bool),
    ]
}

/// Snapshot of the progress registry, oldest first, shaped for
/// [`progress_fields`].
pub fn progress_rows() -> Vec<Vec<Value>> {
    mduck_obs::progress_snapshot()
        .into_iter()
        .map(|p| {
            vec![
                Value::Int(p.id as i64),
                Value::Text(p.sql.into()),
                Value::Int(p.units_done as i64),
                Value::Int(p.units_total as i64),
                Value::Float(p.fraction),
                Value::Bool(p.finished),
            ]
        })
        .collect()
}

/// Schema of the `mduck_query_log()` table function: one row per logged
/// statement, identical on both engines.
pub fn query_log_fields(alias: &str) -> Vec<Field> {
    let table = Some(alias.to_string());
    let f = |name: &str, ty: LogicalType| Field { name: name.into(), table: table.clone(), ty };
    vec![
        f("query_id", LogicalType::Int),
        f("engine", LogicalType::Text),
        f("sql", LogicalType::Text),
        f("duration_ms", LogicalType::Float),
        f("rows_returned", LogicalType::Int),
        f("rows_scanned", LogicalType::Int),
        f("guard_trip", LogicalType::Text),
        f("mem_peak", LogicalType::Int),
        f("threads", LogicalType::Int),
        f("error", LogicalType::Text),
        f("profile", LogicalType::Text),
    ]
}

/// Snapshot of the query-log history, oldest first, shaped for
/// [`query_log_fields`].
pub fn query_log_rows() -> Vec<Vec<Value>> {
    mduck_obs::query_log_snapshot()
        .into_iter()
        .map(|r| {
            vec![
                Value::Int(r.id as i64),
                Value::Text(r.engine.into()),
                Value::Text(r.sql.into()),
                Value::Float(r.duration_us as f64 / 1000.0),
                Value::Int(r.rows_returned as i64),
                Value::Int(r.rows_scanned as i64),
                r.guard_trip.map(Value::text).unwrap_or(Value::Null),
                Value::Int(r.mem_peak as i64),
                Value::Int(r.threads as i64),
                r.error.map(|e| Value::text(&e)).unwrap_or(Value::Null),
                r.profile.map(|p| Value::text(&p)).unwrap_or(Value::Null),
            ]
        })
        .collect()
}

fn status_result(status: &str) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "status".into(),
        table: None,
        ty: LogicalType::Text,
    }]);
    (schema, vec![vec![Value::Text(status.into())]])
}

/// Result of `PRAGMA threads [= N]`: one row with the thread count the
/// engine will actually use. Shared so both engines answer with the
/// identical schema (the row engine always reports 1).
pub fn threads_result(effective: usize) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "threads".into(),
        table: None,
        ty: LogicalType::Int,
    }]);
    (schema, vec![vec![Value::Int(effective as i64)]])
}

/// Result of `PRAGMA memory_limit [= ...]`: the limit now in force,
/// rendered the way the pragma accepts it (`8MB`, `unlimited`). Shared so
/// both engines answer with the identical schema.
pub fn memory_limit_result(limit: Option<u64>) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "memory_limit".into(),
        table: None,
        ty: LogicalType::Text,
    }]);
    let rendered = match limit {
        Some(bytes) => mduck_obs::format_bytes(bytes),
        None => "unlimited".to_string(),
    };
    (schema, vec![vec![Value::text(&rendered)]])
}

/// Result of `PRAGMA wal [= 'path']`: one row with the attached WAL
/// path, or `off` for the in-memory default. Shared so both engines
/// answer with the identical schema.
pub fn wal_result(path: Option<String>) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "wal".into(),
        table: None,
        ty: LogicalType::Text,
    }]);
    let shown = path.unwrap_or_else(|| "off".into());
    (schema, vec![vec![Value::text(&shown)]])
}

/// Result of `PRAGMA wal_autocheckpoint [= bytes]`: the WAL size (in
/// bytes) past which the engine checkpoints automatically; 0 means
/// disabled (or no WAL attached).
pub fn wal_autocheckpoint_result(bytes: u64) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "wal_autocheckpoint".into(),
        table: None,
        ty: LogicalType::Int,
    }]);
    (schema, vec![vec![Value::Int(bytes as i64)]])
}

/// Result of the `CHECKPOINT` statement: whether a checkpoint actually
/// ran (`ok`) or the database had no WAL attached (`no wal`).
pub fn checkpoint_result(ran: bool) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "checkpoint".into(),
        table: None,
        ty: LogicalType::Text,
    }]);
    let status = if ran { "ok" } else { "no wal" };
    (schema, vec![vec![Value::text(status)]])
}

/// Parse the value of `PRAGMA memory_limit = ...`: a byte count, a human
/// size string (`'8MB'`), or `'unlimited'` / `'none'` / `0` to clear.
pub fn parse_memory_limit(value: &PragmaValue) -> SqlResult<Option<u64>> {
    match value {
        PragmaValue::Int(n) if *n <= 0 => Ok(None),
        PragmaValue::Int(n) => Ok(Some(*n as u64)),
        PragmaValue::Str(s) => {
            let lower = s.trim().to_ascii_lowercase();
            if lower.is_empty() || lower == "unlimited" || lower == "none" {
                return Ok(None);
            }
            match mduck_obs::parse_bytes(s) {
                Some(0) => Ok(None),
                Some(bytes) => Ok(Some(bytes)),
                None => Err(SqlError::Parse(format!(
                    "invalid memory_limit {s:?} (expected e.g. '8MB', '512KB', a byte \
                     count, or 'unlimited')"
                ))),
            }
        }
    }
}

/// Resolve a `PRAGMA <name> [= value]` statement. Returns `None` for
/// unknown names so the calling engine can produce its own error message
/// (per-database settings — `threads`, `memory_limit` — are also the
/// engine's job; everything here is process-global).
pub fn pragma(
    name: &str,
    value: Option<&PragmaValue>,
) -> SqlResult<Option<(Schema, Vec<Vec<Value>>)>> {
    match name {
        "metrics" => Ok(Some((metrics_schema(), metrics_rows()))),
        "reset_metrics" => {
            mduck_obs::metrics().reset();
            Ok(Some(status_result("metrics reset")))
        }
        "reset_spans" => {
            mduck_obs::reset_spans();
            Ok(Some(status_result("spans reset")))
        }
        "reset_query_log" => {
            mduck_obs::reset_query_log();
            Ok(Some(status_result("query log reset")))
        }
        "reset_progress" => {
            mduck_obs::reset_progress();
            Ok(Some(status_result("progress registry reset")))
        }
        // `PRAGMA query_log='q.jsonl'` points the JSONL sink;
        // `= 'off'` / `= ''` disables it; bare `PRAGMA query_log`
        // reports the active path.
        "query_log" => {
            if let Some(v) = value {
                let path = match v {
                    PragmaValue::Str(s) => s.clone(),
                    PragmaValue::Int(n) => {
                        return Err(SqlError::Parse(format!(
                            "PRAGMA query_log expects a path string, got {n}"
                        )))
                    }
                };
                let arg = match path.trim().to_ascii_lowercase().as_str() {
                    "" | "off" | "none" => None,
                    _ => Some(path.as_str()),
                };
                mduck_obs::set_query_log_sink(arg).map_err(|e| {
                    SqlError::execution(format!("cannot open query log {path:?}: {e}"))
                })?;
            }
            let schema = Schema::new(vec![Field {
                name: "query_log".into(),
                table: None,
                ty: LogicalType::Text,
            }]);
            let shown = mduck_obs::query_log_sink_path().unwrap_or_else(|| "off".into());
            Ok(Some((schema, vec![vec![Value::text(&shown)]])))
        }
        // Statements at least this slow attach their EXPLAIN ANALYZE
        // profile to the query log.
        "slow_query_ms" => {
            if let Some(v) = value {
                match v.as_int() {
                    Some(ms) if ms >= 0 => mduck_obs::set_slow_threshold_ms(ms as u64),
                    _ => {
                        return Err(SqlError::Parse(
                            "PRAGMA slow_query_ms expects a non-negative integer".into(),
                        ))
                    }
                }
            }
            let schema = Schema::new(vec![Field {
                name: "slow_query_ms".into(),
                table: None,
                ty: LogicalType::Int,
            }]);
            Ok(Some((schema, vec![vec![Value::Int(mduck_obs::slow_threshold_ms() as i64)]])))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_rows_match_schema() {
        let schema = metrics_schema();
        let rows = metrics_rows();
        assert!(!rows.is_empty());
        for row in &rows {
            assert_eq!(row.len(), schema.fields.len());
            assert!(matches!(row[0], Value::Text(_)));
            assert!(matches!(row[2], Value::Int(_)));
        }
    }

    #[test]
    fn span_rows_match_fields() {
        let _s = mduck_obs::span("introspect.test_span");
        drop(_s);
        let fields = span_fields("s");
        let rows = span_rows();
        assert!(rows.iter().all(|r| r.len() == fields.len()));
        assert!(rows.iter().any(|r| r[2] == Value::Text("introspect.test_span".into())));
    }

    #[test]
    fn pragma_dispatch() {
        assert!(pragma("metrics", None).unwrap().is_some());
        assert!(pragma("reset_spans", None).unwrap().is_some());
        assert!(pragma("reset_query_log", None).unwrap().is_some());
        assert!(pragma("reset_progress", None).unwrap().is_some());
        assert!(pragma("no_such_pragma", None).unwrap().is_none());
        assert!(pragma("slow_query_ms", Some(&PragmaValue::Int(-1))).is_err());
        assert!(pragma("query_log", Some(&PragmaValue::Int(1))).is_err());
    }

    #[test]
    fn progress_and_query_log_rows_match_fields() {
        let p = mduck_obs::QueryProgress::begin("SELECT introspect_progress");
        p.add_total(4);
        p.add_done(4);
        p.finish();
        let fields = progress_fields("p");
        let rows = progress_rows();
        assert!(rows.iter().all(|r| r.len() == fields.len()));
        assert!(rows
            .iter()
            .any(|r| r[1] == Value::text("SELECT introspect_progress")));

        mduck_obs::log_query(mduck_obs::QueryLogRecord {
            id: mduck_obs::next_query_id(),
            engine: "vecdb",
            sql: "SELECT introspect_log".into(),
            duration_us: 1500,
            rows_returned: 1,
            rows_scanned: 2,
            guard_trip: Some("memory"),
            mem_peak: 64,
            threads: 1,
            error: None,
            profile: None,
        });
        let fields = query_log_fields("q");
        let rows = query_log_rows();
        assert!(rows.iter().all(|r| r.len() == fields.len()));
        let row = rows
            .iter()
            .find(|r| r[2] == Value::text("SELECT introspect_log"))
            .unwrap();
        assert_eq!(row[3], Value::Float(1.5));
        assert_eq!(row[6], Value::text("memory"));
        assert_eq!(row[9], Value::Null);
    }

    #[test]
    fn memory_limit_parsing_and_rendering() {
        assert_eq!(parse_memory_limit(&PragmaValue::Str("8MB".into())).unwrap(), Some(8 << 20));
        assert_eq!(parse_memory_limit(&PragmaValue::Int(4096)).unwrap(), Some(4096));
        assert_eq!(parse_memory_limit(&PragmaValue::Int(0)).unwrap(), None);
        assert_eq!(parse_memory_limit(&PragmaValue::Int(-1)).unwrap(), None);
        assert_eq!(parse_memory_limit(&PragmaValue::Str("unlimited".into())).unwrap(), None);
        assert!(parse_memory_limit(&PragmaValue::Str("lots".into())).is_err());
        let (schema, rows) = memory_limit_result(Some(8 << 20));
        assert_eq!(schema.fields[0].name, "memory_limit");
        assert_eq!(rows[0][0], Value::text("8MB"));
        let (_, rows) = memory_limit_result(None);
        assert_eq!(rows[0][0], Value::text("unlimited"));
    }
}
