//! SQL-surfaced introspection shared by both engines.
//!
//! Two surfaces, deliberately engine-agnostic so `PRAGMA metrics` returns
//! the exact same schema from the vectorized and the row engine:
//!
//! * [`pragma`] — resolves `PRAGMA <name>` statements (`metrics`,
//!   `reset_metrics`, `reset_spans`) into a `(Schema, rows)` pair, or
//!   `None` for names this module does not know (the engine reports the
//!   error so it can mention its own name).
//! * [`span_fields`]/[`span_rows`] — the schema and snapshot rows of the
//!   `mduck_spans()` table function backed by the tracing ring buffer.

use crate::bound::{Field, Schema};
use crate::error::SqlResult;
use crate::value::{LogicalType, Value};

/// Schema of `PRAGMA metrics`: one row per registered metric.
pub fn metrics_schema() -> Schema {
    Schema::new(vec![
        Field { name: "name".into(), table: None, ty: LogicalType::Text },
        Field { name: "kind".into(), table: None, ty: LogicalType::Text },
        Field { name: "value".into(), table: None, ty: LogicalType::Int },
        Field { name: "detail".into(), table: None, ty: LogicalType::Text },
    ])
}

/// One row per metric in the global registry, in declaration order.
pub fn metrics_rows() -> Vec<Vec<Value>> {
    mduck_obs::metrics()
        .snapshot()
        .into_iter()
        .map(|m| {
            vec![
                Value::Text(m.name.into()),
                Value::Text(m.kind.into()),
                Value::Int(m.value),
                Value::Text(m.detail.into()),
            ]
        })
        .collect()
}

/// Schema of the `mduck_spans()` table function, columns qualified by the
/// binder-assigned alias.
pub fn span_fields(alias: &str) -> Vec<Field> {
    let table = Some(alias.to_string());
    let f = |name: &str, ty: LogicalType| Field { name: name.into(), table: table.clone(), ty };
    vec![
        f("span_id", LogicalType::Int),
        f("parent_id", LogicalType::Int),
        f("name", LogicalType::Text),
        f("depth", LogicalType::Int),
        f("start_us", LogicalType::Int),
        f("duration_us", LogicalType::Int),
        f("thread", LogicalType::Text),
    ]
}

/// Snapshot of the finished-span ring buffer, oldest first, shaped for
/// [`span_fields`].
pub fn span_rows() -> Vec<Vec<Value>> {
    mduck_obs::spans_snapshot()
        .into_iter()
        .map(|s| {
            vec![
                Value::Int(s.id as i64),
                s.parent.map(|p| Value::Int(p as i64)).unwrap_or(Value::Null),
                Value::Text(s.name.into()),
                Value::Int(s.depth as i64),
                Value::Int(s.start_us as i64),
                Value::Int(s.duration_us as i64),
                Value::Text(s.thread.into()),
            ]
        })
        .collect()
}

fn status_result(status: &str) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "status".into(),
        table: None,
        ty: LogicalType::Text,
    }]);
    (schema, vec![vec![Value::Text(status.into())]])
}

/// Result of `PRAGMA threads [= N]`: one row with the thread count the
/// engine will actually use. Shared so both engines answer with the
/// identical schema (the row engine always reports 1).
pub fn threads_result(effective: usize) -> (Schema, Vec<Vec<Value>>) {
    let schema = Schema::new(vec![Field {
        name: "threads".into(),
        table: None,
        ty: LogicalType::Int,
    }]);
    (schema, vec![vec![Value::Int(effective as i64)]])
}

/// Resolve a `PRAGMA <name>` statement. Returns `None` for unknown names
/// so the calling engine can produce its own error message.
pub fn pragma(name: &str) -> SqlResult<Option<(Schema, Vec<Vec<Value>>)>> {
    match name {
        "metrics" => Ok(Some((metrics_schema(), metrics_rows()))),
        "reset_metrics" => {
            mduck_obs::metrics().reset();
            Ok(Some(status_result("metrics reset")))
        }
        "reset_spans" => {
            mduck_obs::reset_spans();
            Ok(Some(status_result("spans reset")))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_rows_match_schema() {
        let schema = metrics_schema();
        let rows = metrics_rows();
        assert!(!rows.is_empty());
        for row in &rows {
            assert_eq!(row.len(), schema.fields.len());
            assert!(matches!(row[0], Value::Text(_)));
            assert!(matches!(row[2], Value::Int(_)));
        }
    }

    #[test]
    fn span_rows_match_fields() {
        let _s = mduck_obs::span("introspect.test_span");
        drop(_s);
        let fields = span_fields("s");
        let rows = span_rows();
        assert!(rows.iter().all(|r| r.len() == fields.len()));
        assert!(rows.iter().any(|r| r[2] == Value::Text("introspect.test_span".into())));
    }

    #[test]
    fn pragma_dispatch() {
        assert!(pragma("metrics").unwrap().is_some());
        assert!(pragma("reset_spans").unwrap().is_some());
        assert!(pragma("no_such_pragma").unwrap().is_none());
    }
}
