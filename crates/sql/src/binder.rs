//! The binder: AST → [`BoundSelect`], resolving names against a catalog,
//! functions/operators/casts against a [`Registry`], and correlated
//! references against enclosing scopes.

use std::sync::Arc;

use crate::ast::{
    BinaryOp, Cte, Expr, InsertSource, SelectItem, SelectStmt, TableRef, UnaryOp,
};
use crate::bound::{
    BoundAggregate, BoundCte, BoundExpr, BoundFrom, BoundOrder, BoundSelect, Catalog, Field,
    Schema, SortKey,
};
use crate::error::{SqlError, SqlResult};
use crate::registry::Registry;
use crate::value::{LogicalType, Value};

/// Visible CTE during binding.
#[derive(Clone)]
struct CteInfo {
    name: String,
    global_index: usize,
    schema: Schema,
}

/// Binding context threaded through a statement.
pub struct Binder<'a> {
    pub catalog: &'a dyn Catalog,
    pub registry: &'a Registry,
    cte_visible: Vec<CteInfo>,
    next_cte: usize,
    /// Scope stack for correlated subqueries, innermost last.
    outer: Vec<Schema>,
    /// ON conditions collected while flattening explicit JOINs.
    pending_join_filters: Vec<Expr>,
}

impl<'a> Binder<'a> {
    pub fn new(catalog: &'a dyn Catalog, registry: &'a Registry) -> Self {
        Binder {
            catalog,
            registry,
            cte_visible: Vec::new(),
            next_cte: 0,
            outer: Vec::new(),
            pending_join_filters: Vec::new(),
        }
    }

    /// Total number of CTE slots allocated while binding (the execution
    /// context sizes its materialization array by this).
    pub fn cte_slots(&self) -> usize {
        self.next_cte
    }

    /// Bind a full SELECT statement.
    pub fn bind_select(&mut self, stmt: &SelectStmt) -> SqlResult<BoundSelect> {
        // ---- CTEs
        let mut bound_ctes = Vec::new();
        let visible_before = self.cte_visible.len();
        for cte in &stmt.ctes {
            let plan = self.bind_cte(cte)?;
            bound_ctes.push(plan);
        }

        // ---- FROM
        let mut from = Vec::new();
        for item in &stmt.from {
            self.bind_table_ref(item, &mut from)?;
        }
        let mut input_schema = Schema::default();
        for f in &from {
            input_schema = input_schema.concat(f.schema());
        }
        // Join ON conditions flattened by bind_table_ref are appended to
        // WHERE below via self.pending_join_filters.
        let mut filters: Vec<Expr> = std::mem::take(&mut self.pending_join_filters);
        if let Some(w) = &stmt.where_clause {
            filters.push(w.clone());
        }

        // ---- WHERE
        let filter = if filters.is_empty() {
            None
        } else {
            let combined = filters
                .into_iter()
                .reduce(|a, b| Expr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(a),
                    right: Box::new(b),
                })
                .unwrap();
            Some(self.bind_expr(&combined, &input_schema)?)
        };

        // ---- expand wildcards
        let mut projection_exprs: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard { table } => {
                    let table = table.as_ref().map(|t| t.to_ascii_lowercase());
                    let mut any = false;
                    for f in &input_schema.fields {
                        if table.is_none() || f.table.as_deref() == table.as_deref() {
                            any = true;
                            projection_exprs.push((
                                Expr::Column { table: f.table.clone(), name: f.name.clone() },
                                Some(f.name.clone()),
                            ));
                        }
                    }
                    if !any {
                        return Err(SqlError::Bind(format!(
                            "wildcard {}.* matches nothing",
                            table.unwrap_or_default()
                        )));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    projection_exprs.push((expr.clone(), alias.clone()))
                }
            }
        }

        // ---- aggregation detection
        let has_agg = !stmt.group_by.is_empty()
            || projection_exprs.iter().any(|(e, _)| contains_aggregate(e, self.registry))
            || stmt
                .having
                .as_ref()
                .is_some_and(|e| contains_aggregate(e, self.registry));

        let (env_schema, group_by, aggregates, projections, having) = if has_agg {
            self.bind_aggregated(
                &stmt.group_by,
                &projection_exprs,
                stmt.having.as_ref(),
                &input_schema,
            )?
        } else {
            let mut projections = Vec::new();
            for (e, _) in &projection_exprs {
                projections.push(self.bind_expr(e, &input_schema)?);
            }
            let having = match &stmt.having {
                Some(h) => Some(self.bind_expr(h, &input_schema)?),
                None => None,
            };
            (input_schema.clone(), Vec::new(), Vec::new(), projections, having)
        };

        // ---- output schema
        let mut output_fields = Vec::new();
        for ((expr, alias), bound) in projection_exprs.iter().zip(&projections) {
            let name = alias
                .as_ref()
                .map(|a| a.to_ascii_lowercase())
                .unwrap_or_else(|| derive_name(expr));
            output_fields.push(Field { name, table: None, ty: bound.ty() });
        }
        let output_schema = Schema::new(output_fields);

        // ---- ORDER BY
        let mut order_by = Vec::new();
        for item in &stmt.order_by {
            let key = match &item.expr {
                Expr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= output_schema.len() => {
                    SortKey::Output(*n as usize - 1)
                }
                Expr::Column { table: None, name } => {
                    let lname = name.to_ascii_lowercase();
                    match output_schema.resolve(None, &lname) {
                        Ok(i) => SortKey::Output(i),
                        Err(_) => SortKey::Input(self.bind_expr(&item.expr, &env_schema)?),
                    }
                }
                other => {
                    // Prefer an exact match against a projection.
                    let pos = projection_exprs
                        .iter()
                        .position(|(e, _)| normalize_expr(e) == normalize_expr(other));
                    match pos {
                        Some(i) => SortKey::Output(i),
                        None => SortKey::Input(self.bind_expr(other, &env_schema)?),
                    }
                }
            };
            order_by.push(BoundOrder { key, asc: item.asc });
        }

        // Restore CTE visibility.
        self.cte_visible.truncate(visible_before);

        Ok(BoundSelect {
            ctes: bound_ctes,
            from,
            filter,
            aggregated: has_agg,
            group_by,
            aggregates,
            having,
            projections,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
            offset: stmt.offset,
            input_schema,
            env_schema,
            output_schema,
        })
    }

    fn bind_cte(&mut self, cte: &Cte) -> SqlResult<BoundCte> {
        let plan = self.bind_select(&cte.query)?;
        let mut schema = plan.output_schema.clone();
        if !cte.column_aliases.is_empty() {
            if cte.column_aliases.len() != schema.len() {
                return Err(SqlError::Bind(format!(
                    "CTE {} declares {} columns but produces {}",
                    cte.name,
                    cte.column_aliases.len(),
                    schema.len()
                )));
            }
            for (f, a) in schema.fields.iter_mut().zip(&cte.column_aliases) {
                f.name = a.to_ascii_lowercase();
            }
        }
        let global_index = self.next_cte;
        self.next_cte += 1;
        self.cte_visible.push(CteInfo {
            name: cte.name.to_ascii_lowercase(),
            global_index,
            schema,
        });
        Ok(BoundCte { name: cte.name.to_ascii_lowercase(), index: global_index, plan })
    }

    fn bind_table_ref(&mut self, item: &TableRef, out: &mut Vec<BoundFrom>) -> SqlResult<()> {
        match item {
            TableRef::Table { name, alias } => {
                let lname = name.to_ascii_lowercase();
                let alias = alias
                    .as_ref()
                    .map(|a| a.to_ascii_lowercase())
                    .unwrap_or_else(|| lname.clone());
                // CTE reference?
                if let Some(info) =
                    self.cte_visible.iter().rev().find(|c| c.name == lname).cloned()
                {
                    let mut schema = info.schema.clone();
                    for f in &mut schema.fields {
                        f.table = Some(alias.clone());
                    }
                    out.push(BoundFrom::Cte { index: info.global_index, alias, schema });
                    return Ok(());
                }
                let cols = self.catalog.table_schema(&lname).ok_or_else(|| {
                    SqlError::Catalog(format!("table {name:?} does not exist"))
                })?;
                let schema = Schema::new(
                    cols.into_iter()
                        .map(|(n, ty)| Field {
                            name: n.to_ascii_lowercase(),
                            table: Some(alias.clone()),
                            ty,
                        })
                        .collect(),
                );
                out.push(BoundFrom::Table { name: lname, alias, schema });
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.bind_select(query)?;
                let alias = alias.to_ascii_lowercase();
                let mut schema = plan.output_schema.clone();
                for f in &mut schema.fields {
                    f.table = Some(alias.clone());
                }
                out.push(BoundFrom::Subquery { plan: Box::new(plan), alias, schema });
                Ok(())
            }
            TableRef::Function { name, args, alias, column_aliases } => {
                let lname = name.to_ascii_lowercase();
                // Zero-argument introspection table functions share one
                // shape: alias-qualified fields from `introspect`.
                if let Some(fields_fn) = introspection_fn(&lname) {
                    if !args.is_empty() {
                        return Err(SqlError::Bind(format!("{lname} takes no arguments")));
                    }
                    let alias = alias
                        .as_ref()
                        .map(|a| a.to_ascii_lowercase())
                        .unwrap_or_else(|| lname.clone());
                    let schema = Schema::new(fields_fn(&alias));
                    out.push(match lname.as_str() {
                        "mduck_spans" => BoundFrom::Spans { alias, schema },
                        "mduck_progress" => BoundFrom::Progress { alias, schema },
                        _ => BoundFrom::QueryLog { alias, schema },
                    });
                    return Ok(());
                }
                if lname != "generate_series" && lname != "range" {
                    return Err(SqlError::Bind(format!("unknown table function {name:?}")));
                }
                if args.is_empty() || args.len() > 3 {
                    return Err(SqlError::Bind("generate_series takes 1-3 arguments".into()));
                }
                let empty = Schema::default();
                let bound_args: SqlResult<Vec<BoundExpr>> =
                    args.iter().map(|a| self.bind_expr(a, &empty)).collect();
                let alias = alias
                    .as_ref()
                    .map(|a| a.to_ascii_lowercase())
                    .unwrap_or_else(|| lname.clone());
                let col_name = column_aliases
                    .first()
                    .map(|c| c.to_ascii_lowercase())
                    .unwrap_or_else(|| lname.clone());
                let schema = Schema::new(vec![Field {
                    name: col_name,
                    table: Some(alias.clone()),
                    ty: LogicalType::Int,
                }]);
                out.push(BoundFrom::Series { args: bound_args?, alias, schema });
                Ok(())
            }
            TableRef::Join { left, right, on } => {
                self.bind_table_ref(left, out)?;
                self.bind_table_ref(right, out)?;
                self.pending_join_filters.push(on.clone());
                Ok(())
            }
        }
    }

    // -------------------------------------------------------- aggregation

    #[allow(clippy::type_complexity)]
    fn bind_aggregated(
        &mut self,
        group_by: &[Expr],
        projections: &[(Expr, Option<String>)],
        having: Option<&Expr>,
        input: &Schema,
    ) -> SqlResult<(Schema, Vec<BoundExpr>, Vec<BoundAggregate>, Vec<BoundExpr>, Option<BoundExpr>)>
    {
        let bound_groups: SqlResult<Vec<BoundExpr>> =
            group_by.iter().map(|g| self.bind_expr(g, input)).collect();
        let bound_groups = bound_groups?;
        let norm_groups: Vec<Expr> = group_by.iter().map(normalize_expr).collect();

        // Environment fields: group keys first.
        let mut env_fields: Vec<Field> = Vec::new();
        for (g, bg) in group_by.iter().zip(&bound_groups) {
            let (name, table) = match g {
                Expr::Column { table, name } => (
                    name.to_ascii_lowercase(),
                    table.as_ref().map(|t| t.to_ascii_lowercase()),
                ),
                other => (derive_name(other), None),
            };
            env_fields.push(Field { name, table, ty: bg.ty() });
        }

        let mut aggregates: Vec<BoundAggregate> = Vec::new();
        let mut proj_bound = Vec::new();
        for (e, _) in projections {
            proj_bound.push(self.bind_agg_expr(
                e,
                input,
                &norm_groups,
                &mut aggregates,
                &env_fields,
            )?);
        }
        let having_bound = match having {
            Some(h) => Some(self.bind_agg_expr(
                h,
                input,
                &norm_groups,
                &mut aggregates,
                &env_fields,
            )?),
            None => None,
        };
        let mut env_schema_fields = env_fields;
        for a in &aggregates {
            env_schema_fields.push(Field { name: a.name.clone(), table: None, ty: a.ty.clone() });
        }
        Ok((
            Schema::new(env_schema_fields),
            bound_groups,
            aggregates,
            proj_bound,
            having_bound,
        ))
    }

    /// Bind an expression in an aggregated query: group-key subexpressions
    /// become env column refs, aggregate calls are extracted.
    fn bind_agg_expr(
        &mut self,
        e: &Expr,
        input: &Schema,
        norm_groups: &[Expr],
        aggregates: &mut Vec<BoundAggregate>,
        env_fields: &[Field],
    ) -> SqlResult<BoundExpr> {
        // Group key match?
        let norm = normalize_expr(e);
        if let Some(i) = norm_groups.iter().position(|g| *g == norm) {
            return Ok(BoundExpr::ColumnRef { index: i, ty: env_fields[i].ty.clone() });
        }
        match e {
            Expr::CountStar => {
                let idx = self.push_aggregate(aggregates, "count", &[], false, input, norm_groups)?;
                Ok(BoundExpr::ColumnRef {
                    index: norm_groups.len() + idx,
                    ty: LogicalType::Int,
                })
            }
            Expr::Func { name, args, distinct }
                if self.registry.is_aggregate(name) =>
            {
                let idx =
                    self.push_aggregate(aggregates, name, args, *distinct, input, norm_groups)?;
                Ok(BoundExpr::ColumnRef {
                    index: norm_groups.len() + idx,
                    ty: aggregates[idx].ty.clone(),
                })
            }
            Expr::Column { table, name } => {
                // Not a group key: also try resolving against env fields by
                // name (e.g. GROUP BY listed a column that the projection
                // references unqualified).
                let lname = name.to_ascii_lowercase();
                let ltable = table.as_ref().map(|t| t.to_ascii_lowercase());
                for (i, f) in env_fields.iter().enumerate() {
                    if f.name == lname
                        && (ltable.is_none() || f.table.as_deref() == ltable.as_deref())
                    {
                        return Ok(BoundExpr::ColumnRef { index: i, ty: f.ty.clone() });
                    }
                }
                Err(SqlError::Bind(format!(
                    "column {} must appear in GROUP BY or inside an aggregate",
                    name
                )))
            }
            // Recurse structurally for everything else.
            Expr::Binary { op, left, right } => {
                let l = self.bind_agg_expr(left, input, norm_groups, aggregates, env_fields)?;
                let r = self.bind_agg_expr(right, input, norm_groups, aggregates, env_fields)?;
                self.finish_binary(*op, l, r)
            }
            Expr::CustomOp { op, left, right } => {
                let l = self.bind_agg_expr(left, input, norm_groups, aggregates, env_fields)?;
                let r = self.bind_agg_expr(right, input, norm_groups, aggregates, env_fields)?;
                self.resolve_call(op, vec![l, r])
            }
            Expr::Unary { op, expr } => {
                let inner = self.bind_agg_expr(expr, input, norm_groups, aggregates, env_fields)?;
                self.finish_unary(*op, inner)
            }
            Expr::Func { name, args, .. } => {
                let mut bound = Vec::new();
                for a in args {
                    bound.push(self.bind_agg_expr(a, input, norm_groups, aggregates, env_fields)?);
                }
                self.resolve_call(name, bound)
            }
            Expr::Cast { expr, type_name } => {
                let inner = self.bind_agg_expr(expr, input, norm_groups, aggregates, env_fields)?;
                self.finish_cast(inner, type_name)
            }
            Expr::IsNull { expr, negated } => {
                let inner = self.bind_agg_expr(expr, input, norm_groups, aggregates, env_fields)?;
                Ok(BoundExpr::IsNull { expr: Box::new(inner), negated: *negated })
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::TypedLiteral { type_name, text } => self.bind_typed_literal(type_name, text),
            other => Err(SqlError::Bind(format!(
                "unsupported expression in aggregated context: {other:?}"
            ))),
        }
    }

    fn push_aggregate(
        &mut self,
        aggregates: &mut Vec<BoundAggregate>,
        name: &str,
        args: &[Expr],
        distinct: bool,
        input: &Schema,
        _norm_groups: &[Expr],
    ) -> SqlResult<usize> {
        let mut bound_args = Vec::new();
        for a in args {
            bound_args.push(self.bind_expr(a, input)?);
        }
        let arg_types: Vec<LogicalType> = bound_args.iter().map(BoundExpr::ty).collect();
        let (ret, factory) = if name.eq_ignore_ascii_case("count") && args.is_empty() {
            let sig = self.registry.resolve_aggregate("count", &[LogicalType::Any])?;
            (LogicalType::Int, sig.factory.clone())
        } else {
            let sig = self.registry.resolve_aggregate(name, &arg_types)?;
            let ret = if sig.ret == LogicalType::Any {
                arg_types.first().cloned().unwrap_or(LogicalType::Null)
            } else {
                sig.ret.clone()
            };
            (ret, sig.factory.clone())
        };
        aggregates.push(BoundAggregate {
            name: name.to_ascii_lowercase(),
            args: bound_args,
            distinct,
            ty: ret,
            factory,
        });
        Ok(aggregates.len() - 1)
    }

    // -------------------------------------------------------- expressions

    /// Bind an expression against `schema` (the current scope).
    pub fn bind_expr(&mut self, e: &Expr, schema: &Schema) -> SqlResult<BoundExpr> {
        match e {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::TypedLiteral { type_name, text } => self.bind_typed_literal(type_name, text),
            Expr::Column { table, name } => {
                let lname = name.to_ascii_lowercase();
                let ltable = table.as_ref().map(|t| t.to_ascii_lowercase());
                match schema.resolve(ltable.as_deref(), &lname) {
                    Ok(i) => Ok(BoundExpr::ColumnRef {
                        index: i,
                        ty: schema.fields[i].ty.clone(),
                    }),
                    Err(true) => Err(SqlError::Bind(format!("ambiguous column {name:?}"))),
                    Err(false) => {
                        // Walk outer scopes, innermost first.
                        for (d, outer_schema) in self.outer.iter().rev().enumerate() {
                            if let Ok(i) = outer_schema.resolve(ltable.as_deref(), &lname) {
                                return Ok(BoundExpr::OuterRef {
                                    depth: d + 1,
                                    index: i,
                                    ty: outer_schema.fields[i].ty.clone(),
                                });
                            }
                        }
                        Err(SqlError::Bind(format!("unknown column {:?}", quality_name(table, name))))
                    }
                }
            }
            Expr::Unary { op, expr } => {
                let inner = self.bind_expr(expr, schema)?;
                self.finish_unary(*op, inner)
            }
            Expr::Binary { op, left, right } => {
                let l = self.bind_expr(left, schema)?;
                let r = self.bind_expr(right, schema)?;
                self.finish_binary(*op, l, r)
            }
            Expr::CustomOp { op, left, right } => {
                let l = self.bind_expr(left, schema)?;
                let r = self.bind_expr(right, schema)?;
                self.resolve_call(op, vec![l, r])
            }
            Expr::Func { name, args, .. } => {
                if self.registry.is_aggregate(name) {
                    return Err(SqlError::Bind(format!(
                        "aggregate {name:?} is not allowed here"
                    )));
                }
                let mut bound = Vec::new();
                for a in args {
                    bound.push(self.bind_expr(a, schema)?);
                }
                self.resolve_call(name, bound)
            }
            Expr::CountStar => Err(SqlError::Bind("count(*) is not allowed here".into())),
            Expr::Cast { expr, type_name } => {
                let inner = self.bind_expr(expr, schema)?;
                self.finish_cast(inner, type_name)
            }
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, schema)?),
                negated: *negated,
            }),
            Expr::InList { expr, list, negated } => {
                let e = self.bind_expr(expr, schema)?;
                let l: SqlResult<Vec<BoundExpr>> =
                    list.iter().map(|x| self.bind_expr(x, schema)).collect();
                Ok(BoundExpr::InList { expr: Box::new(e), list: l?, negated: *negated })
            }
            Expr::Case { operand, branches, else_expr } => {
                let operand = match operand {
                    Some(o) => Some(Box::new(self.bind_expr(o, schema)?)),
                    None => None,
                };
                let mut bs = Vec::new();
                let mut ty = LogicalType::Null;
                for (c, v) in branches {
                    let bc = self.bind_expr(c, schema)?;
                    let bv = self.bind_expr(v, schema)?;
                    if ty == LogicalType::Null {
                        ty = bv.ty();
                    }
                    bs.push((bc, bv));
                }
                let else_expr = match else_expr {
                    Some(e) => {
                        let b = self.bind_expr(e, schema)?;
                        if ty == LogicalType::Null {
                            ty = b.ty();
                        }
                        Some(Box::new(b))
                    }
                    None => None,
                };
                Ok(BoundExpr::Case { operand, branches: bs, else_expr, ty })
            }
            Expr::Subquery(q) => {
                self.outer.push(schema.clone());
                let plan = self.bind_select(q);
                self.outer.pop();
                let plan = plan?;
                if plan.output_schema.len() != 1 {
                    return Err(SqlError::Bind("scalar subquery must return one column".into()));
                }
                let ty = plan.output_schema.fields[0].ty.clone();
                Ok(BoundExpr::ScalarSubquery { plan: Box::new(plan), ty })
            }
            Expr::Quantified { left, op, all, query } => {
                let l = self.bind_expr(left, schema)?;
                self.outer.push(schema.clone());
                let plan = self.bind_select(query);
                self.outer.pop();
                let plan = plan?;
                if plan.output_schema.len() != 1 {
                    return Err(SqlError::Bind(
                        "quantified subquery must return one column".into(),
                    ));
                }
                Ok(BoundExpr::Quantified {
                    op: *op,
                    all: *all,
                    left: Box::new(l),
                    plan: Box::new(plan),
                })
            }
            Expr::Exists { query, negated } => {
                self.outer.push(schema.clone());
                let plan = self.bind_select(query);
                self.outer.pop();
                Ok(BoundExpr::Exists { plan: Box::new(plan?), negated: *negated })
            }
        }
    }

    fn bind_typed_literal(&mut self, type_name: &str, text: &str) -> SqlResult<BoundExpr> {
        let ty = self.registry.resolve_type(type_name)?;
        if ty == LogicalType::Text {
            return Ok(BoundExpr::Literal(Value::text(text)));
        }
        let cast = self
            .registry
            .resolve_cast(&LogicalType::Text, &ty)
            .ok_or_else(|| {
                SqlError::Bind(format!("no cast from VARCHAR to {}", ty.name()))
            })?;
        // Typed literals fold at bind time: the text is parsed once.
        let v = cast(&[Value::text(text)])?;
        Ok(BoundExpr::Literal(v))
    }

    fn finish_cast(&mut self, inner: BoundExpr, type_name: &str) -> SqlResult<BoundExpr> {
        let target = self.registry.resolve_type(type_name)?;
        let from = inner.ty();
        if from == target {
            return Ok(inner);
        }
        // NULL keeps flowing.
        if from == LogicalType::Null {
            return Ok(inner);
        }
        let cast = match self.registry.resolve_cast(&from, &target) {
            Some(c) => c,
            None if target == LogicalType::Text => {
                Arc::new(|args: &[Value]| Ok(Value::text(args[0].to_string())))
            }
            None => {
                return Err(SqlError::Bind(format!(
                    "no cast from {} to {}",
                    from.name(),
                    target.name()
                )))
            }
        };
        // Fold constant casts.
        if let BoundExpr::Literal(v) = &inner {
            if !v.is_null() {
                return Ok(BoundExpr::Literal(cast(&[v.clone()])?));
            }
        }
        Ok(BoundExpr::Call {
            name: format!("cast::{}", target.name()),
            func: cast,
            args: vec![inner],
            ty: target,
            strict: true,
        })
    }

    fn finish_unary(&mut self, op: UnaryOp, inner: BoundExpr) -> SqlResult<BoundExpr> {
        match op {
            UnaryOp::Not => Ok(BoundExpr::Not(Box::new(inner))),
            UnaryOp::Neg => {
                let ty = inner.ty();
                Ok(BoundExpr::Arith {
                    op: BinaryOp::Sub,
                    left: Box::new(BoundExpr::Literal(match ty {
                        LogicalType::Float => Value::Float(0.0),
                        _ => Value::Int(0),
                    })),
                    right: Box::new(inner),
                    ty,
                })
            }
        }
    }

    fn finish_binary(&mut self, op: BinaryOp, l: BoundExpr, r: BoundExpr) -> SqlResult<BoundExpr> {
        match op {
            BinaryOp::And => Ok(BoundExpr::And(vec![l, r])),
            BinaryOp::Or => Ok(BoundExpr::Or(vec![l, r])),
            op if op.is_comparison() => {
                // Extension types may override comparison operators.
                let lt = l.ty();
                let rt = r.ty();
                if matches!(lt, LogicalType::Ext(_)) || matches!(rt, LogicalType::Ext(_)) {
                    if let Ok(call) = self.resolve_call(op.symbol(), vec![l.clone(), r.clone()]) {
                        return Ok(call);
                    }
                }
                Ok(BoundExpr::Compare { op, left: Box::new(l), right: Box::new(r) })
            }
            BinaryOp::Concat => Ok(BoundExpr::Arith {
                op,
                left: Box::new(l),
                right: Box::new(r),
                ty: LogicalType::Text,
            }),
            _ => {
                let lt = l.ty();
                let rt = r.ty();
                // Extension arithmetic (e.g. tfloat + float) delegates to a
                // registered operator function.
                if matches!(lt, LogicalType::Ext(_)) || matches!(rt, LogicalType::Ext(_)) {
                    return self.resolve_call(op.symbol(), vec![l, r]);
                }
                let ty = arith_result_type(op, &lt, &rt)?;
                Ok(BoundExpr::Arith { op, left: Box::new(l), right: Box::new(r), ty })
            }
        }
    }

    fn resolve_call(&mut self, name: &str, args: Vec<BoundExpr>) -> SqlResult<BoundExpr> {
        let arg_types: Vec<LogicalType> = args.iter().map(BoundExpr::ty).collect();
        let sig = self.registry.resolve_scalar(name, &arg_types)?;
        let ret = if sig.ret == LogicalType::Any {
            arg_types.first().cloned().unwrap_or(LogicalType::Null)
        } else {
            sig.ret.clone()
        };
        // Constant folding for pure-literal calls.
        if args.iter().all(|a| matches!(a, BoundExpr::Literal(v) if !v.is_null())) {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| match a {
                    BoundExpr::Literal(v) => v.clone(),
                    _ => unreachable!(),
                })
                .collect();
            if let Ok(v) = (sig.func)(&vals) {
                return Ok(BoundExpr::Literal(v));
            }
        }
        Ok(BoundExpr::Call {
            name: sig.name.clone(),
            func: sig.func.clone(),
            args,
            ty: ret,
            strict: sig.strict,
        })
    }
}

/// Schema builder for the zero-argument introspection table functions.
fn introspection_fn(name: &str) -> Option<fn(&str) -> Vec<crate::bound::Field>> {
    match name {
        "mduck_spans" => Some(crate::introspect::span_fields),
        "mduck_progress" => Some(crate::introspect::progress_fields),
        "mduck_query_log" => Some(crate::introspect::query_log_fields),
        _ => None,
    }
}

fn quality_name(table: &Option<String>, name: &str) -> String {
    match table {
        Some(t) => format!("{t}.{name}"),
        None => name.to_string(),
    }
}

/// Infer the result type of built-in arithmetic.
fn arith_result_type(op: BinaryOp, l: &LogicalType, r: &LogicalType) -> SqlResult<LogicalType> {
    use LogicalType::*;
    let ty = match (op, l, r) {
        (_, Int, Int) => Int,
        (_, Float, Int) | (_, Int, Float) | (_, Float, Float) => Float,
        (BinaryOp::Add, Timestamp, Interval) | (BinaryOp::Sub, Timestamp, Interval) => Timestamp,
        (BinaryOp::Add, Interval, Timestamp) => Timestamp,
        (BinaryOp::Add, Date, Interval) | (BinaryOp::Sub, Date, Interval) => Timestamp,
        (BinaryOp::Sub, Timestamp, Timestamp) => Interval,
        (BinaryOp::Add, Date, Int) | (BinaryOp::Sub, Date, Int) => Date,
        (BinaryOp::Sub, Date, Date) => Int,
        (BinaryOp::Add, Interval, Interval) | (BinaryOp::Sub, Interval, Interval) => Interval,
        (BinaryOp::Mul, Interval, Int) | (BinaryOp::Mul, Int, Interval) => Interval,
        (_, Null, other) | (_, other, Null) => other.clone(),
        _ => {
            return Err(SqlError::Bind(format!(
                "operator {} undefined for {} and {}",
                op.symbol(),
                l.name(),
                r.name()
            )))
        }
    };
    Ok(ty)
}

/// Derive an output column name from an expression.
fn derive_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.to_ascii_lowercase(),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        Expr::CountStar => "count".into(),
        Expr::Cast { expr, .. } => derive_name(expr),
        Expr::TypedLiteral { type_name, .. } => type_name.clone(),
        _ => "expr".into(),
    }
}

/// Structural normalization for GROUP BY / ORDER BY matching: lowercases
/// identifiers so `v.License` matches `V.LICENSE`.
fn normalize_expr(e: &Expr) -> Expr {
    match e {
        Expr::Column { table, name } => Expr::Column {
            table: table.as_ref().map(|t| t.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(normalize_expr(expr)) }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(normalize_expr(left)),
            right: Box::new(normalize_expr(right)),
        },
        Expr::CustomOp { op, left, right } => Expr::CustomOp {
            op: op.clone(),
            left: Box::new(normalize_expr(left)),
            right: Box::new(normalize_expr(right)),
        },
        Expr::Func { name, args, distinct } => Expr::Func {
            name: name.to_ascii_lowercase(),
            args: args.iter().map(normalize_expr).collect(),
            distinct: *distinct,
        },
        Expr::Cast { expr, type_name } => Expr::Cast {
            expr: Box::new(normalize_expr(expr)),
            type_name: type_name.to_ascii_lowercase(),
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(normalize_expr(expr)), negated: *negated }
        }
        other => other.clone(),
    }
}

/// Does the expression contain an aggregate call?
fn contains_aggregate(e: &Expr, registry: &Registry) -> bool {
    match e {
        Expr::CountStar => true,
        Expr::Func { name, args, .. } => {
            registry.is_aggregate(name) || args.iter().any(|a| contains_aggregate(a, registry))
        }
        Expr::Unary { expr, .. } => contains_aggregate(expr, registry),
        Expr::Binary { left, right, .. } | Expr::CustomOp { left, right, .. } => {
            contains_aggregate(left, registry) || contains_aggregate(right, registry)
        }
        Expr::Cast { expr, .. } => contains_aggregate(expr, registry),
        Expr::IsNull { expr, .. } => contains_aggregate(expr, registry),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr, registry)
                || list.iter().any(|a| contains_aggregate(a, registry))
        }
        Expr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_some_and(|o| contains_aggregate(o, registry))
                || branches
                    .iter()
                    .any(|(c, v)| contains_aggregate(c, registry) || contains_aggregate(v, registry))
                || else_expr.as_deref().is_some_and(|x| contains_aggregate(x, registry))
        }
        _ => false,
    }
}

/// Bind a statement's expression with no input columns (INSERT VALUES).
pub fn bind_constant_expr(
    e: &Expr,
    catalog: &dyn Catalog,
    registry: &Registry,
) -> SqlResult<BoundExpr> {
    let mut b = Binder::new(catalog, registry);
    let empty = Schema::default();
    b.bind_expr(e, &empty)
}

pub use crate::ast::Statement;
pub use crate::ast::{InsertSource as BoundInsertSource};

// Re-exported to give engines one import point for INSERT binding.
pub fn bind_insert_select(
    stmt: &SelectStmt,
    catalog: &dyn Catalog,
    registry: &Registry,
) -> SqlResult<(BoundSelect, usize)> {
    let mut b = Binder::new(catalog, registry);
    let plan = b.bind_select(stmt)?;
    Ok((plan, b.cte_slots()))
}

// Silence unused-import warning for the re-export above when engines only
// use parts of it.
#[allow(unused)]
fn _uses(_: Option<(Statement, BoundInsertSource)>) {}

#[allow(unused)]
fn _never_called(_: InsertSource) {}
