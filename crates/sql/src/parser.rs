//! Recursive-descent SQL parser covering the dialect the paper's queries
//! use: SELECT with CTEs / DISTINCT / comma joins / subqueries / GROUP BY /
//! ORDER BY / LIMIT, quantified comparisons (`<= ALL`), typed literals
//! (`tstzspan '[...]'`), `::` casts, custom operators (`&&`, `@>`, `<->`),
//! CREATE TABLE / CREATE INDEX ... USING TRTREE, INSERT, UPDATE, DELETE,
//! and EXPLAIN.

use std::sync::Arc;

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token};
use crate::value::Value;

/// Keywords that cannot be used as bare aliases.
const RESERVED: &[&str] = &[
    "from", "where", "group", "having", "order", "limit", "offset", "union", "join", "inner",
    "left", "right", "on", "as", "and", "or", "not", "select", "distinct", "with", "asc",
    "desc", "using", "set", "values", "is", "in", "all", "any", "exists", "case", "when",
    "then", "else", "end", "by",
];

/// Hard ceiling on parser recursion (nested parens, subqueries, NOT/neg
/// chains). Recursion past the stack limit aborts the process — it cannot
/// be caught — so it must be refused up front. One level costs the whole
/// precedence chain (~10 frames), so the ceiling is sized for a 2 MiB
/// thread stack in debug builds, with headroom for the recursive
/// evaluator that later walks the same tree.
pub const MAX_PARSER_DEPTH: usize = 64;

/// Parse one statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a sequence of `;`-separated statements.
pub fn parse_script(sql: &str) -> SqlResult<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if matches!(p.peek(), Token::Eof) {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    /// Run `f` one recursion level deeper, refusing past the ceiling.
    fn with_depth<T>(&mut self, f: impl FnOnce(&mut Self) -> SqlResult<T>) -> SqlResult<T> {
        if self.depth >= MAX_PARSER_DEPTH {
            return Err(SqlError::ResourceExhausted(format!(
                "query nesting exceeds {MAX_PARSER_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> SqlError {
        SqlError::Parse(format!("{msg} (at token {:?})", self.peek()))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Token::Symbol(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> SqlResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {sym:?}")))
        }
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn ident(&mut self) -> SqlResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------ statements

    fn statement(&mut self) -> SqlResult<Statement> {
        if self.peek().is_kw("explain") {
            self.pos += 1;
            let analyze = self.eat_kw("analyze");
            return Ok(Statement::Explain {
                statement: Box::new(self.statement()?),
                analyze,
            });
        }
        if self.peek().is_kw("pragma") {
            self.pos += 1;
            let name = self.ident()?.to_ascii_lowercase();
            let value = if matches!(self.peek(), Token::Symbol("=")) {
                self.pos += 1;
                let neg = matches!(self.peek(), Token::Symbol("-"));
                if neg {
                    self.pos += 1;
                }
                match self.next() {
                    Token::Integer(n) => {
                        Some(PragmaValue::Int(if neg { -n } else { n }))
                    }
                    Token::String(s) if !neg => Some(PragmaValue::Str(s)),
                    t => {
                        return Err(self.error(&format!(
                            "expected integer or string after '=', got {t:?}"
                        )))
                    }
                }
            } else {
                None
            };
            return Ok(Statement::Pragma { name, value });
        }
        if self.peek().is_kw("select") || self.peek().is_kw("with") {
            return Ok(Statement::Select(self.select_stmt()?));
        }
        if self.peek().is_kw("create") {
            return self.create_stmt();
        }
        if self.peek().is_kw("drop") {
            self.pos += 1;
            self.expect_kw("table")?;
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.peek().is_kw("insert") {
            return self.insert_stmt();
        }
        if self.peek().is_kw("update") {
            return self.update_stmt();
        }
        if self.peek().is_kw("delete") {
            self.pos += 1;
            self.expect_kw("from")?;
            let table = self.ident()?;
            let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, where_clause });
        }
        if self.peek().is_kw("checkpoint") {
            self.pos += 1;
            return Ok(Statement::Checkpoint);
        }
        Err(self.error("expected a statement"))
    }

    fn create_stmt(&mut self) -> SqlResult<Statement> {
        self.expect_kw("create")?;
        if self.eat_kw("table") {
            let if_not_exists = if self.eat_kw("if") {
                self.expect_kw("not")?;
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            self.expect_symbol("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.type_name()?;
                columns.push((col, ty));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Statement::CreateTable { name, columns, if_not_exists });
        }
        if self.eat_kw("index") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            let method = if self.eat_kw("using") { self.ident()? } else { String::new() };
            self.expect_symbol("(")?;
            let column = self.ident()?;
            self.expect_symbol(")")?;
            return Ok(Statement::CreateIndex { name, table, method, column });
        }
        Err(self.error("expected TABLE or INDEX after CREATE"))
    }

    /// A type name, possibly parameterized (`DECIMAL(10,2)`), normalized to
    /// lower case with parameters dropped.
    fn type_name(&mut self) -> SqlResult<String> {
        let base = self.ident()?.to_ascii_lowercase();
        if self.eat_symbol("(") {
            // Drop precision/scale parameters.
            let mut depth = 1;
            while depth > 0 {
                match self.next() {
                    Token::Symbol("(") => depth += 1,
                    Token::Symbol(")") => depth -= 1,
                    Token::Eof => return Err(self.error("unterminated type parameters")),
                    _ => {}
                }
            }
        }
        Ok(base)
    }

    fn insert_stmt(&mut self) -> SqlResult<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = None;
        if matches!(self.peek(), Token::Symbol("(")) && !self.peek2().is_kw("select") {
            self.expect_symbol("(")?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            columns = Some(cols);
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                rows.push(row);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Select(Box::new(self.select_stmt()?))
        };
        Ok(Statement::Insert { table, columns, source })
    }

    fn update_stmt(&mut self) -> SqlResult<Statement> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, where_clause })
    }

    // ------------------------------------------------------------ select

    fn select_stmt(&mut self) -> SqlResult<SelectStmt> {
        self.with_depth(|p| p.select_stmt_inner())
    }

    fn select_stmt_inner(&mut self) -> SqlResult<SelectStmt> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                let mut column_aliases = Vec::new();
                if self.eat_symbol("(") {
                    loop {
                        column_aliases.push(self.ident()?);
                        if !self.eat_symbol(",") {
                            break;
                        }
                    }
                    self.expect_symbol(")")?;
                }
                self.expect_kw("as")?;
                self.expect_symbol("(")?;
                let query = self.select_stmt()?;
                self.expect_symbol(")")?;
                ctes.push(Cte { name, column_aliases, query });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projections = Vec::new();
        loop {
            projections.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
            // Tolerate trailing comma before FROM (appears in the paper's
            // Query 6 listing).
            if self.peek().is_kw("from") {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("limit") {
            limit = Some(match self.next() {
                Token::Integer(n) if n >= 0 => n as u64,
                other => return Err(SqlError::Parse(format!("bad LIMIT {other:?}"))),
            });
        }
        if self.eat_kw("offset") {
            offset = Some(match self.next() {
                Token::Integer(n) if n >= 0 => n as u64,
                other => return Err(SqlError::Parse(format!("bad OFFSET {other:?}"))),
            });
        }
        Ok(SelectStmt {
            ctes,
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard { table: None });
        }
        // alias.* wildcard
        if let (Token::Ident(t), Token::Symbol(".")) = (self.peek(), self.peek2()) {
            if matches!(self.tokens.get(self.pos + 2), Some(Token::Symbol("*"))) {
                let table = t.clone();
                self.pos += 3;
                return Ok(SelectItem::Wildcard { table: Some(table) });
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> SqlResult<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        match self.peek() {
            Token::Ident(s) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                let a = s.clone();
                self.pos += 1;
                Ok(Some(a))
            }
            Token::QuotedIdent(s) => {
                let a = s.clone();
                self.pos += 1;
                Ok(Some(a))
            }
            _ => Ok(None),
        }
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let mut base = self.table_factor()?;
        // INNER JOIN chains.
        loop {
            let joined = if self.eat_kw("join") {
                true
            } else if self.peek().is_kw("inner") && self.peek2().is_kw("join") {
                self.pos += 2;
                true
            } else {
                false
            };
            if !joined {
                break;
            }
            let right = self.table_factor()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            base = TableRef::Join { left: Box::new(base), right: Box::new(right), on };
        }
        Ok(base)
    }

    fn table_factor(&mut self) -> SqlResult<TableRef> {
        if self.eat_symbol("(") {
            let query = self.select_stmt()?;
            self.expect_symbol(")")?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        // Table function?
        if matches!(self.peek(), Token::Symbol("(")) {
            self.expect_symbol("(")?;
            let mut args = Vec::new();
            if !matches!(self.peek(), Token::Symbol(")")) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            }
            self.expect_symbol(")")?;
            let mut alias = None;
            let mut column_aliases = Vec::new();
            if self.eat_kw("as") {
                alias = Some(self.ident()?);
            } else if let Some(a) = self.optional_alias()? {
                alias = Some(a);
            }
            if alias.is_some() && self.eat_symbol("(") {
                loop {
                    column_aliases.push(self.ident()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
            }
            return Ok(TableRef::Function { name, args, alias, column_aliases });
        }
        let alias = self.optional_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ------------------------------------------------------------ expressions

    pub(crate) fn expr(&mut self) -> SqlResult<Expr> {
        self.with_depth(|p| p.or_expr())
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("not") {
            let inner = self.with_depth(|p| p.not_expr())?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison_expr()
    }

    fn comparison_expr(&mut self) -> SqlResult<Expr> {
        let left = self.custom_op_expr()?;
        // IS [NOT] NULL
        if self.peek().is_kw("is") {
            self.pos += 1;
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] IN (...)
        let negated_in = if self.peek().is_kw("not") && self.peek2().is_kw("in") {
            self.pos += 2;
            true
        } else if self.eat_kw("in") {
            false
        } else {
            // Comparison operators (possibly quantified).
            let op = match self.peek() {
                Token::Symbol("=") => Some(BinaryOp::Eq),
                Token::Symbol("<>") | Token::Symbol("!=") => Some(BinaryOp::NotEq),
                Token::Symbol("<") => Some(BinaryOp::Lt),
                Token::Symbol("<=") => Some(BinaryOp::LtEq),
                Token::Symbol(">") => Some(BinaryOp::Gt),
                Token::Symbol(">=") => Some(BinaryOp::GtEq),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                // ALL / ANY quantifier?
                if self.peek().is_kw("all") || self.peek().is_kw("any") || self.peek().is_kw("some")
                {
                    let all = self.peek().is_kw("all");
                    self.pos += 1;
                    self.expect_symbol("(")?;
                    let query = self.select_stmt()?;
                    self.expect_symbol(")")?;
                    return Ok(Expr::Quantified {
                        left: Box::new(left),
                        op,
                        all,
                        query: Box::new(query),
                    });
                }
                let right = self.custom_op_expr()?;
                return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
            }
            return Ok(left);
        };
        // IN list / IN (subquery)
        self.expect_symbol("(")?;
        if self.peek().is_kw("select") || self.peek().is_kw("with") {
            let query = self.select_stmt()?;
            self.expect_symbol(")")?;
            // expr IN (subq)  ≡  expr = ANY (subq)
            let e = Expr::Quantified {
                left: Box::new(left),
                op: BinaryOp::Eq,
                all: false,
                query: Box::new(query),
            };
            return Ok(if negated_in {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }
            } else {
                e
            });
        }
        let mut list = Vec::new();
        loop {
            list.push(self.expr()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Expr::InList { expr: Box::new(left), list, negated: negated_in })
    }

    /// Registered operators (`&&`, `@>`, `<->`, ...) bind tighter than
    /// comparisons and looser than `+`/`-`.
    fn custom_op_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(s @ ("&&" | "@>" | "<@" | "<<" | ">>" | "-|-" | "<->" | "|=|")) => {
                    Some(s.to_string())
                }
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.additive_expr()?;
            left = Expr::CustomOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn additive_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("+") => Some(BinaryOp::Add),
                Token::Symbol("-") => Some(BinaryOp::Sub),
                Token::Symbol("||") => Some(BinaryOp::Concat),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.multiplicative_expr()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("*") => Some(BinaryOp::Mul),
                Token::Symbol("/") => Some(BinaryOp::Div),
                Token::Symbol("%") => Some(BinaryOp::Mod),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_symbol("-") {
            let inner = self.with_depth(|p| p.unary_expr())?;
            // Fold negative literals.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_symbol("+") {
            return self.with_depth(|p| p.unary_expr());
        }
        self.cast_expr()
    }

    fn cast_expr(&mut self) -> SqlResult<Expr> {
        let mut e = self.primary_expr()?;
        while self.eat_symbol("::") {
            let type_name = self.type_name()?;
            e = Expr::Cast { expr: Box::new(e), type_name };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> SqlResult<Expr> {
        match self.peek().clone() {
            Token::Integer(n) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(n)))
            }
            Token::Number(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Token::String(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(Arc::from(s.as_str()))))
            }
            Token::Symbol("(") => {
                self.pos += 1;
                if self.peek().is_kw("select") || self.peek().is_kw("with") {
                    let q = self.select_stmt()?;
                    self.expect_symbol(")")?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Token::Symbol("*") => Err(self.error("unexpected *")),
            Token::QuotedIdent(name) => {
                self.pos += 1;
                Ok(Expr::Column { table: None, name })
            }
            Token::Ident(word) => {
                let lower = word.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Null));
                    }
                    "true" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    "exists" => {
                        self.pos += 1;
                        self.expect_symbol("(")?;
                        let q = self.select_stmt()?;
                        self.expect_symbol(")")?;
                        return Ok(Expr::Exists { query: Box::new(q), negated: false });
                    }
                    "case" => {
                        self.pos += 1;
                        return self.case_expr();
                    }
                    "interval" => {
                        // `interval '1 day'` or `INTERVAL (expr)`.
                        self.pos += 1;
                        if let Token::String(text) = self.peek().clone() {
                            self.pos += 1;
                            return Ok(Expr::TypedLiteral {
                                type_name: "interval".into(),
                                text,
                            });
                        }
                        if self.eat_symbol("(") {
                            let e = self.expr()?;
                            self.expect_symbol(")")?;
                            return Ok(Expr::Cast {
                                expr: Box::new(e),
                                type_name: "interval".into(),
                            });
                        }
                        return Err(self.error("expected string or ( after INTERVAL"));
                    }
                    _ => {}
                }
                // Typed literal: IDENT 'string'.
                if let Token::String(text) = self.peek2() {
                    let text = text.clone();
                    self.pos += 2;
                    return Ok(Expr::TypedLiteral { type_name: lower, text });
                }
                self.pos += 1;
                // Function call.
                if matches!(self.peek(), Token::Symbol("(")) {
                    self.pos += 1;
                    if self.eat_symbol("*") {
                        self.expect_symbol(")")?;
                        if lower == "count" {
                            return Ok(Expr::CountStar);
                        }
                        return Err(self.error("only count(*) accepts *"));
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Token::Symbol(")")) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                    }
                    self.expect_symbol(")")?;
                    return Ok(Expr::Func { name: lower, args, distinct });
                }
                // Qualified column.
                if self.eat_symbol(".") {
                    let name = self.ident()?;
                    return Ok(Expr::Column { table: Some(word), name });
                }
                Ok(Expr::Column { table: None, name: word })
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn case_expr(&mut self) -> SqlResult<Expr> {
        let operand = if !self.peek().is_kw("when") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        let else_expr = if self.eat_kw("else") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a < 5 ORDER BY b DESC LIMIT 10");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_some());
        assert!(!s.order_by[0].asc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn typed_literals_and_casts() {
        let s = sel("SELECT duration('{1@2025-01-01}'::TINT, true)");
        match &s.projections[0] {
            SelectItem::Expr { expr: Expr::Func { name, args, .. }, .. } => {
                assert_eq!(name, "duration");
                assert!(matches!(args[0], Expr::Cast { .. }));
                assert_eq!(args[1], Expr::Literal(Value::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
        let s = sel("SELECT tstzspan '[2025-01-01, 2025-01-02]'");
        assert!(matches!(
            &s.projections[0],
            SelectItem::Expr { expr: Expr::TypedLiteral { type_name, .. }, .. } if type_name == "tstzspan"
        ));
        let s = sel("SELECT interval '1 day', INTERVAL (i || ' minutes')");
        assert_eq!(s.projections.len(), 2);
    }

    #[test]
    fn custom_operators_precedence() {
        let s = sel("SELECT 1 FROM t WHERE box && q AND a <-> b < 5");
        let Some(Expr::Binary { op: BinaryOp::And, left, right }) = s.where_clause else {
            panic!()
        };
        assert!(matches!(*left, Expr::CustomOp { ref op, .. } if op == "&&"));
        // a <-> b < 5 parses as (a <-> b) < 5.
        assert!(
            matches!(*right, Expr::Binary { op: BinaryOp::Lt, ref left, .. }
                if matches!(**left, Expr::CustomOp { ref op, .. } if op == "<->"))
        );
    }

    #[test]
    fn ctes_and_quantified() {
        let s = sel(
            "WITH Temp1(L, T) AS (SELECT a, b FROM x), Temp2 AS (SELECT 1) \
             SELECT * FROM Temp1 t1 WHERE t1.L <= ALL (SELECT L FROM Temp1)",
        );
        assert_eq!(s.ctes.len(), 2);
        assert_eq!(s.ctes[0].column_aliases, vec!["L", "T"]);
        assert!(matches!(s.where_clause, Some(Expr::Quantified { all: true, .. })));
    }

    #[test]
    fn from_subquery_and_table_function() {
        let s = sel(
            "SELECT * FROM (SELECT * FROM trajectories t1 LIMIT 100) t1, \
             generate_series(1, 1000) AS t(i)",
        );
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[0], TableRef::Subquery { alias, .. } if alias == "t1"));
        match &s.from[1] {
            TableRef::Function { name, args, alias, column_aliases } => {
                assert_eq!(name, "generate_series");
                assert_eq!(args.len(), 2);
                assert_eq!(alias.as_deref(), Some("t"));
                assert_eq!(column_aliases, &vec!["i".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ddl_statements() {
        let st = parse_statement(
            "CREATE TABLE test_geo(\"times\" timestamptz, \"box\" stbox)",
        )
        .unwrap();
        assert_eq!(
            st,
            Statement::CreateTable {
                name: "test_geo".into(),
                columns: vec![
                    ("times".into(), "timestamptz".into()),
                    ("box".into(), "stbox".into())
                ],
                if_not_exists: false,
            }
        );
        let st =
            parse_statement("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)").unwrap();
        assert_eq!(
            st,
            Statement::CreateIndex {
                name: "rtree_stbox".into(),
                table: "test_geo".into(),
                method: "TRTREE".into(),
                column: "box".into(),
            }
        );
    }

    #[test]
    fn insert_and_update() {
        let st = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match st {
            Statement::Insert { source: InsertSource::Values(rows), columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
        let st = parse_statement("INSERT INTO t SELECT * FROM s").unwrap();
        assert!(matches!(
            st,
            Statement::Insert { source: InsertSource::Select(_), .. }
        ));
        let st = parse_statement("UPDATE t SET geom = geometry(box) WHERE a > 2").unwrap();
        assert!(matches!(st, Statement::Update { .. }));
    }

    #[test]
    fn explain_and_script() {
        let st = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(st, Statement::Explain { analyze: false, .. }));
        let st = parse_statement("EXPLAIN ANALYZE SELECT * FROM t").unwrap();
        assert!(matches!(st, Statement::Explain { analyze: true, .. }));
        let script = parse_script("SELECT 1; SELECT 2;").unwrap();
        assert_eq!(script.len(), 2);
    }

    #[test]
    fn pragma_statements_parse() {
        let st = parse_statement("PRAGMA metrics").unwrap();
        assert_eq!(st, Statement::Pragma { name: "metrics".into(), value: None });
        let st = parse_statement("pragma Reset_Metrics;").unwrap();
        assert_eq!(st, Statement::Pragma { name: "reset_metrics".into(), value: None });
        let st = parse_statement("PRAGMA threads = 4").unwrap();
        assert_eq!(
            st,
            Statement::Pragma { name: "threads".into(), value: Some(PragmaValue::Int(4)) }
        );
        let st = parse_statement("PRAGMA threads = -1").unwrap();
        assert_eq!(
            st,
            Statement::Pragma { name: "threads".into(), value: Some(PragmaValue::Int(-1)) }
        );
        let st = parse_statement("PRAGMA memory_limit = '8MB'").unwrap();
        assert_eq!(
            st,
            Statement::Pragma {
                name: "memory_limit".into(),
                value: Some(PragmaValue::Str("8MB".into())),
            }
        );
        assert!(parse_statement("PRAGMA").is_err());
        assert!(parse_statement("PRAGMA threads =").is_err());
        assert!(parse_statement("PRAGMA threads = x").is_err());
        assert!(parse_statement("PRAGMA threads = -'8MB'").is_err());
    }

    #[test]
    fn the_papers_query_10_parses() {
        let sql = "WITH Temp AS (
            SELECT l1.License AS License1, t2.VehicleId AS Car2Id,
                   whenTrue(tDwithin(t1.Trip, t2.Trip, 3.0)) AS Periods
            FROM Trips t1, Licenses1 l1, Trips t2, Vehicles v
            WHERE t1.VehicleId = l1.VehicleId AND t2.VehicleId = v.VehicleId AND
                  t1.VehicleId <> t2.VehicleId AND
                  t2.Trip && expandSpace(t1.trip::STBOX, 3.0))
        SELECT License1, Car2Id, Periods FROM Temp WHERE Periods IS NOT NULL";
        let s = sel(sql);
        assert_eq!(s.ctes.len(), 1);
        assert!(matches!(s.where_clause, Some(Expr::IsNull { negated: true, .. })));
    }

    #[test]
    fn is_null_and_in() {
        let s = sel("SELECT 1 FROM t WHERE a IS NULL AND b IN (1, 2, 3) AND c NOT IN (4)");
        assert!(s.where_clause.is_some());
        let s = sel("SELECT 1 FROM t WHERE a IN (SELECT x FROM y)");
        assert!(matches!(
            s.where_clause,
            Some(Expr::Quantified { all: false, .. })
        ));
    }

    #[test]
    fn case_expression() {
        let s = sel("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
        assert!(matches!(
            &s.projections[0],
            SelectItem::Expr { expr: Expr::Case { .. }, .. }
        ));
    }
}
