//! Built-in types, casts, scalar functions, and aggregates — the baseline
//! SQL surface both engines share before any extension loads.

use std::sync::Arc;

use mduck_temporal::time::{parse_date, parse_interval, parse_timestamp};

use crate::error::{SqlError, SqlResult};
use crate::registry::{AggState, Registry};
use crate::value::{LogicalType, Value};

/// Install the built-in surface into a registry.
pub fn register_builtins(r: &mut Registry) {
    register_types(r);
    register_casts(r);
    register_math(r);
    register_strings(r);
    register_time(r);
    register_aggregates(r);
}

fn register_types(r: &mut Registry) {
    for (names, ty) in [
        (&["boolean", "bool"][..], LogicalType::Bool),
        (&["integer", "int", "int4", "int8", "bigint", "smallint", "tinyint"][..], LogicalType::Int),
        (
            &["double", "float", "float4", "float8", "real", "decimal", "numeric"][..],
            LogicalType::Float,
        ),
        (&["varchar", "text", "string", "char"][..], LogicalType::Text),
        (&["blob", "bytea", "wkb_blob"][..], LogicalType::Blob),
        (&["timestamptz", "timestamp"][..], LogicalType::Timestamp),
        (&["date"][..], LogicalType::Date),
        (&["interval"][..], LogicalType::Interval),
        (&["list"][..], LogicalType::List),
    ] {
        for n in names {
            r.register_type(n, ty.clone());
        }
    }
}

fn register_casts(r: &mut Registry) {
    r.register_cast(LogicalType::Int, LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_int()? as f64))
    });
    r.register_cast(LogicalType::Float, LogicalType::Int, |a| {
        Ok(Value::Int(a[0].as_float()?.round() as i64))
    });
    r.register_cast(LogicalType::Text, LogicalType::Timestamp, |a| {
        let t = parse_timestamp(a[0].as_text()?)
            .map_err(|e| SqlError::execution(e.to_string()))?;
        Ok(Value::Timestamp(t.0))
    });
    r.register_cast(LogicalType::Text, LogicalType::Date, |a| {
        let d = parse_date(a[0].as_text()?).map_err(|e| SqlError::execution(e.to_string()))?;
        Ok(Value::Date(d.0))
    });
    r.register_cast(LogicalType::Text, LogicalType::Interval, |a| {
        let iv =
            parse_interval(a[0].as_text()?).map_err(|e| SqlError::execution(e.to_string()))?;
        Ok(Value::Interval { months: iv.months, days: iv.days, usecs: iv.usecs })
    });
    r.register_cast(LogicalType::Timestamp, LogicalType::Date, |a| {
        Ok(Value::Date(a[0].as_timestamp()?.div_euclid(86_400_000_000) as i32))
    });
    r.register_cast(LogicalType::Date, LogicalType::Timestamp, |a| {
        Ok(Value::Timestamp(a[0].as_timestamp()?))
    });
    r.register_cast(LogicalType::Text, LogicalType::Int, |a| {
        a[0].as_text()?
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| SqlError::execution(format!("cannot cast to BIGINT: {e}")))
    });
    r.register_cast(LogicalType::Text, LogicalType::Float, |a| {
        a[0].as_text()?
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| SqlError::execution(format!("cannot cast to DOUBLE: {e}")))
    });
    // Everything renders to text through Display.
    for from in [
        LogicalType::Bool,
        LogicalType::Int,
        LogicalType::Float,
        LogicalType::Timestamp,
        LogicalType::Date,
        LogicalType::Interval,
    ] {
        r.register_cast(from, LogicalType::Text, |a| Ok(Value::text(a[0].to_string())));
    }
}

fn register_math(r: &mut Registry) {
    r.register_scalar("abs", vec![LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.abs()))
    });
    r.register_scalar("abs", vec![LogicalType::Int], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].as_int()?.abs()))
    });
    r.register_scalar("sqrt", vec![LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.sqrt()))
    });
    r.register_scalar("floor", vec![LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.floor()))
    });
    r.register_scalar("ceil", vec![LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.ceil()))
    });
    r.register_scalar("round", vec![LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.round()))
    });
    r.register_scalar(
        "round",
        vec![LogicalType::Float, LogicalType::Int],
        LogicalType::Float,
        |a| {
            let scale = 10f64.powi(a[1].as_int()? as i32);
            Ok(Value::Float((a[0].as_float()? * scale).round() / scale))
        },
    );
    r.register_scalar("power", vec![LogicalType::Float, LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.powf(a[1].as_float()?)))
    });
    r.register_scalar("random_deterministic", vec![LogicalType::Int], LogicalType::Float, |a| {
        // Deterministic hash-based pseudo-random in [0,1): keeps query
        // results reproducible without a global RNG.
        let mut x = a[0].as_int()? as u64;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        Ok(Value::Float((x >> 11) as f64 / (1u64 << 53) as f64))
    });
    r.register_scalar("greatest", vec![LogicalType::Float, LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.max(a[1].as_float()?)))
    });
    r.register_scalar("least", vec![LogicalType::Float, LogicalType::Float], LogicalType::Float, |a| {
        Ok(Value::Float(a[0].as_float()?.min(a[1].as_float()?)))
    });
}

fn register_strings(r: &mut Registry) {
    r.register_scalar("length", vec![LogicalType::Text], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].as_text()?.chars().count() as i64))
    });
    r.register_scalar("lower", vec![LogicalType::Text], LogicalType::Text, |a| {
        Ok(Value::text(a[0].as_text()?.to_lowercase()))
    });
    r.register_scalar("upper", vec![LogicalType::Text], LogicalType::Text, |a| {
        Ok(Value::text(a[0].as_text()?.to_uppercase()))
    });
    r.register_scalar(
        "concat",
        vec![LogicalType::Any, LogicalType::Any],
        LogicalType::Text,
        |a| Ok(Value::text(format!("{}{}", a[0], a[1]))),
    );
    r.register_scalar(
        "substring",
        vec![LogicalType::Text, LogicalType::Int, LogicalType::Int],
        LogicalType::Text,
        |a| {
            let s = a[0].as_text()?;
            let start = (a[1].as_int()?.max(1) - 1) as usize;
            let len = a[2].as_int()?.max(0) as usize;
            Ok(Value::text(s.chars().skip(start).take(len).collect::<String>()))
        },
    );
    r.register_scalar("contains", vec![LogicalType::Text, LogicalType::Text], LogicalType::Bool, |a| {
        Ok(Value::Bool(a[0].as_text()?.contains(a[1].as_text()?)))
    });
}

fn register_time(r: &mut Registry) {
    r.register_scalar("epoch_us", vec![LogicalType::Timestamp], LogicalType::Int, |a| {
        Ok(Value::Int(a[0].as_timestamp()?))
    });
    r.register_scalar(
        "date_trunc",
        vec![LogicalType::Text, LogicalType::Timestamp],
        LogicalType::Timestamp,
        |a| {
            let unit = a[0].as_text()?.to_ascii_lowercase();
            let t = a[1].as_timestamp()?;
            let truncated = match unit.as_str() {
                "day" => t.div_euclid(86_400_000_000) * 86_400_000_000,
                "hour" => t.div_euclid(3_600_000_000) * 3_600_000_000,
                "minute" => t.div_euclid(60_000_000) * 60_000_000,
                "second" => t.div_euclid(1_000_000) * 1_000_000,
                other => {
                    return Err(SqlError::execution(format!("date_trunc unit {other:?}")))
                }
            };
            Ok(Value::Timestamp(truncated))
        },
    );
}

// ---------------------------------------------------------------- aggregates

struct CountState {
    n: i64,
}

impl AggState for CountState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if args.is_empty() || !args[0].is_null() {
            self.n += 1;
        }
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        Ok(Value::Int(self.n))
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        self.n += crate::registry::downcast_partial::<CountState>(other)?.n;
        Ok(())
    }
}

struct SumState {
    sum: f64,
    any: bool,
    int_only: bool,
}

impl AggState for SumState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        match &args[0] {
            Value::Null => {}
            Value::Int(i) => {
                self.sum += *i as f64;
                self.any = true;
            }
            Value::Float(f) => {
                self.sum += f;
                self.any = true;
                self.int_only = false;
            }
            other => return Err(SqlError::execution(format!("sum over {other:?}"))),
        }
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        if !self.any {
            Ok(Value::Null)
        } else if self.int_only {
            Ok(Value::Int(self.sum as i64))
        } else {
            Ok(Value::Float(self.sum))
        }
    }
}

struct AvgState {
    sum: f64,
    n: i64,
}

impl AggState for AvgState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if !args[0].is_null() {
            self.sum += args[0].as_float()?;
            self.n += 1;
        }
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        if self.n == 0 {
            Ok(Value::Null)
        } else {
            Ok(Value::Float(self.sum / self.n as f64))
        }
    }
}

struct MinMaxState {
    best: Value,
    min: bool,
}

impl AggState for MinMaxState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        let v = &args[0];
        if v.is_null() {
            return Ok(());
        }
        let replace = match self.best.sql_cmp(v) {
            None => self.best.is_null(),
            Some(ord) => {
                if self.min {
                    ord == std::cmp::Ordering::Greater
                } else {
                    ord == std::cmp::Ordering::Less
                }
            }
        };
        if replace {
            self.best = v.clone();
        }
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        Ok(self.best.clone())
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        // Re-feeding the later partial's best through `update` reuses the
        // strictly-better replacement rule, so ties keep the earlier
        // (serial first-seen) value.
        let o = crate::registry::downcast_partial::<MinMaxState>(other)?;
        let best = std::mem::replace(&mut o.best, Value::Null);
        if best.is_null() {
            return Ok(());
        }
        self.update(&[best])
    }
}

struct ListState {
    items: Vec<Value>,
}

impl AggState for ListState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        self.items.push(args[0].clone());
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        Ok(Value::List(Arc::new(std::mem::take(&mut self.items))))
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        // `self` covers the earlier chunk range: appending keeps serial
        // input order.
        let o = crate::registry::downcast_partial::<ListState>(other)?;
        self.items.append(&mut o.items);
        Ok(())
    }
}

struct StringAggState {
    sep: String,
    parts: Vec<String>,
}

impl AggState for StringAggState {
    fn update(&mut self, args: &[Value]) -> SqlResult<()> {
        if !args[0].is_null() {
            self.parts.push(args[0].to_string());
            if args.len() > 1 {
                self.sep = args[1].to_string();
            }
        }
        Ok(())
    }
    fn finalize(&mut self) -> SqlResult<Value> {
        if self.parts.is_empty() {
            Ok(Value::Null)
        } else {
            Ok(Value::text(self.parts.join(&self.sep)))
        }
    }
    fn exact_merge(&self) -> bool {
        true
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn merge(&mut self, other: &mut dyn AggState) -> SqlResult<()> {
        let o = crate::registry::downcast_partial::<StringAggState>(other)?;
        if !o.parts.is_empty() {
            // Serial updates let the last row's separator win; the later
            // partial holds that row.
            self.sep = std::mem::take(&mut o.sep);
            self.parts.append(&mut o.parts);
        }
        Ok(())
    }
}

fn register_aggregates(r: &mut Registry) {
    r.register_aggregate("count", vec![LogicalType::Any], LogicalType::Int, || {
        Box::new(CountState { n: 0 })
    });
    r.register_aggregate("sum", vec![LogicalType::Float], LogicalType::Float, || {
        Box::new(SumState { sum: 0.0, any: false, int_only: true })
    });
    r.register_aggregate("avg", vec![LogicalType::Float], LogicalType::Float, || {
        Box::new(AvgState { sum: 0.0, n: 0 })
    });
    r.register_aggregate("min", vec![LogicalType::Any], LogicalType::Any, || {
        Box::new(MinMaxState { best: Value::Null, min: true })
    });
    r.register_aggregate("max", vec![LogicalType::Any], LogicalType::Any, || {
        Box::new(MinMaxState { best: Value::Null, min: false })
    });
    r.register_aggregate("list", vec![LogicalType::Any], LogicalType::List, || {
        Box::new(ListState { items: Vec::new() })
    });
    r.register_aggregate(
        "string_agg",
        vec![LogicalType::Any, LogicalType::Text],
        LogicalType::Text,
        || Box::new(StringAggState { sep: ",".into(), parts: Vec::new() }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::with_builtins()
    }

    #[test]
    fn builtin_types_resolve() {
        let r = reg();
        assert_eq!(r.resolve_type("TIMESTAMPTZ").unwrap(), LogicalType::Timestamp);
        assert_eq!(r.resolve_type("decimal").unwrap(), LogicalType::Float);
        assert_eq!(r.resolve_type("wkb_blob").unwrap(), LogicalType::Blob);
    }

    #[test]
    fn text_to_timestamp_cast() {
        let r = reg();
        let cast = r.resolve_cast(&LogicalType::Text, &LogicalType::Timestamp).unwrap();
        let v = cast(&[Value::text("2025-08-11 12:00:00")]).unwrap();
        assert_eq!(v.to_string(), "2025-08-11 12:00:00+00");
    }

    #[test]
    #[allow(clippy::approx_constant)] // the literal is a rounding fixture, not π
    fn round_with_scale() {
        let r = reg();
        let sig = r.resolve_scalar("round", &[LogicalType::Float, LogicalType::Int]).unwrap();
        let v = (sig.func)(&[Value::Float(3.14159), Value::Int(3)]).unwrap();
        assert_eq!(v.as_float().unwrap(), 3.142);
    }

    #[test]
    fn aggregates_work() {
        let r = reg();
        let sig = r.resolve_aggregate("sum", &[LogicalType::Int]).unwrap();
        let mut st = (sig.factory)();
        st.update(&[Value::Int(1)]).unwrap();
        st.update(&[Value::Int(2)]).unwrap();
        st.update(&[Value::Null]).unwrap();
        assert_eq!(st.finalize().unwrap().as_int().unwrap(), 3);

        let sig = r.resolve_aggregate("min", &[LogicalType::Timestamp]).unwrap();
        let mut st = (sig.factory)();
        st.update(&[Value::Timestamp(5)]).unwrap();
        st.update(&[Value::Timestamp(3)]).unwrap();
        assert_eq!(st.finalize().unwrap().as_timestamp().unwrap(), 3);

        let sig = r.resolve_aggregate("list", &[LogicalType::Int]).unwrap();
        let mut st = (sig.factory)();
        st.update(&[Value::Int(1)]).unwrap();
        st.update(&[Value::Int(2)]).unwrap();
        let v = st.finalize().unwrap();
        assert_eq!(v.as_list().unwrap().len(), 2);
    }

    #[test]
    fn avg_and_empty_inputs() {
        let r = reg();
        let sig = r.resolve_aggregate("avg", &[LogicalType::Float]).unwrap();
        let mut st = (sig.factory)();
        assert!(st.finalize().unwrap().is_null());
        let mut st = (sig.factory)();
        st.update(&[Value::Float(2.0)]).unwrap();
        st.update(&[Value::Float(4.0)]).unwrap();
        assert_eq!(st.finalize().unwrap().as_float().unwrap(), 3.0);
    }
}
