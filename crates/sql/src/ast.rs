//! The abstract syntax tree produced by the parser.

use crate::value::Value;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable {
        name: String,
        /// (column name, type name as written)
        columns: Vec<(String, String)>,
        if_not_exists: bool,
    },
    CreateIndex {
        name: String,
        table: String,
        /// Index method from `USING <method>`; empty means the default.
        method: String,
        column: String,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Explain {
        statement: Box<Statement>,
        /// `EXPLAIN ANALYZE`: execute the statement and annotate the plan
        /// with actual per-operator timings and cardinalities.
        analyze: bool,
    },
    /// `PRAGMA <name>` / `PRAGMA <name> = <value>`: engine introspection
    /// (`metrics`, `reset_metrics`, `reset_spans`) and engine settings
    /// (`threads = N`, `memory_limit = '8MB'`, `query_log = 'q.jsonl'`).
    Pragma {
        name: String,
        value: Option<PragmaValue>,
    },
    /// `CHECKPOINT`: snapshot the catalog + all tables into the
    /// checkpoint file and truncate the WAL. A no-op when the database
    /// has no WAL attached.
    Checkpoint,
}

/// The value of a `PRAGMA name = <value>` assignment. Settings that take
/// sizes or paths use string form (`PRAGMA memory_limit='8MB'`).
#[derive(Debug, Clone, PartialEq)]
pub enum PragmaValue {
    Int(i64),
    Str(String),
}

impl PragmaValue {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PragmaValue::Int(n) => Some(*n),
            PragmaValue::Str(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            PragmaValue::Int(_) => None,
            PragmaValue::Str(s) => Some(s),
        }
    }
}

/// The data source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStmt>),
}

/// A SELECT statement (optionally with CTEs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `WITH name(col, ...) AS (select)` entries, in order.
    pub ctes: Vec<Cte>,
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub column_aliases: Vec<String>,
    pub query: SelectStmt,
}

/// One projection in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` or `alias.*`
    Wildcard { table: Option<String> },
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

/// A FROM item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
    /// A table function such as `generate_series(1, 1000) AS t(i)`.
    Function {
        name: String,
        args: Vec<Expr>,
        alias: Option<String>,
        column_aliases: Vec<String>,
    },
    /// Explicit `a JOIN b ON cond` (inner joins only).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        on: Expr,
    },
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// `tstzspan '[2025-01-01, 2025-01-02]'`, `interval '1 day'`, ...
    TypedLiteral { type_name: String, text: String },
    /// A (possibly qualified) column reference.
    Column { table: Option<String>, name: String },
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    /// Registered operator symbol (`&&`, `@>`, `<->`, ...).
    CustomOp { op: String, left: Box<Expr>, right: Box<Expr> },
    Func { name: String, args: Vec<Expr>, distinct: bool },
    /// `count(*)`.
    CountStar,
    Cast { expr: Box<Expr>, type_name: String },
    IsNull { expr: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    /// A scalar subquery.
    Subquery(Box<SelectStmt>),
    /// `expr op ALL (subquery)` / `expr op ANY (subquery)`.
    Quantified { left: Box<Expr>, op: BinaryOp, all: bool, query: Box<SelectStmt> },
    /// `EXISTS (subquery)`.
    Exists { query: Box<SelectStmt>, negated: bool },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinaryOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }

    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}
