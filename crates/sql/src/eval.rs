//! Shared row-wise expression evaluator.
//!
//! Both engines evaluate [`BoundExpr`] trees with this module — the
//! vectorized engine for expressions its kernels can't fuse (extension
//! calls, subqueries), the row engine for everything. Subquery evaluation
//! is delegated back to the engine through [`SubqueryExec`].

use std::cmp::Ordering;

use crate::ast::BinaryOp;
use crate::bound::{BoundExpr, BoundSelect};
use crate::error::{SqlError, SqlResult};
use crate::value::Value;

/// Engine callback used to run (possibly correlated) subplans.
pub trait SubqueryExec {
    /// Execute the plan with the given outer-row stack; returns all rows.
    fn execute(&self, plan: &BoundSelect, outer: &OuterStack<'_>) -> SqlResult<Vec<Vec<Value>>>;
}

/// Stack of environment rows for correlated evaluation. `frames[len-1]` is
/// the innermost (current) row; `OuterRef { depth: 1 }` reads
/// `frames[len-1-1]` from a subquery whose own row was pushed on top.
#[derive(Clone, Copy)]
pub struct OuterStack<'a> {
    frames: &'a [&'a [Value]],
}

impl<'a> OuterStack<'a> {
    pub const EMPTY: OuterStack<'static> = OuterStack { frames: &[] };

    pub fn new(frames: &'a [&'a [Value]]) -> Self {
        OuterStack { frames }
    }

    /// True when there is no correlated outer context (top-level query).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    fn get(&self, depth: usize, index: usize) -> SqlResult<&Value> {
        let n = self.frames.len();
        if depth == 0 || depth > n {
            return Err(SqlError::execution(format!(
                "outer reference depth {depth} with {n} frames"
            )));
        }
        let frame = self.frames[n - depth];
        frame.get(index).ok_or_else(|| {
            SqlError::execution(format!("outer column {index} out of range"))
        })
    }
}

/// Evaluate `expr` against `row`, with `outer` available to correlated
/// subexpressions and `exec` running subplans.
pub fn eval(
    expr: &BoundExpr,
    row: &[Value],
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
) -> SqlResult<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::ColumnRef { index, .. } => row
            .get(*index)
            .cloned()
            .ok_or_else(|| SqlError::execution(format!("column {index} out of range"))),
        BoundExpr::OuterRef { depth, index, .. } => outer.get(*depth, *index).cloned(),
        BoundExpr::Call { func, args, strict, name, .. } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                let v = eval(a, row, outer, exec)?;
                if *strict && v.is_null() {
                    return Ok(Value::Null);
                }
                vals.push(v);
            }
            func(&vals).map_err(|e| match e {
                SqlError::Execution(m) => SqlError::Execution(format!("{name}: {m}")),
                other => other,
            })
        }
        BoundExpr::Compare { op, left, right } => {
            let l = eval(left, row, outer, exec)?;
            let r = eval(right, row, outer, exec)?;
            Ok(compare(*op, &l, &r))
        }
        BoundExpr::Arith { op, left, right, .. } => {
            let l = eval(left, row, outer, exec)?;
            let r = eval(right, row, outer, exec)?;
            arith(*op, &l, &r)
        }
        BoundExpr::And(es) => {
            let mut saw_null = false;
            for e in es {
                match eval(e, row, outer, exec)? {
                    Value::Bool(false) => return Ok(Value::Bool(false)),
                    Value::Bool(true) => {}
                    Value::Null => saw_null = true,
                    other => {
                        return Err(SqlError::execution(format!("AND over {other:?}")))
                    }
                }
            }
            Ok(if saw_null { Value::Null } else { Value::Bool(true) })
        }
        BoundExpr::Or(es) => {
            let mut saw_null = false;
            for e in es {
                match eval(e, row, outer, exec)? {
                    Value::Bool(true) => return Ok(Value::Bool(true)),
                    Value::Bool(false) => {}
                    Value::Null => saw_null = true,
                    other => return Err(SqlError::execution(format!("OR over {other:?}"))),
                }
            }
            Ok(if saw_null { Value::Null } else { Value::Bool(false) })
        }
        BoundExpr::Not(e) => match eval(e, row, outer, exec)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(SqlError::execution(format!("NOT over {other:?}"))),
        },
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, outer, exec)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval(expr, row, outer, exec)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row, outer, exec)?;
                if iv.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&iv) {
                    return Ok(Value::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Case { operand, branches, else_expr, .. } => {
            let op_val = match operand {
                Some(o) => Some(eval(o, row, outer, exec)?),
                None => None,
            };
            for (cond, result) in branches {
                let hit = match &op_val {
                    Some(v) => {
                        let c = eval(cond, row, outer, exec)?;
                        v.sql_eq(&c)
                    }
                    None => matches!(eval(cond, row, outer, exec)?, Value::Bool(true)),
                };
                if hit {
                    return eval(result, row, outer, exec);
                }
            }
            match else_expr {
                Some(e) => eval(e, row, outer, exec),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::ScalarSubquery { plan, .. } => {
            let rows = run_subplan(plan, row, outer, exec)?;
            match rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rows.into_iter().next().unwrap().into_iter().next().unwrap_or(Value::Null)),
                n => Err(SqlError::execution(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
        BoundExpr::Quantified { op, all, left, plan } => {
            let l = eval(left, row, outer, exec)?;
            if l.is_null() {
                return Ok(Value::Null);
            }
            let rows = run_subplan(plan, row, outer, exec)?;
            let mut saw_null = false;
            let mut any_hit = false;
            let mut all_hit = true;
            for r in rows {
                let Some(v) = r.first() else { continue };
                if v.is_null() {
                    saw_null = true;
                    continue;
                }
                match compare(*op, &l, v) {
                    Value::Bool(true) => any_hit = true,
                    Value::Bool(false) => all_hit = false,
                    _ => saw_null = true,
                }
            }
            if *all {
                if !all_hit {
                    Ok(Value::Bool(false))
                } else if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(true))
                }
            } else if any_hit {
                Ok(Value::Bool(true))
            } else if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(false))
            }
        }
        BoundExpr::Exists { plan, negated } => {
            let rows = run_subplan(plan, row, outer, exec)?;
            Ok(Value::Bool(rows.is_empty() == *negated))
        }
    }
}

fn run_subplan(
    plan: &BoundSelect,
    row: &[Value],
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
) -> SqlResult<Vec<Vec<Value>>> {
    // Push the current row as a new outer frame.
    let mut frames: Vec<&[Value]> = outer.frames.to_vec();
    frames.push(row);
    let stack = OuterStack::new(&frames);
    exec.execute(plan, &stack)
}

/// Built-in SQL comparison (three-valued).
pub fn compare(op: BinaryOp, l: &Value, r: &Value) -> Value {
    match l.sql_cmp(r) {
        None => Value::Null,
        Some(ord) => {
            let b = match op {
                BinaryOp::Eq => ord == Ordering::Equal,
                BinaryOp::NotEq => ord != Ordering::Equal,
                BinaryOp::Lt => ord == Ordering::Less,
                BinaryOp::LtEq => ord != Ordering::Greater,
                BinaryOp::Gt => ord == Ordering::Greater,
                BinaryOp::GtEq => ord != Ordering::Less,
                _ => return Value::Null,
            };
            Value::Bool(b)
        }
    }
}

/// Built-in arithmetic / concatenation.
pub fn arith(op: BinaryOp, l: &Value, r: &Value) -> SqlResult<Value> {
    use Value::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    if op == BinaryOp::Concat {
        return Ok(Value::text(format!("{l}{r}")));
    }
    let overflow =
        |what: &str| SqlError::overflow(format!("bigint {what} of {l} and {r} out of range"));
    let v = match (l, r) {
        (Int(a), Int(b)) => match op {
            BinaryOp::Add => Int(a.checked_add(*b).ok_or_else(|| overflow("addition"))?),
            BinaryOp::Sub => Int(a.checked_sub(*b).ok_or_else(|| overflow("subtraction"))?),
            BinaryOp::Mul => Int(a.checked_mul(*b).ok_or_else(|| overflow("multiplication"))?),
            BinaryOp::Div => {
                if *b == 0 {
                    return Err(SqlError::execution("division by zero"));
                }
                // i64::MIN / -1 overflows.
                Int(a.checked_div(*b).ok_or_else(|| overflow("division"))?)
            }
            BinaryOp::Mod => {
                if *b == 0 {
                    return Err(SqlError::execution("modulo by zero"));
                }
                Int(a.checked_rem(*b).ok_or_else(|| overflow("modulo"))?)
            }
            _ => return Err(SqlError::execution("bad arithmetic op")),
        },
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            match op {
                BinaryOp::Add => Float(a + b),
                BinaryOp::Sub => Float(a - b),
                BinaryOp::Mul => Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::execution("division by zero"));
                    }
                    Float(a / b)
                }
                BinaryOp::Mod => Float(a % b),
                _ => return Err(SqlError::execution("bad arithmetic op")),
            }
        }
        (Timestamp(t), Interval { months, days, usecs }) => {
            let ts = mduck_temporal::TimestampTz(*t);
            let iv = mduck_temporal::Interval { months: *months, days: *days, usecs: *usecs };
            match op {
                BinaryOp::Add => Timestamp(ts.add_interval(&iv).0),
                BinaryOp::Sub => Timestamp(ts.sub_interval(&iv).0),
                _ => return Err(SqlError::execution("bad timestamp arithmetic")),
            }
        }
        (Interval { months, days, usecs }, Timestamp(t)) if op == BinaryOp::Add => {
            let ts = mduck_temporal::TimestampTz(*t);
            let iv = mduck_temporal::Interval { months: *months, days: *days, usecs: *usecs };
            Timestamp(ts.add_interval(&iv).0)
        }
        (Timestamp(a), Timestamp(b)) if op == BinaryOp::Sub => Interval {
            months: 0,
            days: 0,
            usecs: a.checked_sub(*b).ok_or_else(|| overflow("timestamp difference"))?,
        },
        (Date(d), Interval { .. }) => {
            return arith(op, &Timestamp(*d as i64 * 86_400_000_000), r);
        }
        (Date(d), Int(n)) => {
            let n = i32::try_from(*n).map_err(|_| overflow("date shift"))?;
            match op {
                BinaryOp::Add => Date(d.checked_add(n).ok_or_else(|| overflow("date shift"))?),
                BinaryOp::Sub => Date(d.checked_sub(n).ok_or_else(|| overflow("date shift"))?),
                _ => return Err(SqlError::execution("bad date arithmetic")),
            }
        }
        (Date(a), Date(b)) if op == BinaryOp::Sub => Int(*a as i64 - *b as i64),
        (
            Interval { months: m1, days: d1, usecs: u1 },
            Interval { months: m2, days: d2, usecs: u2 },
        ) => match op {
            BinaryOp::Add => Interval {
                months: m1.checked_add(*m2).ok_or_else(|| overflow("interval addition"))?,
                days: d1.checked_add(*d2).ok_or_else(|| overflow("interval addition"))?,
                usecs: u1.checked_add(*u2).ok_or_else(|| overflow("interval addition"))?,
            },
            BinaryOp::Sub => Interval {
                months: m1.checked_sub(*m2).ok_or_else(|| overflow("interval subtraction"))?,
                days: d1.checked_sub(*d2).ok_or_else(|| overflow("interval subtraction"))?,
                usecs: u1.checked_sub(*u2).ok_or_else(|| overflow("interval subtraction"))?,
            },
            _ => return Err(SqlError::execution("bad interval arithmetic")),
        },
        (Interval { months, days, usecs }, Int(k)) if op == BinaryOp::Mul => {
            let k32 = i32::try_from(*k).map_err(|_| overflow("interval scaling"))?;
            Interval {
                months: months.checked_mul(k32).ok_or_else(|| overflow("interval scaling"))?,
                days: days.checked_mul(k32).ok_or_else(|| overflow("interval scaling"))?,
                usecs: usecs.checked_mul(*k).ok_or_else(|| overflow("interval scaling"))?,
            }
        }
        (Int(k), Interval { .. }) if op == BinaryOp::Mul => return arith(op, r, l),
        _ => {
            return Err(SqlError::execution(format!(
                "operator {} undefined for {l:?} and {r:?}",
                op.symbol()
            )))
        }
    };
    Ok(v)
}

/// A no-op subquery executor for expressions known to be subquery-free.
pub struct NoSubqueries;

impl SubqueryExec for NoSubqueries {
    fn execute(&self, _plan: &BoundSelect, _outer: &OuterStack<'_>) -> SqlResult<Vec<Vec<Value>>> {
        Err(SqlError::execution("subquery evaluation is not available in this context"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_three_valued() {
        assert_eq!(
            compare(BinaryOp::Lt, &Value::Int(1), &Value::Int(2)),
            Value::Bool(true)
        );
        assert!(compare(BinaryOp::Eq, &Value::Null, &Value::Int(2)).is_null());
        assert_eq!(
            compare(BinaryOp::GtEq, &Value::Float(2.0), &Value::Int(2)),
            Value::Bool(true)
        );
    }

    #[test]
    fn arith_numeric() {
        assert_eq!(arith(BinaryOp::Add, &Value::Int(2), &Value::Int(3)).unwrap().as_int().unwrap(), 5);
        assert_eq!(arith(BinaryOp::Div, &Value::Int(7), &Value::Int(2)).unwrap().as_int().unwrap(), 3);
        assert_eq!(
            arith(BinaryOp::Div, &Value::Float(7.0), &Value::Int(2)).unwrap().as_float().unwrap(),
            3.5
        );
        assert!(arith(BinaryOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(arith(BinaryOp::Add, &Value::Null, &Value::Int(1)).unwrap().is_null());
    }

    #[test]
    fn arith_temporal() {
        // 2025-01-01 + 1 day.
        let jan1 = 20_089i64 * 86_400_000_000;
        let v = arith(
            BinaryOp::Add,
            &Value::Timestamp(jan1),
            &Value::Interval { months: 0, days: 1, usecs: 0 },
        )
        .unwrap();
        assert_eq!(v.to_string(), "2025-01-02 00:00:00+00");
        let diff = arith(BinaryOp::Sub, &v, &Value::Timestamp(jan1)).unwrap();
        assert!(matches!(diff, Value::Interval { usecs: 86_400_000_000, .. }));
        let concat = arith(BinaryOp::Concat, &Value::Int(5), &Value::text(" minutes")).unwrap();
        assert_eq!(concat.as_text().unwrap(), "5 minutes");
    }

    #[test]
    fn eval_logic() {
        let expr = BoundExpr::And(vec![
            BoundExpr::Literal(Value::Bool(true)),
            BoundExpr::Compare {
                op: BinaryOp::Lt,
                left: Box::new(BoundExpr::ColumnRef { index: 0, ty: crate::value::LogicalType::Int }),
                right: Box::new(BoundExpr::Literal(Value::Int(10))),
            },
        ]);
        let row = vec![Value::Int(5)];
        let v = eval(&expr, &row, &OuterStack::EMPTY, &NoSubqueries).unwrap();
        assert_eq!(v, Value::Bool(true));
        let row = vec![Value::Int(15)];
        let v = eval(&expr, &row, &OuterStack::EMPTY, &NoSubqueries).unwrap();
        assert_eq!(v, Value::Bool(false));
    }
}
