//! SQL lexer.

use crate::error::{SqlError, SqlResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword, original case preserved.
    Ident(String),
    /// Double-quoted identifier.
    QuotedIdent(String),
    /// Single-quoted string literal (escapes resolved).
    String(String),
    /// Integer literal.
    Integer(i64),
    /// Floating literal.
    Number(f64),
    /// Punctuation / operator symbol (`::`, `&&`, `<=`, `(`, ...).
    Symbol(&'static str),
    /// A non-standard operator symbol (e.g. `<->`, `@>`, `-|-`).
    Op(String),
    Eof,
}

impl Token {
    /// Keyword test, case-insensitive.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

const SYMBOLS: &[&str] = &[
    "::", "<=", ">=", "<>", "!=", "&&", "||", "@>", "<@", "<<", ">>", "-|-", "<->", "|=|", "(",
    ")", ",", ".", ";", "=", "<", ">", "+", "-", "*", "/", "%", "{", "}", "[", "]", ":",
];

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && i + 1 < bytes.len() && bytes[i + 1] == b'-' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i + 1 < bytes.len() && depth > 0 {
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else if bytes[i] == b'/' && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String literal.
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(SqlError::Lex("unterminated string literal".into()));
                }
                if bytes[i] == b'\'' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    // Multi-byte safe: push the full char.
                    let Some(ch) = input.get(i..).and_then(|s| s.chars().next()) else {
                        return Err(SqlError::Lex("invalid UTF-8 boundary in string".into()));
                    };
                    s.push(ch);
                    i += ch.len_utf8();
                }
            }
            tokens.push(Token::String(s));
            continue;
        }
        // Quoted identifier.
        if c == '"' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(SqlError::Lex("unterminated quoted identifier".into()));
                }
                if bytes[i] == b'"' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        s.push('"');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    let Some(ch) = input.get(i..).and_then(|s| s.chars().next()) else {
                        return Err(SqlError::Lex("invalid UTF-8 boundary in identifier".into()));
                    };
                    s.push(ch);
                    i += ch.len_utf8();
                }
            }
            tokens.push(Token::QuotedIdent(s));
            continue;
        }
        // Number.
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_digit() {
                    i += 1;
                } else if ch == '.' && !is_float {
                    // Don't treat "1." followed by ".." as float.
                    is_float = true;
                    i += 1;
                } else if (ch == 'e' || ch == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || bytes[i + 1] == b'+'
                        || bytes[i + 1] == b'-')
                {
                    is_float = true;
                    i += 2;
                } else {
                    break;
                }
            }
            let text = &input[start..i];
            if is_float {
                let v: f64 = text
                    .parse()
                    .map_err(|_| SqlError::Lex(format!("bad number {text:?}")))?;
                tokens.push(Token::Number(v));
            } else {
                match text.parse::<i64>() {
                    Ok(v) => tokens.push(Token::Integer(v)),
                    Err(_) => {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| SqlError::Lex(format!("bad number {text:?}")))?;
                        tokens.push(Token::Number(v));
                    }
                }
            }
            continue;
        }
        // Identifier.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token::Ident(input[start..i].to_string()));
            continue;
        }
        // Symbols (longest match first). Match on bytes: a comment scan
        // can leave `i` inside a multi-byte char, where slicing the &str
        // would panic.
        let mut matched = false;
        for sym in SYMBOLS {
            if bytes[i..].starts_with(sym.as_bytes()) {
                tokens.push(Token::Symbol(sym));
                i += sym.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // `c` is a single byte; decode the real char for the message so
        // multi-byte input isn't reported as its mangled first byte.
        return Err(SqlError::Lex(match input.get(i..).and_then(|t| t.chars().next()) {
            Some(ch) => format!("unexpected character {ch:?} at offset {i}"),
            None => format!("unexpected byte {:#04x} at offset {i}", bytes[i]),
        }));
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, 1.5 FROM t WHERE x <= 'it''s'").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[2], Token::Symbol(","));
        assert_eq!(toks[3], Token::Number(1.5));
        assert!(toks.contains(&Token::Symbol("<=")));
        assert!(toks.contains(&Token::String("it's".into())));
    }

    #[test]
    fn custom_operators() {
        let toks = tokenize("a && b @> c <-> d -|- e").unwrap();
        assert!(toks.contains(&Token::Symbol("&&")));
        assert!(toks.contains(&Token::Symbol("@>")));
        assert!(toks.contains(&Token::Symbol("<->")));
        assert!(toks.contains(&Token::Symbol("-|-")));
    }

    #[test]
    fn cast_and_comments() {
        let toks = tokenize("x::stbox -- a comment\n/* block /* nested */ */ y").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Symbol("::"),
                Token::Ident("stbox".into()),
                Token::Ident("y".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize(r#""times" timestamptz"#).unwrap();
        assert_eq!(toks[0], Token::QuotedIdent("times".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 1e3 .5 10000000000000000000").unwrap();
        assert_eq!(toks[0], Token::Integer(1));
        assert_eq!(toks[1], Token::Number(2.5));
        assert_eq!(toks[2], Token::Number(1000.0));
        assert_eq!(toks[3], Token::Number(0.5));
        assert!(matches!(toks[4], Token::Number(_))); // overflows i64 → float
    }
}
