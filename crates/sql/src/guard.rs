//! Per-query execution guard: cancellation, wall-clock timeout, row
//! budget, memory limit, and subquery-recursion limits.
//!
//! The engine is embedded in a host process, so a pathological query must
//! not be able to monopolize it. A fresh [`ExecGuard`] is created for
//! every statement from the database's [`ExecLimits`]; the executor calls
//! [`ExecGuard::check_rows`] at chunk boundaries (cheap: one branch per
//! chunk, the deadline is only consulted every few calls),
//! [`ExecGuard::charge_mem`] when it materializes buffers, and
//! [`ExecGuard::enter_subquery`] at plan-recursion points. Any exceeded
//! budget surfaces as [`SqlError::ResourceExhausted`], and the guard
//! remembers *which* limit tripped ([`ExecGuard::trip_label`]) for the
//! query log.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mduck_obs::MemTracker;

use crate::error::{SqlError, SqlResult};

/// Resource limits applied to every statement. The default is fully
/// permissive (embedded analytics workloads routinely run long scans);
/// servers should set a timeout, row budget, and memory limit.
#[derive(Debug, Clone)]
pub struct ExecLimits {
    /// Wall-clock ceiling for one statement.
    pub timeout: Option<Duration>,
    /// Ceiling on rows *materialized* by one statement, counting every
    /// operator's output, not just the final result.
    pub row_budget: Option<u64>,
    /// Ceiling on bytes accounted to one statement's [`MemTracker`]
    /// (`PRAGMA memory_limit`); `None` means unlimited.
    pub memory_limit: Option<u64>,
    /// Ceiling on nested subquery execution depth.
    pub max_subquery_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            timeout: None,
            row_budget: None,
            memory_limit: None,
            max_subquery_depth: 32,
        }
    }
}

impl ExecLimits {
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    pub fn with_row_budget(mut self, rows: u64) -> Self {
        self.row_budget = Some(rows);
        self
    }

    pub fn with_memory_limit(mut self, bytes: u64) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    pub fn with_max_subquery_depth(mut self, depth: usize) -> Self {
        self.max_subquery_depth = depth;
        self
    }
}

/// Which [`ExecGuard`] limit tripped a statement, for the query log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GuardTrip {
    Timeout = 1,
    RowBudget = 2,
    Depth = 3,
    Cancel = 4,
    Memory = 5,
}

impl GuardTrip {
    pub fn label(self) -> &'static str {
        match self {
            GuardTrip::Timeout => "timeout",
            GuardTrip::RowBudget => "row_budget",
            GuardTrip::Depth => "depth",
            GuardTrip::Cancel => "cancel",
            GuardTrip::Memory => "memory",
        }
    }

    fn from_u8(v: u8) -> Option<GuardTrip> {
        match v {
            1 => Some(GuardTrip::Timeout),
            2 => Some(GuardTrip::RowBudget),
            3 => Some(GuardTrip::Depth),
            4 => Some(GuardTrip::Cancel),
            5 => Some(GuardTrip::Memory),
            _ => None,
        }
    }
}

/// Cross-thread cancellation handle for an in-flight statement.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Request cancellation; the statement fails with
    /// `SqlError::ResourceExhausted("query canceled")` at its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// How many `check_rows`/`tick` calls go between deadline reads.
/// `Instant::now()` costs a vdso call; chunk boundaries are already
/// coarse-grained, so a small stride keeps overhead negligible while
/// bounding timeout slack to a few chunks.
const DEADLINE_STRIDE: u32 = 8;

/// The per-statement guard. Cheap to create, and `Sync`: one guard is
/// shared by reference between the coordinating thread and every morsel
/// worker, so the row budget, deadline, and cancellation are global to
/// the statement no matter how many threads execute it.
#[derive(Debug)]
pub struct ExecGuard {
    cancel: CancelHandle,
    deadline: Option<Instant>,
    /// Remaining row budget; `None` means unlimited.
    rows_remaining: Option<AtomicU64>,
    /// Query-scoped memory accounting root; operators charge it (or a
    /// child scope) as they materialize buffers.
    mem: Arc<MemTracker>,
    memory_limit: Option<u64>,
    subquery_depth: AtomicUsize,
    max_subquery_depth: usize,
    ticks: AtomicU32,
    /// First limit that tripped (0 = none), for the query log.
    tripped: AtomicU8,
    /// Rows read off base tables by this statement, for the query log.
    rows_scanned: AtomicU64,
}

impl Drop for ExecGuard {
    fn drop(&mut self) {
        // Close the statement's memory scope so the process-wide
        // `mem_current` gauge balances no matter which entry point
        // created the guard (closing twice is harmless: close swaps the
        // counter to zero).
        self.mem.close();
    }
}

impl Default for ExecGuard {
    fn default() -> Self {
        ExecGuard::new(&ExecLimits::default())
    }
}

impl ExecGuard {
    pub fn new(limits: &ExecLimits) -> Self {
        ExecGuard {
            cancel: CancelHandle::default(),
            deadline: limits.timeout.map(|t| Instant::now() + t),
            rows_remaining: limits.row_budget.map(AtomicU64::new),
            mem: MemTracker::root(),
            memory_limit: limits.memory_limit,
            subquery_depth: AtomicUsize::new(0),
            max_subquery_depth: limits.max_subquery_depth,
            ticks: AtomicU32::new(0),
            tripped: AtomicU8::new(0),
            rows_scanned: AtomicU64::new(0),
        }
    }

    /// Tally `n` rows read off a base table (scan operators call this
    /// alongside their budget checks; the total feeds the query log).
    #[inline]
    pub fn note_scanned(&self, n: usize) {
        self.rows_scanned.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Total base-table rows this statement has scanned so far.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// The handle another thread can use to cancel this statement.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// The statement's memory-accounting root (create operator scopes
    /// with [`MemTracker::child`]; charges propagate back here).
    pub fn mem(&self) -> &Arc<MemTracker> {
        &self.mem
    }

    /// Record which limit tripped first; later trips keep the original.
    fn note_trip(&self, kind: GuardTrip) {
        let _ = self.tripped.compare_exchange(
            0,
            kind as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The first limit that tripped this statement, if any.
    pub fn trip_label(&self) -> Option<&'static str> {
        GuardTrip::from_u8(self.tripped.load(Ordering::Relaxed)).map(GuardTrip::label)
    }

    /// Charge `bytes` against the statement's memory scope and fail if
    /// the accounted total exceeds `PRAGMA memory_limit`. Safe to call
    /// from morsel workers (one atomic add plus one load).
    pub fn charge_mem(&self, bytes: u64) -> SqlResult<()> {
        self.mem.charge(bytes);
        self.check_mem()
    }

    /// Fail if the statement's accounted memory exceeds the limit.
    pub fn check_mem(&self) -> SqlResult<()> {
        if let Some(limit) = self.memory_limit {
            let current = self.mem.current();
            if current > limit {
                self.note_trip(GuardTrip::Memory);
                mduck_obs::metrics().guard_trip_memory.inc(1);
                return Err(SqlError::resource_exhausted(format!(
                    "query memory {} exceeds memory_limit {}",
                    mduck_obs::format_bytes(current),
                    mduck_obs::format_bytes(limit),
                )));
            }
        }
        Ok(())
    }

    /// Charge `n` rows against the budget and poll deadline/cancellation.
    /// Call at chunk boundaries.
    pub fn check_rows(&self, n: usize) -> SqlResult<()> {
        if let Some(remaining) = &self.rows_remaining {
            let n = n as u64;
            // Atomic checked subtraction: concurrent workers each charge
            // their own chunks against the one shared budget. On trip the
            // counter is pinned at 0 so the guard stays tripped.
            if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(n))
                .is_err()
            {
                remaining.store(0, Ordering::Relaxed);
                self.note_trip(GuardTrip::RowBudget);
                mduck_obs::metrics().guard_trip_row_budget.inc(1);
                return Err(SqlError::resource_exhausted(
                    "query exceeded its row budget",
                ));
            }
        }
        self.tick()
    }

    /// Poll deadline and cancellation without charging rows.
    pub fn tick(&self) -> SqlResult<()> {
        if self.cancel.is_canceled() {
            self.note_trip(GuardTrip::Cancel);
            mduck_obs::metrics().guard_trip_cancel.inc(1);
            return Err(SqlError::resource_exhausted("query canceled"));
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        // Always check on the first tick (so a statement with few chunk
        // boundaries still observes an already-expired deadline), then
        // every DEADLINE_STRIDE-th to keep Instant::now() off hot loops.
        if t == 1 || t % DEADLINE_STRIDE == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Unconditionally check the wall-clock deadline.
    pub fn check_deadline(&self) -> SqlResult<()> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                self.note_trip(GuardTrip::Timeout);
                mduck_obs::metrics().guard_trip_timeout.inc(1);
                return Err(SqlError::resource_exhausted(
                    "query exceeded its wall-clock timeout",
                ));
            }
        }
        Ok(())
    }

    /// Enter one level of subquery execution; pair with
    /// [`ExecGuard::exit_subquery`].
    pub fn enter_subquery(&self) -> SqlResult<()> {
        let d = self.subquery_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if d > self.max_subquery_depth {
            self.exit_subquery();
            self.note_trip(GuardTrip::Depth);
            mduck_obs::metrics().guard_trip_depth.inc(1);
            return Err(SqlError::resource_exhausted(format!(
                "subquery nesting exceeds {} levels",
                self.max_subquery_depth
            )));
        }
        // Correlated subqueries re-enter the executor per outer row; the
        // deadline must stay live even if every inner chunk is tiny.
        self.tick()
    }

    pub fn exit_subquery(&self) {
        // Saturating decrement (an unmatched exit must not underflow).
        let _ = self.subquery_depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let g = ExecGuard::default();
        for _ in 0..10_000 {
            g.check_rows(1 << 20).unwrap();
        }
    }

    #[test]
    fn row_budget_trips() {
        let g = ExecGuard::new(&ExecLimits::default().with_row_budget(100));
        assert!(g.check_rows(60).is_ok());
        let err = g.check_rows(60).unwrap_err();
        assert!(matches!(err, SqlError::ResourceExhausted(_)), "{err}");
        // Stays tripped.
        assert!(g.check_rows(1).is_err());
    }

    #[test]
    fn timeout_trips() {
        let g = ExecGuard::new(&ExecLimits::default().with_timeout(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        let err = g.check_deadline().unwrap_err();
        assert!(matches!(err, SqlError::ResourceExhausted(_)), "{err}");
    }

    #[test]
    fn cancellation_observed() {
        let g = ExecGuard::default();
        let h = g.cancel_handle();
        assert!(g.tick().is_ok());
        h.cancel();
        assert!(matches!(g.tick(), Err(SqlError::ResourceExhausted(_))));
    }

    #[test]
    fn budget_is_shared_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ExecGuard>();
        let g = ExecGuard::new(&ExecLimits::default().with_row_budget(1000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let _ = g.check_rows(30);
                    }
                });
            }
        });
        // 4 workers × 10 × 30 = 1200 rows charged against a shared budget
        // of 1000: the guard must have tripped and must stay tripped.
        assert!(g.check_rows(1).is_err());
    }

    #[test]
    fn memory_limit_trips_and_stays_tripped() {
        let g = ExecGuard::new(&ExecLimits::default().with_memory_limit(1000));
        assert!(g.charge_mem(600).is_ok());
        assert_eq!(g.trip_label(), None);
        let err = g.charge_mem(600).unwrap_err();
        assert!(matches!(err, SqlError::ResourceExhausted(_)), "{err}");
        assert!(format!("{err}").contains("memory_limit"), "{err}");
        assert_eq!(g.trip_label(), Some("memory"));
        // The accounted total only grows, so the guard stays tripped.
        assert!(g.check_mem().is_err());
        assert!(g.mem().peak() >= 1200);
    }

    #[test]
    fn memory_limit_shared_across_threads() {
        let g = ExecGuard::new(&ExecLimits::default().with_memory_limit(10_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _ = g.charge_mem(64);
                    }
                });
            }
        });
        // 4 × 100 × 64 = 25600 bytes against a 10 KB limit: tripped.
        assert!(g.check_mem().is_err());
        assert_eq!(g.trip_label(), Some("memory"));
        g.mem().close();
    }

    #[test]
    fn unlimited_memory_never_trips() {
        let g = ExecGuard::default();
        g.charge_mem(u64::MAX / 2).unwrap();
        assert!(g.check_mem().is_ok());
        assert_eq!(g.trip_label(), None);
        g.mem().close();
    }

    #[test]
    fn first_trip_wins_the_label() {
        let g = ExecGuard::new(
            &ExecLimits::default().with_row_budget(10).with_memory_limit(100),
        );
        let _ = g.check_rows(50);
        let _ = g.charge_mem(500);
        assert_eq!(g.trip_label(), Some("row_budget"));
        g.mem().close();
    }

    #[test]
    fn subquery_depth_bounded() {
        let g = ExecGuard::new(&ExecLimits::default().with_max_subquery_depth(2));
        g.enter_subquery().unwrap();
        g.enter_subquery().unwrap();
        assert!(g.enter_subquery().is_err());
        g.exit_subquery();
        g.exit_subquery();
        g.exit_subquery(); // saturates, no underflow
        g.enter_subquery().unwrap();
    }
}
