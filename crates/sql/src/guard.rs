//! Per-query execution guard: cancellation, wall-clock timeout, row
//! budget, and subquery-recursion limits.
//!
//! The engine is embedded in a host process, so a pathological query must
//! not be able to monopolize it. A fresh [`ExecGuard`] is created for
//! every statement from the database's [`ExecLimits`]; the executor calls
//! [`ExecGuard::check_rows`] at chunk boundaries (cheap: one branch per
//! chunk, the deadline is only consulted every few calls) and
//! [`ExecGuard::enter_subquery`] at plan-recursion points. Any exceeded
//! budget surfaces as [`SqlError::ResourceExhausted`].

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{SqlError, SqlResult};

/// Resource limits applied to every statement. The default is fully
/// permissive (embedded analytics workloads routinely run long scans);
/// servers should set a timeout and row budget.
#[derive(Debug, Clone)]
pub struct ExecLimits {
    /// Wall-clock ceiling for one statement.
    pub timeout: Option<Duration>,
    /// Ceiling on rows *materialized* by one statement, counting every
    /// operator's output, not just the final result.
    pub row_budget: Option<u64>,
    /// Ceiling on nested subquery execution depth.
    pub max_subquery_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { timeout: None, row_budget: None, max_subquery_depth: 32 }
    }
}

impl ExecLimits {
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    pub fn with_row_budget(mut self, rows: u64) -> Self {
        self.row_budget = Some(rows);
        self
    }

    pub fn with_max_subquery_depth(mut self, depth: usize) -> Self {
        self.max_subquery_depth = depth;
        self
    }
}

/// Cross-thread cancellation handle for an in-flight statement.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Request cancellation; the statement fails with
    /// `SqlError::ResourceExhausted("query canceled")` at its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// How many `check_rows`/`tick` calls go between deadline reads.
/// `Instant::now()` costs a vdso call; chunk boundaries are already
/// coarse-grained, so a small stride keeps overhead negligible while
/// bounding timeout slack to a few chunks.
const DEADLINE_STRIDE: u32 = 8;

/// The per-statement guard. Cheap to create, and `Sync`: one guard is
/// shared by reference between the coordinating thread and every morsel
/// worker, so the row budget, deadline, and cancellation are global to
/// the statement no matter how many threads execute it.
#[derive(Debug)]
pub struct ExecGuard {
    cancel: CancelHandle,
    deadline: Option<Instant>,
    /// Remaining row budget; `None` means unlimited.
    rows_remaining: Option<AtomicU64>,
    subquery_depth: AtomicUsize,
    max_subquery_depth: usize,
    ticks: AtomicU32,
}

impl Default for ExecGuard {
    fn default() -> Self {
        ExecGuard::new(&ExecLimits::default())
    }
}

impl ExecGuard {
    pub fn new(limits: &ExecLimits) -> Self {
        ExecGuard {
            cancel: CancelHandle::default(),
            deadline: limits.timeout.map(|t| Instant::now() + t),
            rows_remaining: limits.row_budget.map(AtomicU64::new),
            subquery_depth: AtomicUsize::new(0),
            max_subquery_depth: limits.max_subquery_depth,
            ticks: AtomicU32::new(0),
        }
    }

    /// The handle another thread can use to cancel this statement.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Charge `n` rows against the budget and poll deadline/cancellation.
    /// Call at chunk boundaries.
    pub fn check_rows(&self, n: usize) -> SqlResult<()> {
        if let Some(remaining) = &self.rows_remaining {
            let n = n as u64;
            // Atomic checked subtraction: concurrent workers each charge
            // their own chunks against the one shared budget. On trip the
            // counter is pinned at 0 so the guard stays tripped.
            if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(n))
                .is_err()
            {
                remaining.store(0, Ordering::Relaxed);
                mduck_obs::metrics().guard_trip_row_budget.inc(1);
                return Err(SqlError::resource_exhausted(
                    "query exceeded its row budget",
                ));
            }
        }
        self.tick()
    }

    /// Poll deadline and cancellation without charging rows.
    pub fn tick(&self) -> SqlResult<()> {
        if self.cancel.is_canceled() {
            mduck_obs::metrics().guard_trip_cancel.inc(1);
            return Err(SqlError::resource_exhausted("query canceled"));
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        // Always check on the first tick (so a statement with few chunk
        // boundaries still observes an already-expired deadline), then
        // every DEADLINE_STRIDE-th to keep Instant::now() off hot loops.
        if t == 1 || t % DEADLINE_STRIDE == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Unconditionally check the wall-clock deadline.
    pub fn check_deadline(&self) -> SqlResult<()> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                mduck_obs::metrics().guard_trip_timeout.inc(1);
                return Err(SqlError::resource_exhausted(
                    "query exceeded its wall-clock timeout",
                ));
            }
        }
        Ok(())
    }

    /// Enter one level of subquery execution; pair with
    /// [`ExecGuard::exit_subquery`].
    pub fn enter_subquery(&self) -> SqlResult<()> {
        let d = self.subquery_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if d > self.max_subquery_depth {
            self.exit_subquery();
            mduck_obs::metrics().guard_trip_depth.inc(1);
            return Err(SqlError::resource_exhausted(format!(
                "subquery nesting exceeds {} levels",
                self.max_subquery_depth
            )));
        }
        // Correlated subqueries re-enter the executor per outer row; the
        // deadline must stay live even if every inner chunk is tiny.
        self.tick()
    }

    pub fn exit_subquery(&self) {
        // Saturating decrement (an unmatched exit must not underflow).
        let _ = self.subquery_depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        let g = ExecGuard::default();
        for _ in 0..10_000 {
            g.check_rows(1 << 20).unwrap();
        }
    }

    #[test]
    fn row_budget_trips() {
        let g = ExecGuard::new(&ExecLimits::default().with_row_budget(100));
        assert!(g.check_rows(60).is_ok());
        let err = g.check_rows(60).unwrap_err();
        assert!(matches!(err, SqlError::ResourceExhausted(_)), "{err}");
        // Stays tripped.
        assert!(g.check_rows(1).is_err());
    }

    #[test]
    fn timeout_trips() {
        let g = ExecGuard::new(&ExecLimits::default().with_timeout(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        let err = g.check_deadline().unwrap_err();
        assert!(matches!(err, SqlError::ResourceExhausted(_)), "{err}");
    }

    #[test]
    fn cancellation_observed() {
        let g = ExecGuard::default();
        let h = g.cancel_handle();
        assert!(g.tick().is_ok());
        h.cancel();
        assert!(matches!(g.tick(), Err(SqlError::ResourceExhausted(_))));
    }

    #[test]
    fn budget_is_shared_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ExecGuard>();
        let g = ExecGuard::new(&ExecLimits::default().with_row_budget(1000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let _ = g.check_rows(30);
                    }
                });
            }
        });
        // 4 workers × 10 × 30 = 1200 rows charged against a shared budget
        // of 1000: the guard must have tripped and must stay tripped.
        assert!(g.check_rows(1).is_err());
    }

    #[test]
    fn subquery_depth_bounded() {
        let g = ExecGuard::new(&ExecLimits::default().with_max_subquery_depth(2));
        g.enter_subquery().unwrap();
        g.enter_subquery().unwrap();
        assert!(g.enter_subquery().is_err());
        g.exit_subquery();
        g.exit_subquery();
        g.exit_subquery(); // saturates, no underflow
        g.enter_subquery().unwrap();
    }
}
