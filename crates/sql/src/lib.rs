//! # mduck-sql — the shared SQL frontend
//!
//! Lexer, parser, binder, registries, and runtime values shared by the two
//! execution engines of this workspace:
//!
//! * `quackdb` — the columnar, vectorized engine standing in for DuckDB,
//! * `mduck-rowdb` — the row-oriented Volcano engine standing in for
//!   PostgreSQL/MobilityDB.
//!
//! Sharing the frontend isolates exactly the variable the paper's
//! evaluation varies: the execution model.

pub mod ast;
pub mod binder;
pub mod bound;
pub mod builtins;
pub mod error;
pub mod eval;
pub mod guard;
pub mod introspect;
pub mod lexer;
pub mod parser;
pub mod registry;
pub mod value;

pub use ast::{BinaryOp, Expr, InsertSource, PragmaValue, SelectStmt, Statement, TableRef};
pub use binder::Binder;
pub use bound::{
    cmp_order_keys, split_conjuncts, BoundAggregate, BoundExpr, BoundFrom, BoundOrder,
    BoundSelect, Catalog, Field, Schema, SortKey,
};
pub use error::{SqlError, SqlResult};
pub use eval::{compare, eval, OuterStack, SubqueryExec};
pub use guard::{CancelHandle, ExecGuard, ExecLimits, GuardTrip};
pub use parser::{parse_script, parse_statement};
pub use registry::{downcast_partial, AggState, Registry, ScalarFn, ScalarSig};
pub use value::{ExtObject, ExtValue, LogicalType, Value};
