//! Error type for the temporal algebra.

use std::fmt;

/// Errors raised by parsing or evaluating temporal values.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalError {
    /// A literal could not be parsed.
    Parse(String),
    /// A constructor received inconsistent arguments (unordered bounds,
    /// unordered instants, empty sequence, ...).
    Invalid(String),
    /// An operation is not defined for the given subtype/interpolation.
    Unsupported(String),
    /// A geometry error bubbled up from the geo kernel.
    Geo(mduck_geo::GeoError),
    /// Timestamp/interval arithmetic overflowed.
    Overflow(String),
    /// An index or argument fell outside its valid range.
    OutOfRange(String),
    /// A size/cardinality budget was exceeded while evaluating.
    ResourceExhausted(String),
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalError::Parse(m) => write!(f, "parse error: {m}"),
            TemporalError::Invalid(m) => write!(f, "invalid argument: {m}"),
            TemporalError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            TemporalError::Geo(e) => write!(f, "geometry error: {e}"),
            TemporalError::Overflow(m) => write!(f, "overflow: {m}"),
            TemporalError::OutOfRange(m) => write!(f, "out of range: {m}"),
            TemporalError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
        }
    }
}

impl std::error::Error for TemporalError {}

impl From<mduck_geo::GeoError> for TemporalError {
    fn from(e: mduck_geo::GeoError) -> Self {
        TemporalError::Geo(e)
    }
}

/// Convenience alias used across the crate.
pub type TemporalResult<T> = Result<T, TemporalError>;
