//! Bounding boxes: `tbox` (value × time) and `stbox` (space × time).
//!
//! `stbox` is the type the paper's TRTREE index is built on (§4); `tbox`
//! bounds numeric temporal types. Literal syntax and printing follow
//! MobilityDB (`STBOX XT(((x1,y1),(x2,y2)),[t1,t2])`, `TBOXFLOAT XT(...)`).

use std::fmt;

use mduck_geo::point::{Point, Rect};
use mduck_geo::wkt::fmt_coord;
use mduck_geo::Geometry;

use crate::error::{TemporalError, TemporalResult};
use crate::set::split_srid_prefix;
use crate::span::{parse_span, FloatSpan, IntSpan, Span, TstzSpan};
use crate::time::{Interval, TimestampTz};

/// The value dimension of a [`TBox`]: integer or float span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TBoxSpan {
    Int(IntSpan),
    Float(FloatSpan),
}

impl TBoxSpan {
    fn as_float(&self) -> FloatSpan {
        match self {
            TBoxSpan::Int(s) => Span {
                lower: s.lower as f64,
                upper: s.upper as f64,
                lower_inc: s.lower_inc,
                upper_inc: s.upper_inc,
            },
            TBoxSpan::Float(s) => *s,
        }
    }
}

/// A bounding box for numeric temporal values: an optional value span and
/// an optional period; at least one dimension is present.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TBox {
    pub span: Option<TBoxSpan>,
    pub period: Option<TstzSpan>,
}

impl TBox {
    pub fn new(span: Option<TBoxSpan>, period: Option<TstzSpan>) -> TemporalResult<Self> {
        if span.is_none() && period.is_none() {
            return Err(TemporalError::Invalid("tbox needs at least one dimension".into()));
        }
        Ok(TBox { span, period })
    }

    /// Grow the time dimension by `iv` on both sides.
    pub fn expand_time(&self, iv: &Interval) -> TemporalResult<TBox> {
        let period = self
            .period
            .ok_or_else(|| TemporalError::Invalid("tbox has no time dimension".into()))?;
        let expanded = TstzSpan::new(
            period.lower.sub_interval(iv),
            period.upper.add_interval(iv),
            period.lower_inc,
            period.upper_inc,
        )?;
        Ok(TBox { span: self.span, period: Some(expanded) })
    }

    /// Grow the value dimension by `d` on both sides.
    pub fn expand_value(&self, d: f64) -> TemporalResult<TBox> {
        let span = self
            .span
            .ok_or_else(|| TemporalError::Invalid("tbox has no value dimension".into()))?
            .as_float();
        let expanded = FloatSpan::new(
            span.lower - d,
            span.upper + d,
            span.lower_inc,
            span.upper_inc,
        )?;
        Ok(TBox { span: Some(TBoxSpan::Float(expanded)), period: self.period })
    }

    /// Overlap test over the shared dimensions; errors when none is shared.
    pub fn overlaps(&self, other: &TBox) -> TemporalResult<bool> {
        let mut shared = false;
        if let (Some(a), Some(b)) = (&self.span, &other.span) {
            shared = true;
            if !a.as_float().overlaps(&b.as_float()) {
                return Ok(false);
            }
        }
        if let (Some(a), Some(b)) = (&self.period, &other.period) {
            shared = true;
            if !a.overlaps(b) {
                return Ok(false);
            }
        }
        if !shared {
            return Err(TemporalError::Invalid("tboxes share no dimension".into()));
        }
        Ok(true)
    }

    /// Containment test (`@>`) over shared dimensions; errors when the
    /// contained operand has a dimension the container lacks.
    pub fn contains(&self, other: &TBox) -> TemporalResult<bool> {
        if let Some(b) = &other.span {
            match &self.span {
                None => return Err(TemporalError::Invalid("container lacks value dim".into())),
                Some(a) => {
                    if !a.as_float().contains_span(&b.as_float()) {
                        return Ok(false);
                    }
                }
            }
        }
        if let Some(b) = &other.period {
            match &self.period {
                None => return Err(TemporalError::Invalid("container lacks time dim".into())),
                Some(a) => {
                    if !a.contains_span(b) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &TBox) -> TBox {
        let span = match (&self.span, &other.span) {
            (Some(a), Some(b)) => {
                let (fa, fb) = (a.as_float(), b.as_float());
                Some(TBoxSpan::Float(Span {
                    lower: fa.lower.min(fb.lower),
                    upper: fa.upper.max(fb.upper),
                    lower_inc: true,
                    upper_inc: true,
                }))
            }
            (Some(a), None) | (None, Some(a)) => Some(*a),
            (None, None) => None,
        };
        let period = union_period(&self.period, &other.period);
        TBox { span, period }
    }
}

fn union_period(a: &Option<TstzSpan>, b: &Option<TstzSpan>) -> Option<TstzSpan> {
    match (a, b) {
        (Some(x), Some(y)) => Some(Span {
            lower: if x.lower <= y.lower { x.lower } else { y.lower },
            upper: if x.upper >= y.upper { x.upper } else { y.upper },
            lower_inc: if x.lower <= y.lower { x.lower_inc } else { y.lower_inc },
            upper_inc: if x.upper >= y.upper { x.upper_inc } else { y.upper_inc },
        }),
        (Some(x), None) | (None, Some(x)) => Some(*x),
        (None, None) => None,
    }
}

impl fmt::Display for TBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match &self.span {
            Some(TBoxSpan::Int(_)) => "TBOXINT",
            Some(TBoxSpan::Float(_)) => "TBOXFLOAT",
            None => "TBOX",
        };
        match (&self.span, &self.period) {
            (Some(s), Some(p)) => {
                write!(f, "{tag} XT({},{})", tbox_span_str(s), period_str(p))
            }
            (Some(s), None) => write!(f, "{tag} X({})", tbox_span_str(s)),
            (None, Some(p)) => write!(f, "{tag} T({})", period_str(p)),
            (None, None) => unreachable!("tbox always has a dimension"),
        }
    }
}

fn tbox_span_str(s: &TBoxSpan) -> String {
    match s {
        TBoxSpan::Int(s) => s.to_string(),
        TBoxSpan::Float(s) => s.to_string(),
    }
}

fn period_str(p: &TstzSpan) -> String {
    p.to_string()
}

/// A spatiotemporal bounding box: optional spatial rectangle (with SRID)
/// and optional period; at least one dimension is present.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct STBox {
    pub srid: i32,
    pub rect: Option<Rect>,
    pub period: Option<TstzSpan>,
}

impl STBox {
    pub fn new(srid: i32, rect: Option<Rect>, period: Option<TstzSpan>) -> TemporalResult<Self> {
        if rect.is_none() && period.is_none() {
            return Err(TemporalError::Invalid("stbox needs at least one dimension".into()));
        }
        Ok(STBox { srid, rect, period })
    }

    /// Box around a geometry (no time dimension).
    pub fn from_geometry(g: &Geometry) -> TemporalResult<Self> {
        let rect = g
            .bounding_rect()
            .ok_or_else(|| TemporalError::Invalid("empty geometry has no stbox".into()))?;
        STBox::new(g.srid, Some(rect), None)
    }

    /// Box around a geometry valid at one instant.
    pub fn from_geometry_at(g: &Geometry, t: TimestampTz) -> TemporalResult<Self> {
        let mut b = STBox::from_geometry(g)?;
        b.period = Some(TstzSpan::singleton(t));
        Ok(b)
    }

    /// Time-only box.
    pub fn from_period(p: TstzSpan) -> Self {
        STBox { srid: 0, rect: None, period: Some(p) }
    }

    pub fn has_x(&self) -> bool {
        self.rect.is_some()
    }

    pub fn has_t(&self) -> bool {
        self.period.is_some()
    }

    /// Grow the spatial dimensions by `d` on every side (§3.5
    /// `expandSpace`).
    pub fn expand_space(&self, d: f64) -> TemporalResult<STBox> {
        let rect = self
            .rect
            .ok_or_else(|| TemporalError::Invalid("stbox has no spatial dimension".into()))?;
        let e = rect.expand_by(d);
        if e.xmin > e.xmax || e.ymin > e.ymax {
            return Err(TemporalError::Invalid("expansion made the box empty".into()));
        }
        Ok(STBox { srid: self.srid, rect: Some(e), period: self.period })
    }

    /// Grow the time dimension by `iv` on both sides (§3.5 `expandTime`).
    pub fn expand_time(&self, iv: &Interval) -> TemporalResult<STBox> {
        let period = self
            .period
            .ok_or_else(|| TemporalError::Invalid("stbox has no time dimension".into()))?;
        let expanded = TstzSpan::new(
            period.lower.sub_interval(iv),
            period.upper.add_interval(iv),
            period.lower_inc,
            period.upper_inc,
        )?;
        Ok(STBox { srid: self.srid, rect: self.rect, period: Some(expanded) })
    }

    /// Overlap test (`&&`) over shared dimensions; errors when none shared
    /// or the SRIDs differ.
    pub fn overlaps(&self, other: &STBox) -> TemporalResult<bool> {
        self.check_srid(other)?;
        let mut shared = false;
        if let (Some(a), Some(b)) = (&self.rect, &other.rect) {
            shared = true;
            if !a.intersects(b) {
                return Ok(false);
            }
        }
        if let (Some(a), Some(b)) = (&self.period, &other.period) {
            shared = true;
            if !a.overlaps(b) {
                return Ok(false);
            }
        }
        if !shared {
            return Err(TemporalError::Invalid("stboxes share no dimension".into()));
        }
        Ok(true)
    }

    /// Containment test (`@>`): `self` contains `other`.
    pub fn contains(&self, other: &STBox) -> TemporalResult<bool> {
        self.check_srid(other)?;
        if let Some(b) = &other.rect {
            match &self.rect {
                None => return Err(TemporalError::Invalid("container lacks space dim".into())),
                Some(a) => {
                    if !a.contains_rect(b) {
                        return Ok(false);
                    }
                }
            }
        }
        if let Some(b) = &other.period {
            match &self.period {
                None => return Err(TemporalError::Invalid("container lacks time dim".into())),
                Some(a) => {
                    if !a.contains_span(b) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &STBox) -> TemporalResult<STBox> {
        self.check_srid(other)?;
        let rect = match (&self.rect, &other.rect) {
            (Some(a), Some(b)) => Some(a.union(b)),
            (Some(a), None) | (None, Some(a)) => Some(*a),
            (None, None) => None,
        };
        let period = union_period(&self.period, &other.period);
        let srid = if self.srid != 0 { self.srid } else { other.srid };
        STBox::new(srid, rect, period)
    }

    fn check_srid(&self, other: &STBox) -> TemporalResult<()> {
        if self.srid != 0 && other.srid != 0 && self.srid != other.srid {
            return Err(TemporalError::Invalid(format!(
                "stbox SRIDs differ: {} vs {}",
                self.srid, other.srid
            )));
        }
        Ok(())
    }

    /// The (xmin, ymin, tmin, xmax, ymax, tmax) tuple for R-tree indexing;
    /// missing dimensions become the full axis.
    pub fn to_xyt(&self) -> ([f64; 3], [f64; 3]) {
        let (xmin, ymin, xmax, ymax) = match self.rect {
            Some(r) => (r.xmin, r.ymin, r.xmax, r.ymax),
            None => (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::INFINITY),
        };
        let (tmin, tmax) = match self.period {
            Some(p) => (p.lower.0 as f64, p.upper.0 as f64),
            None => (f64::NEG_INFINITY, f64::INFINITY),
        };
        ([xmin, ymin, tmin], [xmax, ymax, tmax])
    }

    /// Spatial-only geometry rendering of the box (a polygon, or point for
    /// degenerate boxes) — the `geometry(stbox)` cast from §4.4.
    pub fn to_geometry(&self) -> TemporalResult<Geometry> {
        let r = self
            .rect
            .ok_or_else(|| TemporalError::Invalid("stbox has no spatial dimension".into()))?;
        let g = if r.xmin == r.xmax && r.ymin == r.ymax {
            Geometry::from_point(Point::new(r.xmin, r.ymin))
        } else {
            Geometry::polygon(vec![vec![
                Point::new(r.xmin, r.ymin),
                Point::new(r.xmax, r.ymin),
                Point::new(r.xmax, r.ymax),
                Point::new(r.xmin, r.ymax),
                Point::new(r.xmin, r.ymin),
            ]])?
        };
        Ok(g.with_srid(self.srid))
    }
}

impl fmt::Display for STBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.srid != 0 {
            write!(f, "SRID={};", self.srid)?;
        }
        match (&self.rect, &self.period) {
            (Some(r), Some(p)) => write!(
                f,
                "STBOX XT((({},{}),({},{})),{})",
                fmt_coord(r.xmin, None),
                fmt_coord(r.ymin, None),
                fmt_coord(r.xmax, None),
                fmt_coord(r.ymax, None),
                p
            ),
            (Some(r), None) => write!(
                f,
                "STBOX X((({},{}),({},{})))",
                fmt_coord(r.xmin, None),
                fmt_coord(r.ymin, None),
                fmt_coord(r.xmax, None),
                fmt_coord(r.ymax, None),
            ),
            (None, Some(p)) => write!(f, "STBOX T({p})"),
            (None, None) => unreachable!("stbox always has a dimension"),
        }
    }
}

// ---------------------------------------------------------------- parsing

/// Parse an `stbox` literal:
/// `STBOX X((x1,y1),(x2,y2))`, `STBOX T([t1,t2])`,
/// `STBOX XT(((x1,y1),(x2,y2)),[t1,t2])`, with optional `SRID=n;` prefix.
pub fn parse_stbox(s: &str) -> TemporalResult<STBox> {
    let (body, srid) = split_srid_prefix(s.trim());
    let bad = || TemporalError::Parse(format!("invalid stbox {s:?}"));
    let upper = body.to_ascii_uppercase();
    if !upper.starts_with("STBOX") {
        return Err(bad());
    }
    let rest = body[5..].trim_start();
    let (flags, rest) = take_flags(rest);
    let inner = strip_parens(rest).ok_or_else(bad)?;
    match flags.as_str() {
        "X" => {
            // Accept both `STBOX X((x1,y1),(x2,y2))` (input form) and the
            // printed form with one extra layer of parentheses.
            let body = match strip_double_wrap(inner) {
                Some(unwrapped) => unwrapped,
                None => inner,
            };
            let (r, leftover) = parse_rect(body).ok_or_else(bad)?;
            if !leftover.trim().is_empty() {
                return Err(bad());
            }
            STBox::new(srid.unwrap_or(0), Some(r), None)
        }
        "T" => {
            let p: TstzSpan = parse_span(inner.trim())?;
            STBox::new(srid.unwrap_or(0), None, Some(p))
        }
        "XT" => {
            // ((x1,y1),(x2,y2)),[t1,t2] — the rect part is itself inside
            // one extra pair of parens.
            let inner = inner.trim();
            if !inner.starts_with('(') {
                return Err(bad());
            }
            let close = matching_paren(inner).ok_or_else(bad)?;
            let rect_body = &inner[1..close];
            let (r, leftover) = parse_rect(rect_body).ok_or_else(bad)?;
            if !leftover.trim().is_empty() {
                return Err(bad());
            }
            let after = inner[close + 1..].trim_start();
            let after = after.strip_prefix(',').ok_or_else(bad)?;
            let p: TstzSpan = parse_span(after.trim())?;
            STBox::new(srid.unwrap_or(0), Some(r), Some(p))
        }
        _ => Err(bad()),
    }
}

/// Parse a `tbox` literal:
/// `TBOXINT XT([1,5],[t1,t2])`, `TBOXFLOAT X([1.5,2.5])`, `TBOX T([t1,t2])`.
pub fn parse_tbox(s: &str) -> TemporalResult<TBox> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid tbox {s:?}"));
    let upper = s.to_ascii_uppercase();
    let (is_int, rest) = if upper.starts_with("TBOXINT") {
        (Some(true), s[7..].trim_start())
    } else if upper.starts_with("TBOXFLOAT") {
        (Some(false), s[9..].trim_start())
    } else if upper.starts_with("TBOX") {
        (None, s[4..].trim_start())
    } else {
        return Err(bad());
    };
    let (flags, rest) = take_flags(rest);
    let inner = strip_parens(rest).ok_or_else(bad)?;
    let make_span = |txt: &str| -> TemporalResult<TBoxSpan> {
        match is_int {
            Some(true) => Ok(TBoxSpan::Int(parse_span(txt)?)),
            _ => Ok(TBoxSpan::Float(parse_span(txt)?)),
        }
    };
    match flags.as_str() {
        "X" => TBox::new(Some(make_span(inner.trim())?), None),
        "T" => TBox::new(None, Some(parse_span(inner.trim())?)),
        "XT" => {
            let parts = crate::set::split_top_level(inner);
            if parts.len() != 2 {
                return Err(bad());
            }
            TBox::new(Some(make_span(parts[0])?), Some(parse_span(parts[1])?))
        }
        _ => Err(bad()),
    }
}

fn take_flags(s: &str) -> (String, &str) {
    let mut flags = String::new();
    let mut rest = s;
    for (i, c) in s.char_indices() {
        if c == 'X' || c == 'T' || c == 'x' || c == 't' {
            flags.push(c.to_ascii_uppercase());
        } else {
            rest = &s[i..];
            break;
        }
    }
    (flags, rest.trim_start())
}

/// If `s` is exactly one paren group wrapping the whole rect (printed
/// form), return its interior.
fn strip_double_wrap(s: &str) -> Option<&str> {
    let s = s.trim();
    if !s.starts_with('(') {
        return None;
    }
    let close = matching_paren(s)?;
    if close != s.len() - 1 {
        return None;
    }
    let interior = s[1..close].trim();
    // Interior must itself look like "(x,y),(x,y)" (starts with a group
    // that doesn't span everything).
    if interior.starts_with('(') && matching_paren(interior)? != interior.len() - 1 {
        Some(interior)
    } else {
        None
    }
}

fn strip_parens(s: &str) -> Option<&str> {
    let s = s.trim();
    if s.starts_with('(') && s.ends_with(')') {
        Some(&s[1..s.len() - 1])
    } else {
        None
    }
}

fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse `(x1,y1),(x2,y2)` returning the rect and the unparsed remainder.
fn parse_rect(s: &str) -> Option<(Rect, &str)> {
    let s = s.trim();
    let (p1, rest) = parse_pair(s)?;
    let rest = rest.trim_start().strip_prefix(',')?;
    let (p2, rest) = parse_pair(rest.trim_start())?;
    Some((Rect::new(p1.0, p1.1, p2.0, p2.1), rest))
}

fn parse_pair(s: &str) -> Option<((f64, f64), &str)> {
    let s = s.trim_start();
    let inner_end = matching_paren(s)?;
    let body = &s[1..inner_end];
    let comma = body.find(',')?;
    let x: f64 = body[..comma].trim().parse().ok()?;
    let y: f64 = body[comma + 1..].trim().parse().ok()?;
    Some(((x, y), &s[inner_end + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::parse_interval;

    #[test]
    fn stbox_x_parse_print() {
        let b = parse_stbox("STBOX X((1.0,2.0),(3.0,4.0))").unwrap();
        assert_eq!(b.rect.unwrap(), Rect::new(1.0, 2.0, 3.0, 4.0));
        assert!(b.period.is_none());
        assert_eq!(b.to_string(), "STBOX X(((1,2),(3,4)))");
    }

    #[test]
    fn stbox_xt_matches_paper_example() {
        // §3.5: expandSpace(stbox 'STBOX XT(((1.0,2.0),(1.0,2.0)),
        // [2025-01-01,2025-01-01])', 2.0)
        let b = parse_stbox("STBOX XT(((1.0,2.0),(1.0,2.0)),[2025-01-01,2025-01-01])").unwrap();
        let e = b.expand_space(2.0).unwrap();
        assert_eq!(
            e.to_string(),
            "STBOX XT(((-1,0),(3,4)),[2025-01-01 00:00:00+00, 2025-01-01 00:00:00+00])"
        );
    }

    #[test]
    fn tbox_expand_time_matches_paper_example() {
        // §3.5: expandTime(tbox 'TBOXFLOAT XT([1.0,2.0],
        // [2025-01-01,2025-01-02])', interval '1 day')
        let b = parse_tbox("TBOXFLOAT XT([1.0,2.0],[2025-01-01,2025-01-02])").unwrap();
        let e = b.expand_time(&parse_interval("1 day").unwrap()).unwrap();
        assert_eq!(
            e.to_string(),
            "TBOXFLOAT XT([1, 2],[2024-12-31 00:00:00+00, 2025-01-03 00:00:00+00])"
        );
    }

    #[test]
    fn stbox_overlap_semantics() {
        let a = parse_stbox("STBOX X((0,0),(10,10))").unwrap();
        let b = parse_stbox("STBOX X((5,5),(15,15))").unwrap();
        let c = parse_stbox("STBOX X((11,11),(12,12))").unwrap();
        assert!(a.overlaps(&b).unwrap());
        assert!(!a.overlaps(&c).unwrap());
        // Time-only vs space-only share nothing → error.
        let t = parse_stbox("STBOX T([2025-01-01, 2025-01-02])").unwrap();
        assert!(a.overlaps(&t).is_err());
        // Paper §3.5 overlap example evaluates to false.
        let traj = parse_stbox("STBOX X((1,1),(3,3))").unwrap();
        let query = parse_stbox("STBOX X((10.0,20.0),(10.0,20.0))").unwrap();
        assert!(!traj.overlaps(&query).unwrap());
    }

    #[test]
    fn stbox_xt_overlap_requires_both_dims() {
        let a = parse_stbox("STBOX XT(((0,0),(10,10)),[2025-01-01, 2025-01-02])").unwrap();
        let same_space_diff_time =
            parse_stbox("STBOX XT(((0,0),(10,10)),[2025-02-01, 2025-02-02])").unwrap();
        assert!(!a.overlaps(&same_space_diff_time).unwrap());
        let both = parse_stbox("STBOX XT(((5,5),(6,6)),[2025-01-01, 2025-01-01])").unwrap();
        assert!(a.overlaps(&both).unwrap());
    }

    #[test]
    fn stbox_contains_union() {
        let a = parse_stbox("STBOX X((0,0),(10,10))").unwrap();
        let b = parse_stbox("STBOX X((2,2),(3,3))").unwrap();
        assert!(a.contains(&b).unwrap());
        assert!(!b.contains(&a).unwrap());
        let u = a.union(&b).unwrap();
        assert_eq!(u.rect.unwrap(), Rect::new(0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn stbox_srid_handling() {
        let a = parse_stbox("SRID=4326;STBOX X((0,0),(1,1))").unwrap();
        assert_eq!(a.srid, 4326);
        assert!(a.to_string().starts_with("SRID=4326;STBOX X"));
        let b = parse_stbox("SRID=3857;STBOX X((0,0),(1,1))").unwrap();
        assert!(a.overlaps(&b).is_err());
    }

    #[test]
    fn stbox_from_geometry() {
        let g = mduck_geo::wkt::parse_wkt("SRID=7;LINESTRING(0 0, 4 2)").unwrap();
        let b = STBox::from_geometry(&g).unwrap();
        assert_eq!(b.srid, 7);
        assert_eq!(b.rect.unwrap(), Rect::new(0.0, 0.0, 4.0, 2.0));
        let poly = b.to_geometry().unwrap();
        assert_eq!(poly.srid, 7);
        assert!(mduck_geo::algorithms::geometry_covers_point(
            &poly,
            Point::new(2.0, 1.0)
        ));
    }

    #[test]
    fn stbox_to_xyt() {
        let b = parse_stbox("STBOX XT(((1,2),(3,4)),[2025-01-01, 2025-01-02])").unwrap();
        let (lo, hi) = b.to_xyt();
        assert_eq!(lo[0], 1.0);
        assert_eq!(hi[1], 4.0);
        assert!(lo[2] < hi[2]);
        let t = parse_stbox("STBOX T([2025-01-01, 2025-01-02])").unwrap();
        let (lo, _) = t.to_xyt();
        assert_eq!(lo[0], f64::NEG_INFINITY);
    }

    #[test]
    fn tbox_int_float_variants() {
        let b = parse_tbox("TBOXINT XT([1, 5],[2025-01-01, 2025-01-02])").unwrap();
        assert!(matches!(b.span, Some(TBoxSpan::Int(_))));
        assert_eq!(
            b.to_string(),
            "TBOXINT XT([1, 6),[2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00])"
        );
        let t = parse_tbox("TBOX T([2025-01-01, 2025-01-02])").unwrap();
        assert!(t.span.is_none());
        assert!(parse_tbox("TBOX").is_err());
        assert!(parse_tbox("TBOXFLOAT XT([1,2])").is_err());
    }

    #[test]
    fn tbox_overlaps_contains() {
        let a = parse_tbox("TBOXFLOAT X([0, 10])").unwrap();
        let b = parse_tbox("TBOXFLOAT X([5, 15])").unwrap();
        assert!(a.overlaps(&b).unwrap());
        assert!(!a.contains(&b).unwrap());
        assert!(a.contains(&parse_tbox("TBOXFLOAT X([1, 2])").unwrap()).unwrap());
        let u = a.union(&b);
        assert_eq!(u.span.unwrap().as_float().upper, 15.0);
        let t = parse_tbox("TBOX T([2025-01-01, 2025-01-02])").unwrap();
        assert!(a.overlaps(&t).is_err());
    }
}
