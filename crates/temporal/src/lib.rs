//! # mduck-temporal — the MEOS-equivalent temporal algebra
//!
//! A from-scratch Rust implementation of the temporal and spatiotemporal
//! type system that the MEOS C library provides to MobilityDB and (via the
//! extension this workspace reproduces) to MobilityDuck:
//!
//! * template types over ordered bases: [`span::Span`], [`set::Set`],
//!   [`spanset::SpanSet`] — `intspan`, `tstzset`, `floatspanset`, ...,
//! * bounding boxes: [`boxes::TBox`], [`boxes::STBox`],
//! * temporal types: [`temporal::Temporal`] over bool / int / float / text /
//!   geometry points (`tbool`, `tint`, `tfloat`, `ttext`, `tgeompoint`),
//!   with instant / discrete / step / linear subtypes,
//! * the MobilityDB literal grammar (parse and print),
//! * restriction, accessor, relationship, and aggregation operators,
//!   including the synchronized spatial relationships (`tDwithin`,
//!   `eDwithin`, `eIntersects`) the paper's benchmark queries use.

pub mod binser;
pub mod boxes;
pub mod error;
pub mod set;
pub mod span;
pub mod spanset;
pub mod temporal;
pub mod time;

pub use boxes::{parse_stbox, parse_tbox, STBox, TBox};
pub use error::{TemporalError, TemporalResult};
pub use set::{parse_geomset, parse_set, GeomSet, Set};
pub use span::{parse_span, FloatSpan, IntSpan, Span, TstzSpan};
pub use spanset::{parse_spanset, SpanSet, TstzSpanSet};
pub use time::{parse_date, parse_interval, parse_timestamp, Date, Interval, TimestampTz};
