//! The `spanset` template type: a normalized list of disjoint,
//! non-adjacent spans (`intspanset`, `floatspanset`, `datespanset`,
//! `tstzspanset`). `tstzspanset` is MobilityDB's *periodset* — the return
//! type of `whenTrue()` in the paper's Query 10.

use std::fmt;

use crate::error::{TemporalError, TemporalResult};
use crate::span::{parse_span, Span, SpanValue, TstzSpan};
use crate::time::{Interval, TimestampTz};

/// A non-empty, normalized set of spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSet<T: SpanValue> {
    spans: Vec<Span<T>>,
}

/// `intspanset` / `bigintspanset`.
pub type IntSpanSet = SpanSet<i64>;
/// `floatspanset`.
pub type FloatSpanSet = SpanSet<f64>;
/// `datespanset`.
pub type DateSpanSet = SpanSet<crate::time::Date>;
/// `tstzspanset` (periodset).
pub type TstzSpanSet = SpanSet<TimestampTz>;

impl<T: SpanValue> SpanSet<T> {
    /// Build from arbitrary spans: sorts, merges overlapping/adjacent ones.
    pub fn new(mut spans: Vec<Span<T>>) -> TemporalResult<Self> {
        if spans.is_empty() {
            return Err(TemporalError::Invalid("spanset must be non-empty".into()));
        }
        spans.sort_by(|a, b| a.cmp_span(b));
        let mut merged: Vec<Span<T>> = Vec::with_capacity(spans.len());
        for s in spans {
            match merged.last_mut() {
                Some(last) => match last.union_if_touching(&s) {
                    Some(u) => *last = u,
                    None => merged.push(s),
                },
                None => merged.push(s),
            }
        }
        Ok(SpanSet { spans: merged })
    }

    /// A spanset holding one span.
    pub fn from_span(span: Span<T>) -> Self {
        SpanSet { spans: vec![span] }
    }

    pub fn spans(&self) -> &[Span<T>] {
        &self.spans
    }

    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// Bounding span.
    pub fn to_span(&self) -> Span<T> {
        let first = &self.spans[0];
        let last = self.spans.last().unwrap();
        Span {
            lower: first.lower,
            upper: last.upper,
            lower_inc: first.lower_inc,
            upper_inc: last.upper_inc,
        }
    }

    pub fn contains_value(&self, v: T) -> bool {
        self.spans.iter().any(|s| s.contains_value(v))
    }

    pub fn overlaps_span(&self, other: &Span<T>) -> bool {
        self.spans.iter().any(|s| s.overlaps(other))
    }

    pub fn overlaps(&self, other: &SpanSet<T>) -> bool {
        // Merge-scan over both ordered lists.
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            let a = &self.spans[i];
            let b = &other.spans[j];
            if a.overlaps(b) {
                return true;
            }
            if a.left_of(b) {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Union with another spanset.
    pub fn union(&self, other: &SpanSet<T>) -> SpanSet<T> {
        let mut spans = self.spans.clone();
        spans.extend(other.spans.iter().copied());
        SpanSet::new(spans).expect("non-empty")
    }

    /// Intersection (`None` when empty).
    pub fn intersection(&self, other: &SpanSet<T>) -> Option<SpanSet<T>> {
        let mut out = Vec::new();
        for a in &self.spans {
            for b in &other.spans {
                if let Some(ix) = a.intersection(b) {
                    out.push(ix);
                }
            }
        }
        SpanSet::new(out).ok()
    }

    /// Intersection with a single span (`None` when empty).
    pub fn intersection_span(&self, other: &Span<T>) -> Option<SpanSet<T>> {
        let out: Vec<Span<T>> =
            self.spans.iter().filter_map(|s| s.intersection(other)).collect();
        SpanSet::new(out).ok()
    }

    /// Difference (`None` when empty).
    pub fn minus(&self, other: &SpanSet<T>) -> Option<SpanSet<T>> {
        let mut current = self.spans.clone();
        for b in &other.spans {
            let mut next = Vec::with_capacity(current.len() + 1);
            for a in current {
                next.extend(a.minus(b));
            }
            current = next;
        }
        SpanSet::new(current).ok()
    }

    /// Total width (sum over member spans), as a double.
    pub fn width(&self) -> f64 {
        self.spans.iter().map(Span::width).sum()
    }

    /// Shift every span by `delta`.
    pub fn shift(&self, delta: T::Delta) -> SpanSet<T> {
        SpanSet { spans: self.spans.iter().map(|s| s.shift(delta)).collect() }
    }
}

impl TstzSpanSet {
    /// Sum of member durations (`duration(ps, false)` in MobilityDB).
    pub fn duration(&self) -> Interval {
        Interval::from_usecs(self.spans.iter().map(|s| s.upper.0 - s.lower.0).sum())
    }

    /// Duration of the bounding period (`duration(ps, true)`).
    pub fn duration_bound(&self) -> Interval {
        self.to_span().duration()
    }
}

impl<T: SpanValue> fmt::Display for SpanSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// Parse a spanset literal `{[a, b), [c, d]}`.
pub fn parse_spanset<T: SpanValue>(s: &str) -> TemporalResult<SpanSet<T>> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid spanset {s:?}"));
    if !s.starts_with('{') || !s.ends_with('}') {
        return Err(bad());
    }
    let inner = &s[1..s.len() - 1];
    let parts = crate::set::split_top_level(inner);
    if parts.is_empty() {
        return Err(bad());
    }
    let spans: TemporalResult<Vec<Span<T>>> = parts.iter().map(|p| parse_span(p)).collect();
    SpanSet::new(spans?)
}

/// Convenience alias for periods.
pub fn parse_periodset(s: &str) -> TemporalResult<TstzSpanSet> {
    parse_spanset(s)
}

/// Convenience alias for a single period.
pub fn parse_period(s: &str) -> TemporalResult<TstzSpan> {
    parse_span(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fss(s: &str) -> FloatSpanSet {
        parse_spanset(s).unwrap()
    }

    #[test]
    fn normalization_merges() {
        let s = fss("{[3, 4], [1, 2], [2, 3]}");
        assert_eq!(s.num_spans(), 1);
        assert_eq!(s.to_string(), "{[1, 4]}");
        // Adjacent-but-open stays split.
        let s = fss("{[1, 2), (2, 3]}");
        assert_eq!(s.num_spans(), 2);
        // Adjacent closed/open merges.
        let s = fss("{[1, 2), [2, 3]}");
        assert_eq!(s.num_spans(), 1);
    }

    #[test]
    fn spanset_algebra() {
        let a = fss("{[0, 2], [4, 6]}");
        let b = fss("{[1, 5]}");
        assert!(a.overlaps(&b));
        assert_eq!(a.intersection(&b).unwrap().to_string(), "{[1, 2], [4, 5]}");
        assert_eq!(a.minus(&b).unwrap().to_string(), "{[0, 1), (5, 6]}");
        assert_eq!(a.union(&b).to_string(), "{[0, 6]}");
        assert!(a.minus(&a).is_none());
        assert!(!a.overlaps(&fss("{[2.5, 3.5]}")));
    }

    #[test]
    fn bounding_span_and_width() {
        let a = fss("{[0, 1], [9, 10]}");
        assert_eq!(a.to_span().to_string(), "[0, 10]");
        assert_eq!(a.width(), 2.0);
        assert!(a.contains_value(9.5));
        assert!(!a.contains_value(5.0));
    }

    #[test]
    fn periodset_durations() {
        let ps = parse_periodset("{[2025-01-01, 2025-01-02], [2025-01-05, 2025-01-06]}").unwrap();
        assert_eq!(ps.duration().to_string(), "2 days");
        assert_eq!(ps.duration_bound().to_string(), "5 days");
    }

    #[test]
    fn int_spanset_canonical() {
        let s: IntSpanSet = parse_spanset("{[1, 2], [3, 4]}").unwrap();
        // [1,2] = [1,3) and [3,4] = [3,5): adjacent after canonicalization.
        assert_eq!(s.num_spans(), 1);
        assert_eq!(s.to_string(), "{[1, 5)}");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_spanset::<f64>("{}").is_err());
        assert!(parse_spanset::<f64>("[1, 2]").is_err());
        assert!(parse_spanset::<f64>("{[2, 1]}").is_err());
    }
}
