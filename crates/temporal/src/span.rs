//! The `span` template type: an interval over an ordered base type
//! (`intspan`, `bigintspan`, `floatspan`, `datespan`, `tstzspan`).
//!
//! Discrete base types (integers, dates) are canonicalized to
//! lower-inclusive / upper-exclusive form exactly as MEOS does, so
//! `[1, 5]` and `[1, 6)` are the same `intspan`.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{TemporalError, TemporalResult};
use crate::time::{parse_date, parse_timestamp, Date, Interval, TimestampTz};

/// A base type over which spans can be built.
pub trait SpanValue: Copy + PartialEq + fmt::Debug {
    /// The type used to shift values of this base type.
    type Delta: Copy + fmt::Debug;
    /// Discrete types canonicalize bounds; continuous ones keep them.
    const DISCRETE: bool;

    fn cmp_v(&self, other: &Self) -> Ordering;
    /// Successor (discrete types only; continuous types return self).
    fn succ(self) -> Self;
    /// Predecessor (discrete types only).
    fn pred(self) -> Self;
    fn add_delta(self, d: Self::Delta) -> Self;
    /// `self - other` as a delta.
    fn delta_from(self, other: Self) -> Self::Delta;
    fn to_double(self) -> f64;
    fn from_double(v: f64) -> Self;
    fn parse_value(s: &str) -> TemporalResult<Self>;
    fn write_value(&self, out: &mut String);
}

impl SpanValue for i64 {
    type Delta = i64;
    const DISCRETE: bool = true;

    fn cmp_v(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
    fn succ(self) -> Self {
        self + 1
    }
    fn pred(self) -> Self {
        self - 1
    }
    fn add_delta(self, d: i64) -> Self {
        self + d
    }
    fn delta_from(self, other: Self) -> i64 {
        self - other
    }
    fn to_double(self) -> f64 {
        self as f64
    }
    fn from_double(v: f64) -> Self {
        v.round() as i64
    }
    fn parse_value(s: &str) -> TemporalResult<Self> {
        s.trim()
            .parse()
            .map_err(|_| TemporalError::Parse(format!("invalid integer {s:?}")))
    }
    fn write_value(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl SpanValue for f64 {
    type Delta = f64;
    const DISCRETE: bool = false;

    fn cmp_v(&self, other: &Self) -> Ordering {
        // total_cmp so a NaN produced by downstream arithmetic orders
        // deterministically instead of panicking; parse_value rejects
        // NaN at the input boundary.
        self.total_cmp(other)
    }
    fn succ(self) -> Self {
        self
    }
    fn pred(self) -> Self {
        self
    }
    fn add_delta(self, d: f64) -> Self {
        self + d
    }
    fn delta_from(self, other: Self) -> f64 {
        self - other
    }
    fn to_double(self) -> f64 {
        self
    }
    fn from_double(v: f64) -> Self {
        v
    }
    fn parse_value(s: &str) -> TemporalResult<Self> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| TemporalError::Parse(format!("invalid float {s:?}")))?;
        if v.is_nan() {
            return Err(TemporalError::Parse("NaN is not a valid span value".into()));
        }
        Ok(v)
    }
    fn write_value(&self, out: &mut String) {
        out.push_str(&mduck_geo::wkt::fmt_coord(*self, None));
    }
}

impl SpanValue for Date {
    type Delta = i32;
    const DISCRETE: bool = true;

    fn cmp_v(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
    fn succ(self) -> Self {
        Date(self.0 + 1)
    }
    fn pred(self) -> Self {
        Date(self.0 - 1)
    }
    fn add_delta(self, d: i32) -> Self {
        Date(self.0 + d)
    }
    fn delta_from(self, other: Self) -> i32 {
        self.0 - other.0
    }
    fn to_double(self) -> f64 {
        self.0 as f64
    }
    fn from_double(v: f64) -> Self {
        Date(v.round() as i32)
    }
    fn parse_value(s: &str) -> TemporalResult<Self> {
        parse_date(s)
    }
    fn write_value(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl SpanValue for TimestampTz {
    type Delta = Interval;
    const DISCRETE: bool = false;

    fn cmp_v(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
    fn succ(self) -> Self {
        self
    }
    fn pred(self) -> Self {
        self
    }
    fn add_delta(self, d: Interval) -> Self {
        self.add_interval(&d)
    }
    fn delta_from(self, other: Self) -> Interval {
        Interval::from_usecs(self.0 - other.0)
    }
    fn to_double(self) -> f64 {
        self.0 as f64
    }
    fn from_double(v: f64) -> Self {
        TimestampTz(v.round() as i64)
    }
    fn parse_value(s: &str) -> TemporalResult<Self> {
        parse_timestamp(s)
    }
    fn write_value(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

/// A non-empty interval over `T`, with inclusive/exclusive bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span<T: SpanValue> {
    pub lower: T,
    pub upper: T,
    pub lower_inc: bool,
    pub upper_inc: bool,
}

/// Span over 64-bit integers (`intspan` / `bigintspan`).
pub type IntSpan = Span<i64>;
/// Span over floats (`floatspan`).
pub type FloatSpan = Span<f64>;
/// Span over dates (`datespan`).
pub type DateSpan = Span<Date>;
/// Span over timestamps (`tstzspan`, MobilityDB's *period*).
pub type TstzSpan = Span<TimestampTz>;

impl<T: SpanValue> Span<T> {
    /// Construct with validation and (for discrete types) canonicalization.
    pub fn new(lower: T, upper: T, lower_inc: bool, upper_inc: bool) -> TemporalResult<Self> {
        let mut s = Span { lower, upper, lower_inc, upper_inc };
        if T::DISCRETE {
            if !s.lower_inc {
                s.lower = s.lower.succ();
                s.lower_inc = true;
            }
            if s.upper_inc {
                s.upper = s.upper.succ();
                s.upper_inc = false;
            }
        }
        match s.lower.cmp_v(&s.upper) {
            Ordering::Greater => {
                return Err(TemporalError::Invalid("span lower bound above upper".into()))
            }
            Ordering::Equal => {
                if !(s.lower_inc && s.upper_inc) {
                    return Err(TemporalError::Invalid("empty span".into()));
                }
            }
            Ordering::Less => {}
        }
        Ok(s)
    }

    /// Inclusive single-value span `[v, v]`.
    pub fn singleton(v: T) -> Self {
        if T::DISCRETE {
            Span { lower: v, upper: v.succ(), lower_inc: true, upper_inc: false }
        } else {
            Span { lower: v, upper: v, lower_inc: true, upper_inc: true }
        }
    }

    /// Inclusive-inclusive convenience constructor.
    pub fn closed(lower: T, upper: T) -> TemporalResult<Self> {
        Span::new(lower, upper, true, true)
    }

    /// True when the span contains value `v`.
    pub fn contains_value(&self, v: T) -> bool {
        let lo = match v.cmp_v(&self.lower) {
            Ordering::Less => false,
            Ordering::Equal => self.lower_inc,
            Ordering::Greater => true,
        };
        let hi = match v.cmp_v(&self.upper) {
            Ordering::Greater => false,
            Ordering::Equal => self.upper_inc,
            Ordering::Less => true,
        };
        lo && hi
    }

    /// True when `other` lies fully inside `self` (`@>`).
    pub fn contains_span(&self, other: &Span<T>) -> bool {
        let lo = match self.lower.cmp_v(&other.lower) {
            Ordering::Less => true,
            Ordering::Equal => self.lower_inc || !other.lower_inc,
            Ordering::Greater => false,
        };
        let hi = match self.upper.cmp_v(&other.upper) {
            Ordering::Greater => true,
            Ordering::Equal => self.upper_inc || !other.upper_inc,
            Ordering::Less => false,
        };
        lo && hi
    }

    /// Overlap test (`&&`).
    pub fn overlaps(&self, other: &Span<T>) -> bool {
        // self.lower <= other.upper && other.lower <= self.upper with
        // bound-inclusion care.
        let a = match self.lower.cmp_v(&other.upper) {
            Ordering::Less => true,
            Ordering::Equal => self.lower_inc && other.upper_inc,
            Ordering::Greater => false,
        };
        let b = match other.lower.cmp_v(&self.upper) {
            Ordering::Less => true,
            Ordering::Equal => other.lower_inc && self.upper_inc,
            Ordering::Greater => false,
        };
        a && b
    }

    /// Strictly-left test (`<<`).
    pub fn left_of(&self, other: &Span<T>) -> bool {
        match self.upper.cmp_v(&other.lower) {
            Ordering::Less => true,
            Ordering::Equal => !(self.upper_inc && other.lower_inc),
            Ordering::Greater => false,
        }
    }

    /// Adjacency: spans touch without overlapping (`-|-`).
    pub fn adjacent(&self, other: &Span<T>) -> bool {
        (self.upper == other.lower && (self.upper_inc != other.lower_inc))
            || (other.upper == self.lower && (other.upper_inc != self.lower_inc))
    }

    /// Intersection, `None` when disjoint.
    pub fn intersection(&self, other: &Span<T>) -> Option<Span<T>> {
        if !self.overlaps(other) {
            return None;
        }
        let (lower, lower_inc) = match self.lower.cmp_v(&other.lower) {
            Ordering::Greater => (self.lower, self.lower_inc),
            Ordering::Less => (other.lower, other.lower_inc),
            Ordering::Equal => (self.lower, self.lower_inc && other.lower_inc),
        };
        let (upper, upper_inc) = match self.upper.cmp_v(&other.upper) {
            Ordering::Less => (self.upper, self.upper_inc),
            Ordering::Greater => (other.upper, other.upper_inc),
            Ordering::Equal => (self.upper, self.upper_inc && other.upper_inc),
        };
        Span::new(lower, upper, lower_inc, upper_inc).ok()
    }

    /// Union when overlapping or adjacent, `None` otherwise.
    pub fn union_if_touching(&self, other: &Span<T>) -> Option<Span<T>> {
        if !self.overlaps(other) && !self.adjacent(other) {
            return None;
        }
        let (lower, lower_inc) = match self.lower.cmp_v(&other.lower) {
            Ordering::Less => (self.lower, self.lower_inc),
            Ordering::Greater => (other.lower, other.lower_inc),
            Ordering::Equal => (self.lower, self.lower_inc || other.lower_inc),
        };
        let (upper, upper_inc) = match self.upper.cmp_v(&other.upper) {
            Ordering::Greater => (self.upper, self.upper_inc),
            Ordering::Less => (other.upper, other.upper_inc),
            Ordering::Equal => (self.upper, self.upper_inc || other.upper_inc),
        };
        Some(Span { lower, upper, lower_inc, upper_inc })
    }

    /// `self` minus `other`: zero, one, or two remaining pieces.
    pub fn minus(&self, other: &Span<T>) -> Vec<Span<T>> {
        match self.intersection(other) {
            None => vec![*self],
            Some(ix) => {
                let mut out = Vec::new();
                if let Ok(left) = Span::new(self.lower, ix.lower, self.lower_inc, !ix.lower_inc) {
                    out.push(left);
                }
                if let Ok(right) = Span::new(ix.upper, self.upper, !ix.upper_inc, self.upper_inc) {
                    out.push(right);
                }
                out
            }
        }
    }

    /// Width as a double (duration in microseconds for `tstzspan`).
    pub fn width(&self) -> f64 {
        self.upper.to_double() - self.lower.to_double()
    }

    /// Distance between spans as a double, 0 when they overlap.
    pub fn distance(&self, other: &Span<T>) -> f64 {
        if self.overlaps(other) {
            0.0
        } else if self.left_of(other) {
            (other.lower.to_double() - self.upper.to_double()).max(0.0)
        } else {
            (self.lower.to_double() - other.upper.to_double()).max(0.0)
        }
    }

    /// Shift both bounds by `delta`.
    pub fn shift(&self, delta: T::Delta) -> Span<T> {
        Span {
            lower: self.lower.add_delta(delta),
            upper: self.upper.add_delta(delta),
            lower_inc: self.lower_inc,
            upper_inc: self.upper_inc,
        }
    }

    /// Rescale so the width becomes `new_width` (anchored at the lower
    /// bound); used by `scale()`/`shiftScale()`.
    pub fn scale_width(&self, new_width: f64) -> TemporalResult<Span<T>> {
        if new_width <= 0.0 {
            return Err(TemporalError::Invalid("scale width must be positive".into()));
        }
        let lower = self.lower;
        let upper = T::from_double(lower.to_double() + new_width);
        Span::new(lower, upper, self.lower_inc, true).or_else(|_| {
            Span::new(lower, upper, self.lower_inc, self.upper_inc)
        })
    }

    /// Expand each bound outward by `delta` (interpreting `delta` as an
    /// amount to subtract from lower / add to upper).
    pub fn expand(&self, delta: T::Delta) -> TemporalResult<Span<T>>
    where
        T::Delta: std::ops::Neg<Output = T::Delta>,
    {
        Span::new(
            self.lower.add_delta(-delta),
            self.upper.add_delta(delta),
            self.lower_inc,
            self.upper_inc,
        )
    }

    /// Total order for sorting: by lower bound then upper.
    pub fn cmp_span(&self, other: &Span<T>) -> Ordering {
        self.lower
            .cmp_v(&other.lower)
            .then_with(|| other.lower_inc.cmp(&self.lower_inc))
            .then_with(|| self.upper.cmp_v(&other.upper))
            .then_with(|| self.upper_inc.cmp(&other.upper_inc))
    }
}

impl TstzSpan {
    /// Duration of the period as an interval.
    pub fn duration(&self) -> Interval {
        Interval::from_usecs(self.upper.0 - self.lower.0)
    }
}

impl<T: SpanValue> fmt::Display for Span<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        s.push(if self.lower_inc { '[' } else { '(' });
        self.lower.write_value(&mut s);
        s.push_str(", ");
        self.upper.write_value(&mut s);
        s.push(if self.upper_inc { ']' } else { ')' });
        f.write_str(&s)
    }
}

/// Parse a span literal `[lo, hi)` / `(lo, hi]` with a type-specific value
/// parser supplied by `T`.
pub fn parse_span<T: SpanValue>(s: &str) -> TemporalResult<Span<T>> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid span {s:?}"));
    let mut chars = s.chars();
    let lower_inc = match chars.next() {
        Some('[') => true,
        Some('(') => false,
        _ => return Err(bad()),
    };
    let upper_inc = match s.chars().last() {
        Some(']') => true,
        Some(')') => false,
        _ => return Err(bad()),
    };
    let inner = &s[1..s.len() - 1];
    let comma = inner.find(',').ok_or_else(bad)?;
    let lower = T::parse_value(inner[..comma].trim())?;
    let upper = T::parse_value(inner[comma + 1..].trim())?;
    Span::new(lower, upper, lower_inc, upper_inc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isp(s: &str) -> IntSpan {
        parse_span(s).unwrap()
    }
    fn fsp(s: &str) -> FloatSpan {
        parse_span(s).unwrap()
    }
    fn tsp(s: &str) -> TstzSpan {
        parse_span(s).unwrap()
    }

    #[test]
    fn discrete_canonicalization() {
        assert_eq!(isp("[1, 5]"), isp("[1, 6)"));
        assert_eq!(isp("(0, 5]").lower, 1);
        assert_eq!(isp("[1, 5]").to_string(), "[1, 6)");
        // Continuous spans keep their bounds.
        assert_eq!(fsp("[1.5, 2.5]").to_string(), "[1.5, 2.5]");
        assert_eq!(fsp("(1, 2)").to_string(), "(1, 2)");
    }

    #[test]
    fn invalid_spans_rejected() {
        assert!(parse_span::<i64>("[5, 1]").is_err());
        assert!(parse_span::<f64>("(1, 1)").is_err());
        assert!(parse_span::<f64>("[1, 1]").is_ok());
        assert!(parse_span::<i64>("1, 2").is_err());
        assert!(parse_span::<i64>("[1 2]").is_err());
    }

    #[test]
    fn contains_and_overlaps() {
        let s = fsp("[1, 5)");
        assert!(s.contains_value(1.0));
        assert!(s.contains_value(4.999));
        assert!(!s.contains_value(5.0));
        assert!(s.overlaps(&fsp("[4, 9]")));
        assert!(!s.overlaps(&fsp("[5, 9]"))); // 5 excluded from s
        assert!(s.overlaps(&fsp("(0, 1]"))); // touch at included 1
        assert!(s.contains_span(&fsp("[2, 3]")));
        assert!(!s.contains_span(&fsp("[2, 5]")));
        assert!(s.contains_span(&fsp("[2, 5)")));
    }

    #[test]
    fn set_algebra() {
        let s = fsp("[0, 10]");
        let ix = s.intersection(&fsp("[5, 15]")).unwrap();
        assert_eq!(ix, fsp("[5, 10]"));
        assert!(s.intersection(&fsp("[11, 15]")).is_none());
        let u = s.union_if_touching(&fsp("[10, 15]")).unwrap();
        assert_eq!(u, fsp("[0, 15]"));
        assert!(fsp("[0, 1)").union_if_touching(&fsp("(1, 2]")).is_none());
        assert!(fsp("[0, 1)").union_if_touching(&fsp("[1, 2]")).is_some()); // adjacent
        let m = s.minus(&fsp("[3, 4]"));
        assert_eq!(m, vec![fsp("[0, 3)"), fsp("(4, 10]")]);
        assert_eq!(s.minus(&fsp("[-5, 20]")), vec![]);
        assert_eq!(s.minus(&fsp("[-5, 0]")), vec![fsp("(0, 10]")]);
    }

    #[test]
    fn left_and_adjacent() {
        assert!(fsp("[0, 1)").left_of(&fsp("[1, 2]")));
        assert!(!fsp("[0, 1]").left_of(&fsp("[1, 2]")));
        assert!(fsp("[0, 1)").adjacent(&fsp("[1, 2]")));
        assert!(!fsp("[0, 1)").adjacent(&fsp("(1, 2]")));
        assert!(!fsp("[0, 1]").adjacent(&fsp("[1, 2]"))); // overlap, not adjacency
    }

    #[test]
    fn tstz_span_duration_and_shift() {
        let p = tsp("[2025-01-01, 2025-01-03)");
        assert_eq!(p.duration().to_string(), "2 days");
        let shifted = p.shift(Interval::from_days(1));
        assert_eq!(shifted.lower.to_string(), "2025-01-02 00:00:00+00");
        assert_eq!(p.width(), 2.0 * crate::time::USECS_PER_DAY as f64);
    }

    #[test]
    fn distance_between_spans() {
        assert_eq!(isp("[1, 3]").distance(&isp("[10, 12]")), 6.0); // [1,4) .. [10,13)
        assert_eq!(fsp("[1, 3]").distance(&fsp("[2, 5]")), 0.0);
        assert_eq!(fsp("[10, 12]").distance(&fsp("[1, 3]")), 7.0);
    }

    #[test]
    fn scale_and_expand() {
        let s = fsp("[10, 20]");
        let scaled = s.scale_width(5.0).unwrap();
        assert_eq!(scaled, fsp("[10, 15]"));
        assert!(s.scale_width(-1.0).is_err());
        let e = s.expand(2.0).unwrap();
        assert_eq!(e, fsp("[8, 22]"));
    }

    #[test]
    fn singleton_spans() {
        assert_eq!(IntSpan::singleton(5).to_string(), "[5, 6)");
        assert_eq!(FloatSpan::singleton(5.0).to_string(), "[5, 5]");
        assert!(IntSpan::singleton(5).contains_value(5));
        assert!(!IntSpan::singleton(5).contains_value(6));
    }
}
