//! Timestamps, dates, and intervals.
//!
//! `timestamptz` is an i64 count of microseconds since the Unix epoch, UTC.
//! `date` is an i32 count of days since the Unix epoch. `interval` is the
//! Postgres triple (months, days, microseconds). Parsing accepts the subset
//! of ISO-8601 / Postgres syntax that MobilityDB literals use; printing
//! matches MobilityDB's output (`2025-01-01 00:00:00+00`).

use std::fmt;
use std::ops::{Add, Sub};

use crate::error::{TemporalError, TemporalResult};

pub const USECS_PER_SEC: i64 = 1_000_000;
pub const USECS_PER_MIN: i64 = 60 * USECS_PER_SEC;
pub const USECS_PER_HOUR: i64 = 60 * USECS_PER_MIN;
pub const USECS_PER_DAY: i64 = 24 * USECS_PER_HOUR;

/// A timezone-aware timestamp: microseconds since 1970-01-01 00:00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimestampTz(pub i64);

/// A calendar date: days since 1970-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(pub i32);

/// A Postgres-style interval. Months and days are kept separate from the
/// microsecond part so that `interval '1 month'` and `interval '30 days'`
/// stay distinct, as in Postgres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Interval {
    pub months: i32,
    pub days: i32,
    pub usecs: i64,
}

// ---------------------------------------------------------------- civil date
// Howard Hinnant's algorithms: days <-> (y, m, d), valid over ±millions of
// years, branch-light.

/// Days since 1970-01-01 for a civil date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date for days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl TimestampTz {
    /// Build from civil components (UTC).
    pub fn from_ymd_hms(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> Self {
        let days = days_from_civil(y, mo, d);
        TimestampTz(
            days * USECS_PER_DAY
                + h as i64 * USECS_PER_HOUR
                + mi as i64 * USECS_PER_MIN
                + s as i64 * USECS_PER_SEC,
        )
    }

    /// Microseconds since the Unix epoch.
    #[inline]
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Truncate to the containing date.
    pub fn date(self) -> Date {
        Date(self.0.div_euclid(USECS_PER_DAY) as i32)
    }

    /// Add an interval (months shift the civil date, then days, then usecs).
    pub fn add_interval(self, iv: &Interval) -> TimestampTz {
        let mut t = self;
        if iv.months != 0 {
            let days = t.0.div_euclid(USECS_PER_DAY);
            let tod = t.0.rem_euclid(USECS_PER_DAY);
            let (y, m, d) = civil_from_days(days);
            let total_m = y * 12 + (m as i64 - 1) + iv.months as i64;
            let ny = total_m.div_euclid(12);
            let nm = (total_m.rem_euclid(12) + 1) as u32;
            let nd = d.min(days_in_month(ny, nm));
            t = TimestampTz(days_from_civil(ny, nm, nd) * USECS_PER_DAY + tod);
        }
        TimestampTz(t.0 + iv.days as i64 * USECS_PER_DAY + iv.usecs)
    }

    /// Subtract an interval.
    pub fn sub_interval(self, iv: &Interval) -> TimestampTz {
        self.add_interval(&Interval { months: -iv.months, days: -iv.days, usecs: -iv.usecs })
    }
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

impl Add<Interval> for TimestampTz {
    type Output = TimestampTz;
    fn add(self, rhs: Interval) -> TimestampTz {
        self.add_interval(&rhs)
    }
}

impl Sub for TimestampTz {
    type Output = Interval;
    /// Timestamp difference as a pure-microseconds interval (Postgres `-`).
    fn sub(self, rhs: TimestampTz) -> Interval {
        Interval::from_usecs(self.0 - rhs.0)
    }
}

impl Date {
    pub fn from_ymd(y: i64, m: u32, d: u32) -> Self {
        Date(days_from_civil(y, m, d) as i32)
    }

    /// Midnight UTC of this date.
    pub fn at_midnight(self) -> TimestampTz {
        TimestampTz(self.0 as i64 * USECS_PER_DAY)
    }
}

impl Interval {
    pub const ZERO: Interval = Interval { months: 0, days: 0, usecs: 0 };

    pub fn from_usecs(usecs: i64) -> Self {
        Interval { months: 0, days: 0, usecs }
    }

    pub fn from_days(days: i32) -> Self {
        Interval { months: 0, days, usecs: 0 }
    }

    /// Approximate total length in microseconds (month = 30 days, as
    /// Postgres does for interval comparison).
    pub fn approx_usecs(&self) -> i64 {
        (self.months as i64 * 30 + self.days as i64) * USECS_PER_DAY + self.usecs
    }

    pub fn is_zero(&self) -> bool {
        self.months == 0 && self.days == 0 && self.usecs == 0
    }

    /// Normalize a microseconds count into days+usecs for printing.
    pub fn justified(&self) -> Interval {
        let extra_days = self.usecs.div_euclid(USECS_PER_DAY);
        Interval {
            months: self.months,
            days: self.days + extra_days as i32,
            usecs: self.usecs.rem_euclid(USECS_PER_DAY),
        }
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            months: self.months + rhs.months,
            days: self.days + rhs.days,
            usecs: self.usecs + rhs.usecs,
        }
    }
}

// ---------------------------------------------------------------- parsing

/// Parse a timestamp: `YYYY-MM-DD[ HH:MM[:SS[.ffffff]]][±HH[:MM]|Z]`.
pub fn parse_timestamp(s: &str) -> TemporalResult<TimestampTz> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid timestamp {s:?}"));
    let bytes = s.as_bytes();
    // Date part.
    let mut i = 0;
    let read_num = |i: &mut usize, max_len: usize| -> Option<i64> {
        let start = *i;
        let mut neg = false;
        if *i < bytes.len() && bytes[*i] == b'-' && start == 0 {
            neg = true;
            *i += 1;
        }
        let digits_start = *i;
        while *i < bytes.len() && bytes[*i].is_ascii_digit() && *i - digits_start < max_len {
            *i += 1;
        }
        if *i == digits_start {
            return None;
        }
        let v: i64 = s[digits_start..*i].parse().ok()?;
        Some(if neg { -v } else { v })
    };
    let y = read_num(&mut i, 6).ok_or_else(bad)?;
    if i >= bytes.len() || bytes[i] != b'-' {
        return Err(bad());
    }
    i += 1;
    let mo = read_num(&mut i, 2).ok_or_else(bad)? as u32;
    if i >= bytes.len() || bytes[i] != b'-' {
        return Err(bad());
    }
    i += 1;
    let d = read_num(&mut i, 2).ok_or_else(bad)? as u32;
    if !(1..=12).contains(&mo) || d < 1 || d > days_in_month(y, mo) {
        return Err(bad());
    }
    let mut usecs = days_from_civil(y, mo, d) * USECS_PER_DAY;

    // Optional time part.
    if i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'T') {
        i += 1;
        let h = read_num(&mut i, 2).ok_or_else(bad)?;
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(bad());
        }
        i += 1;
        let mi = read_num(&mut i, 2).ok_or_else(bad)?;
        let mut sec = 0i64;
        let mut frac = 0i64;
        if i < bytes.len() && bytes[i] == b':' {
            i += 1;
            sec = read_num(&mut i, 2).ok_or_else(bad)?;
            if i < bytes.len() && bytes[i] == b'.' {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let fs = &s[start..i];
                if fs.is_empty() || fs.len() > 6 {
                    return Err(bad());
                }
                // fs is 1..=6 ASCII digits (checked above), so this
                // cannot overflow; map_err keeps the path unwrap-free.
                frac = fs.parse::<i64>().map_err(|_| bad())? * 10i64.pow(6 - fs.len() as u32);
            }
        }
        if h > 23 || mi > 59 || sec > 60 {
            return Err(bad());
        }
        usecs += h * USECS_PER_HOUR + mi * USECS_PER_MIN + sec * USECS_PER_SEC + frac;
    }

    // Optional timezone.
    if i < bytes.len() {
        match bytes[i] {
            b'Z' | b'z' => i += 1,
            b'+' | b'-' => {
                let sign = if bytes[i] == b'+' { 1 } else { -1 };
                i += 1;
                let oh = read_num(&mut i, 2).ok_or_else(bad)?;
                let mut om = 0;
                if i < bytes.len() && bytes[i] == b':' {
                    i += 1;
                    om = read_num(&mut i, 2).ok_or_else(bad)?;
                }
                usecs -= sign * (oh * USECS_PER_HOUR + om * USECS_PER_MIN);
            }
            _ => {}
        }
    }
    if i != bytes.len() {
        return Err(bad());
    }
    Ok(TimestampTz(usecs))
}

/// Parse a date: `YYYY-MM-DD`.
pub fn parse_date(s: &str) -> TemporalResult<Date> {
    let ts = parse_timestamp(s.trim())?;
    if ts.0.rem_euclid(USECS_PER_DAY) != 0 {
        return Err(TemporalError::Parse(format!("invalid date {s:?}")));
    }
    Ok(ts.date())
}

/// Parse a Postgres-style interval: sequences of `<number> <unit>` with
/// units `us(ec)|ms|second|minute|hour|day|week|month|year` (plural or
/// abbreviated), e.g. `1 day`, `2 hours 30 minutes`, `5 minutes`.
pub fn parse_interval(s: &str) -> TemporalResult<Interval> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid interval {s:?}"));
    let mut iv = Interval::ZERO;
    let mut toks = s.split_whitespace().peekable();
    let mut any = false;
    while let Some(tok) = toks.next() {
        // Allow "<n><unit>" glued (e.g. "5min") or separate tokens.
        let (num_str, unit_inline) = split_num_unit(tok);
        let n: f64 = num_str.parse().map_err(|_| bad())?;
        let unit = if !unit_inline.is_empty() {
            unit_inline.to_string()
        } else {
            toks.next().ok_or_else(bad)?.to_ascii_lowercase()
        };
        let unit = unit.trim_end_matches('s');
        match unit {
            "year" | "yr" | "y" => iv.months += (n * 12.0) as i32,
            "month" | "mon" => iv.months += n as i32,
            "week" | "w" => iv.days += (n * 7.0) as i32,
            "day" | "d" => {
                iv.days += n.trunc() as i32;
                iv.usecs += (n.fract() * USECS_PER_DAY as f64).round() as i64;
            }
            "hour" | "hr" | "h" => iv.usecs += (n * USECS_PER_HOUR as f64).round() as i64,
            "minute" | "min" | "m" => iv.usecs += (n * USECS_PER_MIN as f64).round() as i64,
            "second" | "sec" => iv.usecs += (n * USECS_PER_SEC as f64).round() as i64,
            "millisecond" | "msec" | "ms" => iv.usecs += (n * 1_000.0).round() as i64,
            "microsecond" | "usec" | "us" => iv.usecs += n.round() as i64,
            _ => return Err(bad()),
        }
        any = true;
    }
    if !any {
        return Err(bad());
    }
    Ok(iv)
}

fn split_num_unit(tok: &str) -> (&str, &str) {
    let idx = tok
        .char_indices()
        .find(|(i, c)| c.is_ascii_alphabetic() && *i > 0)
        .map(|(i, _)| i)
        .unwrap_or(tok.len());
    (&tok[..idx], &tok[idx..].trim_start_matches(' '))
}

// ---------------------------------------------------------------- printing

impl fmt::Display for TimestampTz {
    /// MobilityDB / Postgres style: `2025-01-01 00:00:00+00`, with
    /// microseconds only when non-zero.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0.div_euclid(USECS_PER_DAY);
        let tod = self.0.rem_euclid(USECS_PER_DAY);
        let (y, mo, d) = civil_from_days(days);
        let h = tod / USECS_PER_HOUR;
        let mi = (tod / USECS_PER_MIN) % 60;
        let s = (tod / USECS_PER_SEC) % 60;
        let us = tod % USECS_PER_SEC;
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")?;
        if us != 0 {
            let frac = format!("{us:06}");
            write!(f, ".{}", frac.trim_end_matches('0'))?;
        }
        write!(f, "+00")
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = civil_from_days(self.0 as i64);
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Display for Interval {
    /// Postgres-ish: `1 year 2 mons 3 days 04:05:06`, omitting zero parts
    /// (`00:00:00` when everything is zero).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let iv = self.justified();
        let mut wrote = false;
        let years = iv.months / 12;
        let months = iv.months % 12;
        if years != 0 {
            write!(f, "{years} year{}", if years.abs() == 1 { "" } else { "s" })?;
            wrote = true;
        }
        if months != 0 {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "{months} mon{}", if months.abs() == 1 { "" } else { "s" })?;
            wrote = true;
        }
        if iv.days != 0 {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "{} day{}", iv.days, if iv.days.abs() == 1 { "" } else { "s" })?;
            wrote = true;
        }
        if iv.usecs != 0 || !wrote {
            if wrote {
                write!(f, " ")?;
            }
            let neg = iv.usecs < 0;
            let us = iv.usecs.abs();
            let h = us / USECS_PER_HOUR;
            let mi = (us / USECS_PER_MIN) % 60;
            let s = (us / USECS_PER_SEC) % 60;
            let frac = us % USECS_PER_SEC;
            if neg {
                write!(f, "-")?;
            }
            write!(f, "{h:02}:{mi:02}:{s:02}")?;
            if frac != 0 {
                let fs = format!("{frac:06}");
                write!(f, ".{}", fs.trim_end_matches('0'))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip() {
        for z in [-719_468, -1, 0, 1, 18_992, 20_000, 30_000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2025, 1, 1), 20_089);
        assert_eq!(civil_from_days(20_089), (2025, 1, 1));
    }

    #[test]
    fn parse_and_print_timestamps() {
        let t = parse_timestamp("2025-01-01").unwrap();
        assert_eq!(t.to_string(), "2025-01-01 00:00:00+00");
        let t = parse_timestamp("2025-08-11 12:00:00").unwrap();
        assert_eq!(t.to_string(), "2025-08-11 12:00:00+00");
        let t = parse_timestamp("2025-01-01 10:30:15.5").unwrap();
        assert_eq!(t.to_string(), "2025-01-01 10:30:15.5+00");
        let t = parse_timestamp("2025-01-01 12:00:00+02").unwrap();
        assert_eq!(t.to_string(), "2025-01-01 10:00:00+00");
        let t = parse_timestamp("2025-01-01T00:00:00Z").unwrap();
        assert_eq!(t.to_string(), "2025-01-01 00:00:00+00");
        let t = parse_timestamp("2025-01-01 05:00:00-05:30").unwrap();
        assert_eq!(t.to_string(), "2025-01-01 10:30:00+00");
    }

    #[test]
    fn bad_timestamps_rejected() {
        for s in ["", "2025", "2025-13-01", "2025-02-30", "2025-01-01 25:00", "x", "2025-01-01x"] {
            assert!(parse_timestamp(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn date_parse_print() {
        let d = parse_date("2025-06-15").unwrap();
        assert_eq!(d.to_string(), "2025-06-15");
        assert_eq!(d.at_midnight(), parse_timestamp("2025-06-15").unwrap());
        assert!(parse_date("2025-06-15 10:00:00").is_err());
    }

    #[test]
    fn interval_parse_variants() {
        assert_eq!(parse_interval("1 day").unwrap(), Interval::from_days(1));
        assert_eq!(
            parse_interval("2 hours 30 minutes").unwrap(),
            Interval::from_usecs(2 * USECS_PER_HOUR + 30 * USECS_PER_MIN)
        );
        assert_eq!(parse_interval("1 week").unwrap(), Interval::from_days(7));
        assert_eq!(parse_interval("5 minutes").unwrap().usecs, 5 * USECS_PER_MIN);
        assert_eq!(parse_interval("1 year").unwrap().months, 12);
        assert_eq!(parse_interval("1.5 days").unwrap().usecs, USECS_PER_DAY / 2);
        assert!(parse_interval("").is_err());
        assert!(parse_interval("five days").is_err());
    }

    #[test]
    fn interval_print() {
        assert_eq!(Interval::from_days(2).to_string(), "2 days");
        assert_eq!(Interval::from_usecs(USECS_PER_HOUR).to_string(), "01:00:00");
        assert_eq!(
            (Interval { months: 14, days: 1, usecs: USECS_PER_MIN }).to_string(),
            "1 year 2 mons 1 day 00:01:00"
        );
        assert_eq!(Interval::ZERO.to_string(), "00:00:00");
        // Justification folds 25h into 1 day 1h.
        assert_eq!(Interval::from_usecs(25 * USECS_PER_HOUR).to_string(), "1 day 01:00:00");
    }

    #[test]
    fn timestamp_interval_arithmetic() {
        let t = parse_timestamp("2025-01-31").unwrap();
        let plus_month = t.add_interval(&Interval { months: 1, days: 0, usecs: 0 });
        assert_eq!(plus_month.to_string(), "2025-02-28 00:00:00+00"); // clamped
        let plus_day = t.add_interval(&Interval::from_days(1));
        assert_eq!(plus_day.to_string(), "2025-02-01 00:00:00+00");
        assert_eq!(plus_day.sub_interval(&Interval::from_days(1)), t);
        let diff = plus_day - t;
        assert_eq!(diff.usecs, USECS_PER_DAY);
    }

    #[test]
    fn leap_year_handling() {
        let t = parse_timestamp("2024-02-29").unwrap();
        assert_eq!(t.to_string(), "2024-02-29 00:00:00+00");
        assert!(parse_timestamp("2025-02-29").is_err());
        let plus_year = t.add_interval(&Interval { months: 12, days: 0, usecs: 0 });
        assert_eq!(plus_year.to_string(), "2025-02-28 00:00:00+00");
    }
}
