//! Compact binary serialization of temporal values — the equivalent of
//! MEOS's flat varlena format, in which MobilityDB stores temporal values
//! on disk and DuckDB stores them as BLOBs.
//!
//! The row engine uses this to *deform/detoast* tuples on access
//! (PostgreSQL reads heap tuples attribute by attribute and detoasts
//! varlena values before every function call); the binary form is also
//! what hashing and equality of extension values run over.

use mduck_geo::point::Point;

use crate::error::{TemporalError, TemporalResult};
use crate::span::TstzSpan;
use crate::temporal::{Interp, TGeomPoint, TInstant, TSequence, Temporal};
use crate::time::TimestampTz;
use crate::STBox;

const MAGIC_TGEOM: u8 = 0xB1;
const MAGIC_SPAN: u8 = 0xB2;
const MAGIC_STBOX: u8 = 0xB3;

fn interp_tag(i: Interp) -> u8 {
    match i {
        Interp::Discrete => 0,
        Interp::Step => 1,
        Interp::Linear => 2,
    }
}

fn tag_interp(t: u8) -> TemporalResult<Interp> {
    Ok(match t {
        0 => Interp::Discrete,
        1 => Interp::Step,
        2 => Interp::Linear,
        other => return Err(TemporalError::Parse(format!("bad interp tag {other}"))),
    })
}

/// Encode a `tgeompoint`.
pub fn tgeompoint_to_bytes(t: &TGeomPoint) -> Vec<u8> {
    let seqs = t.temp.as_sequences();
    let n_points: usize = seqs.iter().map(|s| s.num_instants()).sum();
    let mut out = Vec::with_capacity(16 + seqs.len() * 8 + n_points * 24);
    out.push(MAGIC_TGEOM);
    out.extend_from_slice(&t.srid.to_le_bytes());
    out.push(match &t.temp {
        Temporal::Instant(_) => 0u8,
        Temporal::Sequence(_) => 1,
        Temporal::SequenceSet(_) => 2,
    });
    out.extend_from_slice(&(seqs.len() as u32).to_le_bytes());
    for s in &seqs {
        out.push(interp_tag(s.interp));
        out.push(s.lower_inc as u8);
        out.push(s.upper_inc as u8);
        out.extend_from_slice(&(s.num_instants() as u32).to_le_bytes());
        for i in s.instants() {
            out.extend_from_slice(&i.value.x.to_le_bytes());
            out.extend_from_slice(&i.value.y.to_le_bytes());
            out.extend_from_slice(&i.t.0.to_le_bytes());
        }
    }
    out
}

/// Decode a `tgeompoint`.
pub fn tgeompoint_from_bytes(b: &[u8]) -> TemporalResult<TGeomPoint> {
    let mut r = Reader { b, pos: 0 };
    if r.u8()? != MAGIC_TGEOM {
        return Err(TemporalError::Parse("bad tgeompoint magic".into()));
    }
    let srid = r.i32()?;
    let subtype = r.u8()?;
    let n_seqs = r.u32()? as usize;
    if n_seqs > b.len() {
        return Err(TemporalError::Parse("implausible sequence count".into()));
    }
    let mut seqs = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        let interp = tag_interp(r.u8()?)?;
        let lower_inc = r.u8()? != 0;
        let upper_inc = r.u8()? != 0;
        let n = r.u32()? as usize;
        if n > b.len() / 24 + 1 {
            return Err(TemporalError::Parse("implausible instant count".into()));
        }
        let mut instants = Vec::with_capacity(n);
        for _ in 0..n {
            let x = r.f64()?;
            let y = r.f64()?;
            let t = TimestampTz(r.i64()?);
            instants.push(TInstant::new(Point::new(x, y), t));
        }
        seqs.push(TSequence::new(instants, lower_inc, upper_inc, interp)?);
    }
    let temp = match subtype {
        0 => {
            let s = seqs
                .into_iter()
                .next()
                .ok_or_else(|| TemporalError::Parse("instant without sequence".into()))?;
            Temporal::Instant(s.instants()[0].clone())
        }
        _ => Temporal::from_sequences(seqs)?,
    };
    Ok(TGeomPoint::new(temp, srid))
}

/// Encode a `tstzspan`.
pub fn tstzspan_to_bytes(s: &TstzSpan) -> Vec<u8> {
    let mut out = Vec::with_capacity(19);
    out.push(MAGIC_SPAN);
    out.extend_from_slice(&s.lower.0.to_le_bytes());
    out.extend_from_slice(&s.upper.0.to_le_bytes());
    out.push(s.lower_inc as u8);
    out.push(s.upper_inc as u8);
    out
}

/// Decode a `tstzspan`.
pub fn tstzspan_from_bytes(b: &[u8]) -> TemporalResult<TstzSpan> {
    let mut r = Reader { b, pos: 0 };
    if r.u8()? != MAGIC_SPAN {
        return Err(TemporalError::Parse("bad tstzspan magic".into()));
    }
    let lower = TimestampTz(r.i64()?);
    let upper = TimestampTz(r.i64()?);
    let lower_inc = r.u8()? != 0;
    let upper_inc = r.u8()? != 0;
    TstzSpan::new(lower, upper, lower_inc, upper_inc)
}

/// Encode an `stbox`.
pub fn stbox_to_bytes(s: &STBox) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(MAGIC_STBOX);
    out.extend_from_slice(&s.srid.to_le_bytes());
    out.push(s.rect.is_some() as u8);
    out.push(s.period.is_some() as u8);
    if let Some(r) = s.rect {
        for v in [r.xmin, r.ymin, r.xmax, r.ymax] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    if let Some(p) = s.period {
        out.extend_from_slice(&p.lower.0.to_le_bytes());
        out.extend_from_slice(&p.upper.0.to_le_bytes());
        out.push(p.lower_inc as u8);
        out.push(p.upper_inc as u8);
    }
    out
}

/// Decode an `stbox`.
pub fn stbox_from_bytes(b: &[u8]) -> TemporalResult<STBox> {
    let mut r = Reader { b, pos: 0 };
    if r.u8()? != MAGIC_STBOX {
        return Err(TemporalError::Parse("bad stbox magic".into()));
    }
    let srid = r.i32()?;
    let has_rect = r.u8()? != 0;
    let has_period = r.u8()? != 0;
    let rect = if has_rect {
        Some(mduck_geo::point::Rect {
            xmin: r.f64()?,
            ymin: r.f64()?,
            xmax: r.f64()?,
            ymax: r.f64()?,
        })
    } else {
        None
    };
    let period = if has_period {
        let lower = TimestampTz(r.i64()?);
        let upper = TimestampTz(r.i64()?);
        let lower_inc = r.u8()? != 0;
        let upper_inc = r.u8()? != 0;
        Some(TstzSpan::new(lower, upper, lower_inc, upper_inc)?)
    } else {
        None
    };
    STBox::new(srid, rect, period)
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> TemporalResult<&[u8]> {
        if self.pos + n > self.b.len() {
            return Err(TemporalError::Parse("truncated binary value".into()));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn take_arr<const N: usize>(&mut self) -> TemporalResult<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
    fn u8(&mut self) -> TemporalResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> TemporalResult<u32> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }
    fn i32(&mut self) -> TemporalResult<i32> {
        Ok(i32::from_le_bytes(self.take_arr()?))
    }
    fn i64(&mut self) -> TemporalResult<i64> {
        Ok(i64::from_le_bytes(self.take_arr()?))
    }
    fn f64(&mut self) -> TemporalResult<f64> {
        Ok(f64::from_le_bytes(self.take_arr()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::parse_tgeompoint;

    #[test]
    fn tgeompoint_roundtrip() {
        for lit in [
            "Point(1 2)@2025-01-01",
            "[Point(0 0)@2025-01-01, Point(5 5)@2025-01-02)",
            "{Point(0 0)@2025-01-01, Point(1 1)@2025-01-02}",
            "SRID=3405;{[Point(0 0)@2025-01-01, Point(5 5)@2025-01-02], \
             [Point(9 9)@2025-01-03, Point(9 9)@2025-01-04]}",
        ] {
            let t = parse_tgeompoint(lit).unwrap();
            let b = tgeompoint_to_bytes(&t);
            let back = tgeompoint_from_bytes(&b).unwrap();
            assert_eq!(t, back, "roundtrip for {lit}");
        }
    }

    #[test]
    fn span_and_stbox_roundtrip() {
        let s: TstzSpan = crate::parse_span("[2025-01-01, 2025-01-03)").unwrap();
        assert_eq!(tstzspan_from_bytes(&tstzspan_to_bytes(&s)).unwrap(), s);
        for lit in [
            "STBOX X((1,2),(3,4))",
            "STBOX T([2025-01-01, 2025-01-02])",
            "SRID=3405;STBOX XT(((1,2),(3,4)),[2025-01-01, 2025-01-02])",
        ] {
            let b = crate::parse_stbox(lit).unwrap();
            assert_eq!(stbox_from_bytes(&stbox_to_bytes(&b)).unwrap(), b, "{lit}");
        }
    }

    #[test]
    fn corrupt_input_rejected() {
        let t = parse_tgeompoint("[Point(0 0)@2025-01-01, Point(5 5)@2025-01-02]").unwrap();
        let b = tgeompoint_to_bytes(&t);
        assert!(tgeompoint_from_bytes(&b[..b.len() - 3]).is_err());
        assert!(tgeompoint_from_bytes(&[]).is_err());
        let mut bad = b.clone();
        bad[0] = 0;
        assert!(tgeompoint_from_bytes(&bad).is_err());
    }
}
