//! Synchronization of two temporal values onto a common timeline — the
//! machinery beneath every binary temporal operator (`tDwithin`,
//! `tdistance`, temporal comparisons, `tand`/`tor`).

use crate::span::TstzSpan;
use crate::temporal::{Interp, TSequence, TValue, Temporal};
use crate::time::TimestampTz;

/// A stretch of time where both operands are defined, sampled at the union
/// of their instants. Between consecutive samples each operand moves
/// according to its own interpolation.
#[derive(Debug, Clone)]
pub struct SyncedSeq<A: TValue, B: TValue> {
    pub lower_inc: bool,
    pub upper_inc: bool,
    pub interp_a: Interp,
    pub interp_b: Interp,
    /// `(t, a(t), b(t))` at every distinct instant of either operand that
    /// falls in the common period, plus the period bounds themselves.
    pub samples: Vec<(TimestampTz, A, B)>,
}

impl<A: TValue, B: TValue> SyncedSeq<A, B> {
    /// The closed bounding period of the synced stretch.
    pub fn period(&self) -> TstzSpan {
        TstzSpan {
            lower: self.samples[0].0,
            upper: self.samples.last().unwrap().0,
            lower_inc: self.lower_inc,
            upper_inc: self.upper_inc || self.samples.len() == 1,
        }
    }
}

/// Synchronize two temporal values. Returns one [`SyncedSeq`] per stretch
/// of time where both are defined (empty when they never overlap).
///
/// Discrete operands contribute degenerate single-sample stretches at the
/// instants where the other operand is also defined.
pub fn synchronize<A: TValue, B: TValue>(
    a: &Temporal<A>,
    b: &Temporal<B>,
) -> Vec<SyncedSeq<A, B>> {
    let mut out = Vec::new();
    for sa in a.as_sequences() {
        for sb in b.as_sequences() {
            sync_pair(&sa, &sb, &mut out);
        }
    }
    out.sort_by_key(|s| s.samples[0].0);
    out
}

fn sync_pair<A: TValue, B: TValue>(
    sa: &TSequence<A>,
    sb: &TSequence<B>,
    out: &mut Vec<SyncedSeq<A, B>>,
) {
    // Discrete operands: only shared instants are defined.
    if sa.interp == Interp::Discrete || sb.interp == Interp::Discrete {
        for ia in sa.instants() {
            let (va, vb) = match (sa.interp, sb.interp) {
                (Interp::Discrete, _) => {
                    let Some(vb) = sb.value_at(ia.t) else { continue };
                    (ia.value.clone(), vb)
                }
                _ => unreachable!("outer loop iterates the discrete side"),
            };
            out.push(SyncedSeq {
                lower_inc: true,
                upper_inc: true,
                interp_a: Interp::Discrete,
                interp_b: Interp::Discrete,
                samples: vec![(ia.t, va, vb)],
            });
        }
        // When only sb is discrete, swap roles by sampling sa at sb's
        // instants (the branch above handled sa discrete).
        if sa.interp != Interp::Discrete {
            for ib in sb.instants() {
                let Some(va) = sa.value_at(ib.t) else { continue };
                out.push(SyncedSeq {
                    lower_inc: true,
                    upper_inc: true,
                    interp_a: Interp::Discrete,
                    interp_b: Interp::Discrete,
                    samples: vec![(ib.t, va, ib.value.clone())],
                });
            }
        }
        return;
    }

    let Some(ix) = sa.period().intersection(&sb.period()) else {
        return;
    };
    // Merged timeline: period bounds plus all interior instants of both.
    let mut times: Vec<TimestampTz> = Vec::with_capacity(sa.num_instants() + sb.num_instants());
    times.push(ix.lower);
    for i in sa.instants() {
        if i.t > ix.lower && i.t < ix.upper {
            times.push(i.t);
        }
    }
    for i in sb.instants() {
        if i.t > ix.lower && i.t < ix.upper {
            times.push(i.t);
        }
    }
    if ix.upper > ix.lower {
        times.push(ix.upper);
    }
    times.sort();
    times.dedup();
    let samples: Vec<(TimestampTz, A, B)> = times
        .into_iter()
        .map(|t| (t, sa.interpolate_raw(t), sb.interpolate_raw(t)))
        .collect();
    out.push(SyncedSeq {
        lower_inc: ix.lower_inc,
        upper_inc: ix.upper_inc,
        interp_a: sa.interp,
        interp_b: sb.interp,
        samples,
    });
}

/// Lift a binary function over two synchronized temporals, producing a new
/// temporal sampled at the merged instants (sufficient for step results;
/// linear-result turning points must be added by the caller, as
/// `tdistance` does).
pub fn lift_binary<A, B, C>(
    a: &Temporal<A>,
    b: &Temporal<B>,
    interp_out: Interp,
    f: impl Fn(&A, &B) -> C,
) -> Option<Temporal<C>>
where
    A: TValue,
    B: TValue,
    C: TValue,
{
    let synced = synchronize(a, b);
    let mut seqs: Vec<TSequence<C>> = Vec::new();
    for s in synced {
        let instants: Vec<crate::temporal::TInstant<C>> = s
            .samples
            .iter()
            .map(|(t, va, vb)| crate::temporal::TInstant::new(f(va, vb), *t))
            .collect();
        let interp = if s.samples.len() == 1 { Interp::Discrete } else { interp_out };
        if let Ok(seq) = TSequence::new(instants, s.lower_inc, s.upper_inc, interp) {
            seqs.push(seq);
        }
    }
    Temporal::from_sequences(seqs).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::parse_tfloat;
    use crate::time::parse_timestamp;

    fn ts(s: &str) -> TimestampTz {
        parse_timestamp(s).unwrap()
    }

    #[test]
    fn synchronize_merges_timelines() {
        let a = parse_tfloat("[0@2025-01-01, 10@2025-01-03]").unwrap();
        let b = parse_tfloat("[100@2025-01-02, 200@2025-01-04]").unwrap();
        let synced = synchronize(&a, &b);
        assert_eq!(synced.len(), 1);
        let s = &synced[0];
        // Common period [01-02, 01-03]; samples at both bounds.
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].0, ts("2025-01-02"));
        assert_eq!(s.samples[0].1, 5.0); // a interpolated
        assert_eq!(s.samples[0].2, 100.0);
        assert_eq!(s.samples[1].0, ts("2025-01-03"));
        assert_eq!(s.samples[1].1, 10.0);
        assert_eq!(s.samples[1].2, 150.0);
    }

    #[test]
    fn synchronize_disjoint_is_empty() {
        let a = parse_tfloat("[0@2025-01-01, 1@2025-01-02]").unwrap();
        let b = parse_tfloat("[0@2025-02-01, 1@2025-02-02]").unwrap();
        assert!(synchronize(&a, &b).is_empty());
    }

    #[test]
    fn synchronize_interior_instants() {
        let a = parse_tfloat("[0@2025-01-01, 4@2025-01-05]").unwrap();
        let b = parse_tfloat("[0@2025-01-01, 1@2025-01-02, 8@2025-01-05]").unwrap();
        let synced = synchronize(&a, &b);
        assert_eq!(synced.len(), 1);
        // Timeline: 01, 02 (from b), 05.
        assert_eq!(synced[0].samples.len(), 3);
    }

    #[test]
    fn synchronize_discrete_with_sequence() {
        let a = parse_tfloat("{1@2025-01-02, 2@2025-01-10}").unwrap();
        let b = parse_tfloat("[0@2025-01-01, 10@2025-01-03]").unwrap();
        let synced = synchronize(&a, &b);
        // Only 01-02 falls inside b.
        assert_eq!(synced.len(), 1);
        assert_eq!(synced[0].samples.len(), 1);
        assert_eq!(synced[0].samples[0].1, 1.0);
        assert_eq!(synced[0].samples[0].2, 5.0);
    }

    #[test]
    fn lift_binary_adds() {
        let a = parse_tfloat("[0@2025-01-01, 10@2025-01-03]").unwrap();
        let b = parse_tfloat("[1@2025-01-01, 1@2025-01-03]").unwrap();
        let sum = lift_binary(&a, &b, Interp::Linear, |x, y| x + y).unwrap();
        assert_eq!(sum.value_at(ts("2025-01-02")), Some(6.0));
        assert_eq!(sum.start_value(), 1.0);
        assert_eq!(sum.end_value(), 11.0);
    }
}
