//! Operations on `tbool` and temporal comparisons: `whenTrue`, negation,
//! synchronized and/or, and `tfloat`-vs-constant comparisons with exact
//! crossing instants (the building blocks of Query 10).

use crate::spanset::TstzSpanSet;
use crate::temporal::{
    lift_binary, Interp, SolveCrossing, TBool, TInstant, TSequence, TValue, Temporal,
};
use crate::time::TimestampTz;

impl TBool {
    /// The time when the value is `true`, as a period set (`whenTrue`);
    /// `None` when it never is. Step semantics: a `true` instant holds
    /// until the next instant.
    pub fn when_true(&self) -> Option<TstzSpanSet> {
        self.at_value(&true).map(|t| t.time())
    }

    /// Logical negation, preserving shape.
    pub fn tnot(&self) -> TBool {
        self.map_values(|v| !v)
    }

    /// Synchronized conjunction.
    pub fn tand(&self, other: &TBool) -> Option<TBool> {
        lift_binary(self, other, Interp::Step, |a, b| *a && *b)
    }

    /// Synchronized disjunction.
    pub fn tor(&self, other: &TBool) -> Option<TBool> {
        lift_binary(self, other, Interp::Step, |a, b| *a || *b)
    }

    /// Is the value ever `true`?
    pub fn ever_true(&self) -> bool {
        self.instants().iter().any(|i| i.value)
    }

    /// Is the value always `true`?
    pub fn always_true(&self) -> bool {
        self.instants().iter().all(|i| i.value)
    }
}

impl<V: TValue> Temporal<V> {
    /// Map every instant value through `f`, preserving structure.
    pub fn map_values<W: TValue>(&self, f: impl Fn(&V) -> W + Copy) -> Temporal<W> {
        let map_seq = |s: &TSequence<V>| {
            TSequence::new(
                s.instants()
                    .iter()
                    .map(|i| TInstant::new(f(&i.value), i.t))
                    .collect(),
                s.lower_inc,
                s.upper_inc,
                if s.interp == Interp::Linear && !W::CAN_LINEAR {
                    Interp::Step
                } else {
                    s.interp
                },
            )
            .expect("mapping preserves timestamps")
        };
        match self {
            Temporal::Instant(i) => Temporal::Instant(TInstant::new(f(&i.value), i.t)),
            Temporal::Sequence(s) => Temporal::Sequence(map_seq(s)),
            Temporal::SequenceSet(ss) => Temporal::from_sequences(
                ss.sequences().iter().map(map_seq).collect(),
            )
            .expect("non-empty"),
        }
    }
}

/// Temporal comparison of a `tfloat` against a constant, producing a
/// `tbool` with exact crossing instants on linear segments.
///
/// `cmp` receives the (possibly interpolated) value and must return the
/// boolean; `crossing_value` is the threshold at which linear segments
/// change truth (pass the constant itself).
pub fn tfloat_cmp_const(
    t: &Temporal<f64>,
    threshold: f64,
    cmp: impl Fn(f64) -> bool + Copy,
) -> TBool {
    let mut seqs: Vec<TSequence<bool>> = Vec::new();
    for s in t.as_sequences() {
        let instants = s.instants();
        if s.interp != Interp::Linear || instants.len() == 1 {
            // Step/discrete: truth changes only at instants.
            let mapped: Vec<TInstant<bool>> = instants
                .iter()
                .map(|i| TInstant::new(cmp(i.value), i.t))
                .collect();
            seqs.push(
                TSequence::new(mapped, s.lower_inc, s.upper_inc, s.interp)
                    .expect("same timestamps"),
            );
            continue;
        }
        // Linear: insert crossing instants where the segment meets the
        // threshold, then classify each slice by its midpoint and each
        // boundary instant exactly; assemble per-piece sequences so truth
        // can flip immediately after a touching instant.
        let mut times: Vec<TimestampTz> = instants.iter().map(|i| i.t).collect();
        for w in instants.windows(2) {
            if let Some(frac) = f64::solve_crossing(&w[0].value, &w[1].value, &threshold) {
                let t0 = w[0].t.0;
                let t1 = w[1].t.0;
                times.push(TimestampTz(t0 + ((t1 - t0) as f64 * frac).round() as i64));
            }
        }
        times.sort();
        times.dedup();
        let mut true_spans: Vec<crate::span::TstzSpan> = Vec::new();
        for w in times.windows(2) {
            let mid = TimestampTz((w[0].0 + w[1].0) / 2);
            if cmp(s.interpolate_raw(mid)) {
                // Bound inclusivity comes from evaluating the comparison at
                // the slice endpoints: a strict threshold crossing leaves
                // the bound open.
                let lower_inc = cmp(s.interpolate_raw(w[0]));
                let upper_inc = cmp(s.interpolate_raw(w[1]));
                true_spans.push(
                    crate::span::TstzSpan::new(w[0], w[1], lower_inc, upper_inc)
                        .expect("ordered"),
                );
            }
        }
        for &t in &times {
            if cmp(s.interpolate_raw(t)) {
                true_spans.push(crate::span::TstzSpan::singleton(t));
            }
        }
        seqs.extend(crate::temporal::spatial_tbool_from_intervals(
            &s.period(),
            true_spans,
        ));
    }
    Temporal::from_sequences(seqs).expect("input was non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::{parse_tbool, parse_tfloat};

    #[test]
    fn when_true_extracts_periods() {
        let t = parse_tbool("[t@2025-01-01, f@2025-01-02, t@2025-01-03, t@2025-01-04]").unwrap();
        let ps = t.when_true().unwrap();
        assert_eq!(ps.num_spans(), 2);
        assert_eq!(
            ps.to_string(),
            "{[2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00), \
             [2025-01-03 00:00:00+00, 2025-01-04 00:00:00+00]}"
        );
        let never = parse_tbool("[f@2025-01-01, f@2025-01-02]").unwrap();
        assert!(never.when_true().is_none());
    }

    #[test]
    fn tnot_tand_tor() {
        let a = parse_tbool("[t@2025-01-01, f@2025-01-02, f@2025-01-03]").unwrap();
        let b = parse_tbool("[t@2025-01-01, t@2025-01-03]").unwrap();
        assert!(a.tnot().ever_true());
        let and = a.tand(&b).unwrap();
        assert_eq!(and.value_at(crate::parse_timestamp("2025-01-01").unwrap()), Some(true));
        assert_eq!(
            and.value_at(crate::parse_timestamp("2025-01-02 12:00:00").unwrap()),
            Some(false)
        );
        let or = a.tor(&b).unwrap();
        assert!(or.always_true());
    }

    #[test]
    fn tfloat_cmp_finds_crossings() {
        // Distance-like curve: 10 → 0 → 10 over two days.
        let t = parse_tfloat("[10@2025-01-01, 0@2025-01-02, 10@2025-01-03]").unwrap();
        let within = tfloat_cmp_const(&t, 3.0, |v| v <= 3.0);
        let ps = within.when_true().unwrap();
        assert_eq!(ps.num_spans(), 1);
        let span = ps.spans()[0];
        // 10→0 crosses 3 at frac 0.7 of day one.
        let expected_start = crate::parse_timestamp("2025-01-01 16:48:00").unwrap();
        let expected_end = crate::parse_timestamp("2025-01-02 07:12:00").unwrap();
        assert_eq!(span.lower, expected_start);
        assert_eq!(span.upper, expected_end);
    }

    #[test]
    fn map_values_changes_type() {
        let t = parse_tfloat("[1.5@2025-01-01, 2.5@2025-01-02]").unwrap();
        let rounded: Temporal<i64> = t.map_values(|v| v.round() as i64);
        // Linear source becomes step (ints cannot be linear).
        assert_eq!(rounded.interp(), Interp::Step);
        assert_eq!(rounded.start_value(), 2);
    }
}
