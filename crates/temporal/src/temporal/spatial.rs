//! `tgeompoint`: temporal geometry points and their spatial operators —
//! `trajectory`, `length`, `speed`, `atGeometry`, `atStbox`, `tdistance`,
//! `tDwithin`, `eDwithin`, `eIntersects` — the functions the BerlinMOD
//! queries exercise.

use mduck_geo::algorithms::{clip_segment_to_rings, geometry_covers_point, intersects};
use mduck_geo::geometry::GeomData;
use mduck_geo::point::Point;
use mduck_geo::Geometry;

use crate::boxes::STBox;
use crate::error::{TemporalError, TemporalResult};
use crate::span::TstzSpan;
use crate::spanset::TstzSpanSet;
use crate::temporal::{
    parse_temporal, synchronize, Interp, TFloat, TInstant, TSequence, Temporal,
};
use crate::time::{Interval, TimestampTz, USECS_PER_SEC};

/// A temporal geometry point: a [`Temporal<Point>`] plus the SRID shared by
/// all its positions.
#[derive(Debug, Clone, PartialEq)]
pub struct TGeomPoint {
    pub temp: Temporal<Point>,
    pub srid: i32,
}

/// Parse a `tgeompoint` literal (optionally `SRID=n;`-prefixed).
pub fn parse_tgeompoint(s: &str) -> TemporalResult<TGeomPoint> {
    let (temp, srid) = parse_temporal::<Point>(s)?;
    Ok(TGeomPoint { temp, srid: srid.unwrap_or(0) })
}

impl std::fmt::Display for TGeomPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.temp)
    }
}

impl TGeomPoint {
    /// Build from a temporal point and SRID.
    pub fn new(temp: Temporal<Point>, srid: i32) -> Self {
        TGeomPoint { temp, srid }
    }

    /// An instant tgeompoint.
    pub fn instant(p: Point, t: TimestampTz, srid: i32) -> Self {
        TGeomPoint { temp: Temporal::Instant(TInstant::new(p, t)), srid }
    }

    /// A linear sequence from (point, timestamp) pairs.
    pub fn linear_seq(points: Vec<(Point, TimestampTz)>, srid: i32) -> TemporalResult<Self> {
        let instants = points
            .into_iter()
            .map(|(p, t)| TInstant::new(p, t))
            .collect();
        let seq = TSequence::new(instants, true, true, Interp::Linear)?;
        Ok(TGeomPoint { temp: Temporal::Sequence(seq), srid })
    }

    /// `asText` rendering (no SRID prefix).
    pub fn as_text(&self) -> String {
        self.temp.to_string()
    }

    /// `asEWKT` rendering (SRID prefix when known).
    pub fn as_ewkt(&self) -> String {
        if self.srid != 0 {
            format!("SRID={};{}", self.srid, self.temp)
        } else {
            self.temp.to_string()
        }
    }

    /// Bounding period (`::tstzspan` cast in Query 3).
    pub fn timespan(&self) -> TstzSpan {
        self.temp.timespan()
    }

    /// Position at a timestamp as a point geometry (`valueAtTimestamp`).
    pub fn value_at(&self, t: TimestampTz) -> Option<Geometry> {
        self.temp
            .value_at(t)
            .map(|p| Geometry::from_point(p).with_srid(self.srid))
    }

    /// Spatiotemporal bounding box (`::stbox` cast).
    pub fn stbox(&self) -> STBox {
        let mut rect = mduck_geo::point::Rect::from_point(self.temp.start_value());
        for i in self.temp.instants() {
            rect.expand_to(i.value);
        }
        STBox { srid: self.srid, rect: Some(rect), period: Some(self.temp.timespan()) }
    }

    /// The traversed geometry (`trajectory()`): a linestring for moving
    /// linear sequences, a point when stationary, a multipoint for
    /// discrete/step subtypes, and a collection across sequence sets.
    pub fn trajectory(&self) -> Geometry {
        let seqs = self.temp.as_sequences();
        let mut parts: Vec<Geometry> = Vec::new();
        for s in &seqs {
            parts.push(seq_trajectory(s));
        }
        let g = if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            mduck_geo::algorithms::collect(parts)
        };
        g.with_srid(self.srid)
    }

    /// Total length traveled, in the units of the SRID (`length()`).
    pub fn length(&self) -> f64 {
        let mut total = 0.0;
        for s in self.temp.as_sequences() {
            if s.interp == Interp::Linear {
                for w in s.instants().windows(2) {
                    total += w[0].value.distance(&w[1].value);
                }
            }
        }
        total
    }

    /// Speed as a step `tfloat` in units/second (`speed()`).
    pub fn speed(&self) -> TemporalResult<TFloat> {
        let mut seqs: Vec<TSequence<f64>> = Vec::new();
        for s in self.temp.as_sequences() {
            if s.interp != Interp::Linear || s.num_instants() < 2 {
                continue;
            }
            let mut instants: Vec<TInstant<f64>> = Vec::with_capacity(s.num_instants());
            let w = s.instants();
            for k in 0..w.len() - 1 {
                let dt = (w[k + 1].t.0 - w[k].t.0) as f64 / USECS_PER_SEC as f64;
                let v = w[k].value.distance(&w[k + 1].value) / dt;
                instants.push(TInstant::new(v, w[k].t));
            }
            let last_v = instants.last().unwrap().value;
            instants.push(TInstant::new(last_v, w.last().unwrap().t));
            seqs.push(TSequence::new(instants, s.lower_inc, s.upper_inc, Interp::Step)?);
        }
        Temporal::from_sequences(seqs)
            .map_err(|_| TemporalError::Invalid("speed undefined for non-moving value".into()))
    }

    /// Restrict in time.
    pub fn at_period(&self, p: &TstzSpan) -> Option<TGeomPoint> {
        self.temp.at_period(p).map(|t| TGeomPoint::new(t, self.srid))
    }

    /// Restrict in time by a period set.
    pub fn at_periodset(&self, ps: &TstzSpanSet) -> Option<TGeomPoint> {
        self.temp.at_periodset(ps).map(|t| TGeomPoint::new(t, self.srid))
    }

    /// Restrict to the instants where the moving point is exactly at `p`
    /// (`atValues` with a point geometry, Query 7).
    pub fn at_value(&self, p: Point) -> Option<TGeomPoint> {
        self.temp.at_value(&p).map(|t| TGeomPoint::new(t, self.srid))
    }

    /// Restrict the moving point to a geometry (`atGeometry`). Polygons
    /// keep the stretches traveled inside; points keep exact passages.
    pub fn at_geometry(&self, g: &Geometry) -> TemporalResult<Option<TGeomPoint>> {
        let mut seqs: Vec<TSequence<Point>> = Vec::new();
        for prim in g.flatten() {
            match &prim.data {
                GeomData::Point(p) => {
                    if let Some(t) = self.temp.at_value(p) {
                        seqs.extend(t.as_sequences());
                    }
                }
                GeomData::MultiPoint(ps) => {
                    for p in ps {
                        if let Some(t) = self.temp.at_value(p) {
                            seqs.extend(t.as_sequences());
                        }
                    }
                }
                GeomData::Polygon(rings) => {
                    for s in self.temp.as_sequences() {
                        restrict_seq_to_rings(&s, rings, &mut seqs);
                    }
                }
                other => {
                    return Err(TemporalError::Unsupported(format!(
                        "atGeometry over {:?} geometries",
                        std::mem::discriminant(other)
                    )))
                }
            }
        }
        seqs.sort_by_key(|s| s.start().t);
        seqs.dedup_by(|a, b| a.start().t == b.start().t && a.num_instants() == b.num_instants());
        Ok(Temporal::from_sequences(seqs)
            .ok()
            .map(|t| TGeomPoint::new(t, self.srid)))
    }

    /// Restrict to a spatiotemporal box (`atStbox`).
    pub fn at_stbox(&self, b: &STBox) -> TemporalResult<Option<TGeomPoint>> {
        let mut current = self.clone();
        if let Some(p) = &b.period {
            match current.at_period(p) {
                Some(c) => current = c,
                None => return Ok(None),
            }
        }
        if let Some(r) = &b.rect {
            let poly = Geometry::polygon(vec![vec![
                Point::new(r.xmin, r.ymin),
                Point::new(r.xmax, r.ymin),
                Point::new(r.xmax, r.ymax),
                Point::new(r.xmin, r.ymax),
                Point::new(r.xmin, r.ymin),
            ]])?;
            return current.at_geometry(&poly);
        }
        Ok(Some(current))
    }

    /// Temporal distance to another moving point (`tdistance`): a linear
    /// `tfloat` sampled at synchronized instants plus the per-segment
    /// distance minima (the same approximation MEOS makes).
    pub fn tdistance(&self, other: &TGeomPoint) -> Option<TFloat> {
        let synced = synchronize(&self.temp, &other.temp);
        let mut seqs: Vec<TSequence<f64>> = Vec::new();
        for s in synced {
            let mut instants: Vec<TInstant<f64>> = Vec::new();
            for k in 0..s.samples.len() {
                let (t, a, b) = &s.samples[k];
                instants.push(TInstant::new(a.distance(b), *t));
                if k + 1 < s.samples.len() {
                    let (t1, a1, b1) = &s.samples[k + 1];
                    // Relative motion c + v·u over u ∈ [0,1].
                    let c = *a - *b;
                    let v = (*a1 - *a) - (*b1 - *b);
                    let vv = v.dot(v);
                    if vv > 0.0 {
                        let u_star = -(c.dot(v)) / vv;
                        if u_star > 1e-9 && u_star < 1.0 - 1e-9 {
                            let tm = TimestampTz(
                                t.0 + ((t1.0 - t.0) as f64 * u_star).round() as i64,
                            );
                            if tm > *t && tm < *t1 {
                                let d = (c + v * u_star).norm();
                                instants.push(TInstant::new(d, tm));
                            }
                        }
                    }
                }
            }
            let interp = if instants.len() == 1 { Interp::Discrete } else { Interp::Linear };
            if let Ok(seq) = TSequence::new(instants, s.lower_inc, s.upper_inc, interp) {
                seqs.push(seq);
            }
        }
        Temporal::from_sequences(seqs).ok()
    }

    /// Temporal within-distance (`tDwithin`): a `tbool` that is true
    /// exactly while the two moving points are within `d` of each other.
    /// Per synchronized segment the quadratic `|c + v·u|² ≤ d²` is solved
    /// exactly.
    pub fn tdwithin(&self, other: &TGeomPoint, d: f64) -> Option<crate::temporal::TBool> {
        let synced = synchronize(&self.temp, &other.temp);
        let mut seqs: Vec<TSequence<bool>> = Vec::new();
        for s in synced {
            let period = s.period();
            let mut true_spans: Vec<TstzSpan> = Vec::new();
            if s.samples.len() == 1 {
                let (t, a, b) = &s.samples[0];
                let within = a.distance(b) <= d;
                seqs.push(
                    TSequence::new(
                        vec![TInstant::new(within, *t)],
                        true,
                        true,
                        Interp::Step,
                    )
                    .expect("singleton"),
                );
                continue;
            }
            for k in 0..s.samples.len() - 1 {
                let (t0, a0, b0) = &s.samples[k];
                let (t1, a1, b1) = &s.samples[k + 1];
                let c = *a0 - *b0;
                let v = (*a1 - *a0) - (*b1 - *b0);
                for (u0, u1) in solve_within(c, v, d) {
                    let span_lo = TimestampTz(t0.0 + ((t1.0 - t0.0) as f64 * u0).round() as i64);
                    let span_hi = TimestampTz(t0.0 + ((t1.0 - t0.0) as f64 * u1).round() as i64);
                    if let Ok(sp) = TstzSpan::new(span_lo, span_hi, true, true) {
                        true_spans.push(sp);
                    }
                }
            }
            seqs.extend(spatial_tbool_from_intervals(&period, true_spans));
        }
        Temporal::from_sequences(seqs).ok()
    }

    /// Ever within distance (`eDwithin`, Query 6 / the §6.2 close-pairs
    /// demo).
    pub fn edwithin(&self, other: &TGeomPoint, d: f64) -> bool {
        match self.tdwithin(other, d) {
            Some(t) => t.ever_true(),
            None => false,
        }
    }

    /// Always within distance (`aDwithin`), over the synchronized time.
    pub fn adwithin(&self, other: &TGeomPoint, d: f64) -> bool {
        match self.tdwithin(other, d) {
            Some(t) => t.always_true(),
            None => false,
        }
    }

    /// Ever within distance of a static geometry.
    pub fn edwithin_geo(&self, g: &Geometry, d: f64) -> bool {
        mduck_geo::algorithms::distance(&self.trajectory(), g) <= d
    }

    /// Does the moving point ever intersect the geometry
    /// (`eIntersects`)?
    pub fn eintersects(&self, g: &Geometry) -> bool {
        intersects(&self.trajectory(), g)
    }

    /// Is the moving point always inside the geometry (`aIntersects`-style
    /// check over polygons)?
    pub fn always_inside(&self, g: &Geometry) -> bool {
        // Every instant inside, and (for linear movement) every segment
        // fully inside; for convex-ish district polygons checking segment
        // midpoints alongside endpoints is exact enough for benchmarks.
        for s in self.temp.as_sequences() {
            for w in s.instants().windows(2) {
                let mid = w[0].value.lerp(&w[1].value, 0.5);
                if !geometry_covers_point(g, mid) {
                    return false;
                }
            }
            for i in s.instants() {
                if !geometry_covers_point(g, i.value) {
                    return false;
                }
            }
        }
        true
    }

    /// Shift the value in time.
    pub fn shift_time(&self, delta: &Interval) -> TGeomPoint {
        TGeomPoint::new(self.temp.shift_time(delta), self.srid)
    }
}

/// The trajectory of a single sequence.
fn seq_trajectory(s: &TSequence<Point>) -> Geometry {
    let pts: Vec<Point> = s.instants().iter().map(|i| i.value).collect();
    if s.interp == Interp::Linear && pts.len() > 1 {
        let mut dedup: Vec<Point> = Vec::with_capacity(pts.len());
        for p in pts {
            if dedup.last() != Some(&p) {
                dedup.push(p);
            }
        }
        if dedup.len() == 1 {
            Geometry::from_point(dedup[0])
        } else {
            Geometry::linestring(dedup).expect("≥2 points")
        }
    } else {
        let mut distinct: Vec<Point> = Vec::new();
        for p in pts {
            if !distinct.contains(&p) {
                distinct.push(p);
            }
        }
        if distinct.len() == 1 {
            Geometry::from_point(distinct[0])
        } else {
            Geometry::multipoint(distinct)
        }
    }
}

/// Clip one sequence against polygon rings, pushing the kept stretches.
fn restrict_seq_to_rings(
    s: &TSequence<Point>,
    rings: &[Vec<Point>],
    out: &mut Vec<TSequence<Point>>,
) {
    use mduck_geo::algorithms::point_in_rings;
    if s.interp != Interp::Linear {
        let kept: Vec<TInstant<Point>> = s
            .instants()
            .iter()
            .filter(|i| point_in_rings(i.value, rings))
            .cloned()
            .collect();
        if !kept.is_empty() {
            out.push(TSequence::discrete(kept).expect("ordered"));
        }
        return;
    }
    // Collect per-segment inside-intervals in time, then merge into runs.
    let instants = s.instants();
    let mut spans: Vec<(TimestampTz, TimestampTz)> = Vec::new();
    if instants.len() == 1 {
        if point_in_rings(instants[0].value, rings) {
            spans.push((instants[0].t, instants[0].t));
        }
    }
    for w in instants.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        for (f0, f1) in clip_segment_to_rings(a.value, b.value, rings) {
            let t0 = TimestampTz(a.t.0 + ((b.t.0 - a.t.0) as f64 * f0).round() as i64);
            let t1 = TimestampTz(a.t.0 + ((b.t.0 - a.t.0) as f64 * f1).round() as i64);
            match spans.last_mut() {
                Some(last) if last.1 >= t0 => last.1 = last.1.max(t1),
                _ => spans.push((t0, t1)),
            }
        }
    }
    for (t0, t1) in spans {
        if t0 == t1 {
            out.push(
                TSequence::new(
                    vec![TInstant::new(s.interpolate_raw(t0), t0)],
                    true,
                    true,
                    Interp::Linear,
                )
                .expect("singleton"),
            );
        } else if let Some(sub) = s.at_period(
            &TstzSpan::new(t0, t1, true, true).expect("ordered clip bounds"),
        ) {
            out.push(sub);
        }
    }
}

/// Solve `|c + v·u| ≤ d` for `u ∈ [0, 1]`; returns the (0 or 1) interval.
fn solve_within(c: Point, v: Point, d: f64) -> Vec<(f64, f64)> {
    let a = v.dot(v);
    if a == 0.0 {
        return if c.norm() <= d { vec![(0.0, 1.0)] } else { vec![] };
    }
    let b = 2.0 * c.dot(v);
    let cc = c.dot(c) - d * d;
    let disc = b * b - 4.0 * a * cc;
    if disc < 0.0 {
        return vec![];
    }
    let sq = disc.sqrt();
    let u0 = ((-b - sq) / (2.0 * a)).max(0.0);
    let u1 = ((-b + sq) / (2.0 * a)).min(1.0);
    if u0 > u1 {
        vec![]
    } else {
        vec![(u0, u1)]
    }
}

/// Build step `tbool` sequences over `period`: `true` on the (merged)
/// `true_spans`, `false` on the rest.
pub(crate) fn spatial_tbool_from_intervals(
    period: &TstzSpan,
    true_spans: Vec<TstzSpan>,
) -> Vec<TSequence<bool>> {
    let mut out: Vec<TSequence<bool>> = Vec::new();
    let make =
        |v: bool, sp: &TstzSpan| -> TSequence<bool> {
            if sp.lower == sp.upper {
                TSequence::new(vec![TInstant::new(v, sp.lower)], true, true, Interp::Step)
                    .expect("singleton")
            } else {
                TSequence::new(
                    vec![TInstant::new(v, sp.lower), TInstant::new(v, sp.upper)],
                    sp.lower_inc,
                    sp.upper_inc,
                    Interp::Step,
                )
                .expect("ordered bounds")
            }
        };
    let trues = TstzSpanSet::new(true_spans.clone()).ok();
    let trues = match trues {
        Some(ts) => match ts.intersection_span(period) {
            Some(clipped) => clipped,
            None => {
                out.push(make(false, period));
                return out;
            }
        },
        None => {
            out.push(make(false, period));
            return out;
        }
    };
    let falses = TstzSpanSet::from_span(*period).minus(&trues);
    let mut pieces: Vec<(bool, TstzSpan)> = Vec::new();
    for sp in trues.spans() {
        pieces.push((true, *sp));
    }
    if let Some(fs) = falses {
        for sp in fs.spans() {
            pieces.push((false, *sp));
        }
    }
    pieces.sort_by(|a, b| a.1.cmp_span(&b.1));
    for (v, sp) in pieces {
        out.push(make(v, &sp));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::parse_timestamp;
    use mduck_geo::wkt::{parse_wkt, to_wkt};

    fn ts(s: &str) -> TimestampTz {
        parse_timestamp(s).unwrap()
    }

    fn tg(s: &str) -> TGeomPoint {
        parse_tgeompoint(s).unwrap()
    }

    #[test]
    fn parse_print_paper_literal() {
        // The §3.5 overlap example literal.
        let t = tg("{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, Point(1 1)@2025-01-03], \
                    [Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}");
        assert_eq!(t.temp.num_instants(), 5);
        let b = t.stbox();
        assert_eq!(b.rect.unwrap(), mduck_geo::point::Rect::new(1.0, 1.0, 3.0, 3.0));
        // Paper: && STBOX X((10.0,20.0),(10.0,20.0)) is false.
        let q = crate::parse_stbox("STBOX X((10.0,20.0),(10.0,20.0))").unwrap();
        assert!(!b.overlaps(&q).unwrap());
    }

    #[test]
    fn at_time_matches_paper_example() {
        // §3.5 atTime example.
        let t = tg("{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, Point(1 1)@2025-01-03], \
                    [Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}");
        let p: TstzSpan = crate::parse_span("[2025-01-01, 2025-01-02]").unwrap();
        let r = t.at_period(&p).unwrap();
        assert_eq!(
            r.as_text(),
            "[POINT(1 1)@2025-01-01 00:00:00+00, POINT(2 2)@2025-01-02 00:00:00+00]"
        );
    }

    #[test]
    fn trajectory_and_length() {
        let t = tg("[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02, Point(3 8)@2025-01-03]");
        let traj = t.trajectory();
        assert_eq!(to_wkt(&traj, None), "LINESTRING(0 0,3 4,3 8)");
        assert_eq!(t.length(), 9.0);
        // Stationary → point.
        let still = tg("[Point(5 5)@2025-01-01, Point(5 5)@2025-01-02]");
        assert_eq!(to_wkt(&still.trajectory(), None), "POINT(5 5)");
        assert_eq!(still.length(), 0.0);
        // Discrete → multipoint.
        let disc = tg("{Point(0 0)@2025-01-01, Point(1 1)@2025-01-02}");
        assert_eq!(to_wkt(&disc.trajectory(), None), "MULTIPOINT(0 0,1 1)");
    }

    #[test]
    fn value_at_interpolates() {
        let t = tg("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]");
        let g = t.value_at(ts("2025-01-02")).unwrap();
        assert_eq!(g.as_point().unwrap(), Point::new(5.0, 0.0));
        assert!(t.value_at(ts("2026-01-01")).is_none());
    }

    #[test]
    fn at_value_finds_passage() {
        let t = tg("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]");
        let r = t.at_value(Point::new(5.0, 0.0)).unwrap();
        assert_eq!(r.temp.start_timestamp(), ts("2025-01-02"));
        assert!(t.at_value(Point::new(5.0, 1.0)).is_none());
    }

    #[test]
    fn at_geometry_polygon_clips() {
        // Move along y=5 from x=-5 to x=15; square [0,10]².
        let t = tg("[Point(-5 5)@2025-01-01, Point(15 5)@2025-01-05]");
        let square = parse_wkt("POLYGON((0 0,10 0,10 10,0 10,0 0))").unwrap();
        let r = t.at_geometry(&square).unwrap().unwrap();
        // Inside for fractions [0.25, 0.75] of 4 days → Jan 2 .. Jan 4.
        assert_eq!(r.temp.start_timestamp(), ts("2025-01-02"));
        assert_eq!(r.temp.end_timestamp(), ts("2025-01-04"));
        assert_eq!(r.length(), 10.0);
        // Fully outside → None.
        let far = parse_wkt("POLYGON((100 100,110 100,110 110,100 110,100 100))").unwrap();
        assert!(t.at_geometry(&far).unwrap().is_none());
    }

    #[test]
    fn at_stbox_restricts_both_dims() {
        let t = tg("[Point(-5 5)@2025-01-01, Point(15 5)@2025-01-05]");
        let b = crate::parse_stbox(
            "STBOX XT(((0,0),(10,10)),[2025-01-01, 2025-01-03])",
        )
        .unwrap();
        let r = t.at_stbox(&b).unwrap().unwrap();
        assert_eq!(r.temp.start_timestamp(), ts("2025-01-02"));
        assert_eq!(r.temp.end_timestamp(), ts("2025-01-03"));
    }

    #[test]
    fn tdistance_has_minimum_sample() {
        // Two points crossing: distance dips to 0 at the midpoint.
        let a = tg("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]");
        let b = tg("[Point(10 0)@2025-01-01, Point(0 0)@2025-01-03]");
        let d = a.tdistance(&b).unwrap();
        assert_eq!(d.value_at(ts("2025-01-02")), Some(0.0));
        assert_eq!(d.start_value(), 10.0);
        assert_eq!(d.end_value(), 10.0);
        assert_eq!(d.min_value(), 0.0);
    }

    #[test]
    fn tdwithin_exact_interval() {
        // Head-on at combined speed 10 units/day, within 2.5 → |20 - 10t| ≤ 2.5
        // Wait: relative position 10-2*5t... use the crossing setup above.
        let a = tg("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]");
        let b = tg("[Point(10 0)@2025-01-01, Point(0 0)@2025-01-03]");
        // Relative distance: |10 - 10u·2|? c = -10, v = +20 per 2 days.
        let w = a.tdwithin(&b, 2.0).unwrap();
        let ps = w.when_true().unwrap();
        assert_eq!(ps.num_spans(), 1);
        // |−10 + 20u| ≤ 2 → u ∈ [0.4, 0.6] of 2 days → ±4.8h around Jan 2.
        assert_eq!(ps.spans()[0].lower, ts("2025-01-01 19:12:00"));
        assert_eq!(ps.spans()[0].upper, ts("2025-01-02 04:48:00"));
        assert!(a.edwithin(&b, 2.0));
        assert!(!a.adwithin(&b, 2.0));
        // Never within 0.0... actually they touch exactly at u=0.5.
        assert!(a.edwithin(&b, 0.0));
    }

    #[test]
    fn tdwithin_parallel_never_within() {
        let a = tg("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]");
        let b = tg("[Point(0 5)@2025-01-01, Point(10 5)@2025-01-03]");
        let w = a.tdwithin(&b, 2.0).unwrap();
        assert!(w.when_true().is_none());
        assert!(!a.edwithin(&b, 2.0));
        assert!(a.edwithin(&b, 5.0));
        assert!(a.adwithin(&b, 5.0)); // constant distance 5 ≤ 5
    }

    #[test]
    fn eintersects_static_geometry() {
        let t = tg("[Point(-5 5)@2025-01-01, Point(15 5)@2025-01-05]");
        let square = parse_wkt("POLYGON((0 0,10 0,10 10,0 10,0 0))").unwrap();
        assert!(t.eintersects(&square));
        let far = parse_wkt("POLYGON((100 100,110 100,110 110,100 110,100 100))").unwrap();
        assert!(!t.eintersects(&far));
        assert!(t.edwithin_geo(&far, 200.0));
    }

    #[test]
    fn speed_step_values() {
        // 10 units in 1 day, then stationary for 1 day.
        let t = tg("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02, Point(10 0)@2025-01-03]");
        let s = t.speed().unwrap();
        let day_secs = 86_400.0;
        assert!((s.start_value() - 10.0 / day_secs).abs() < 1e-12);
        assert_eq!(s.value_at(ts("2025-01-02 12:00:00")), Some(0.0));
    }

    #[test]
    fn ewkt_includes_srid() {
        let t = parse_tgeompoint("SRID=4326;[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02]")
            .unwrap();
        assert_eq!(t.srid, 4326);
        assert!(t.as_ewkt().starts_with("SRID=4326;["));
        assert!(!t.as_text().contains("SRID"));
    }
}
