//! Parsing of temporal literals in the MobilityDB grammar:
//!
//! ```text
//! 1@2025-01-01                                      -- instant
//! {1@2025-01-01, 2@2025-01-02}                      -- discrete sequence
//! [1@2025-01-01, 2@2025-01-02)                      -- continuous sequence
//! Interp=Step;[1.0@2025-01-01, 2.0@2025-01-02]      -- step tfloat
//! {[...], [...]}                                    -- sequence set
//! SRID=4326;{[Point(1 1)@2025-01-01, ...]}          -- tgeompoint
//! ```

use crate::error::{TemporalError, TemporalResult};
use crate::set::{split_srid_prefix, split_top_level};
use crate::temporal::{Interp, TInstant, TSequence, TSequenceSet, TValue, Temporal};
use crate::time::parse_timestamp;

/// Parse any temporal literal; returns the value plus the SRID prefix when
/// one was present (meaningful for `tgeompoint`).
pub fn parse_temporal<V: TValue>(input: &str) -> TemporalResult<(Temporal<V>, Option<i32>)> {
    let s = input.trim();
    let (s, srid) = split_srid_prefix(s);
    let (s, interp_override) = split_interp_prefix(s);
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid temporal literal {input:?}"));

    let t = if s.starts_with('{') {
        if !s.ends_with('}') {
            return Err(bad());
        }
        let inner = &s[1..s.len() - 1];
        let parts = split_top_level(inner);
        if parts.is_empty() {
            return Err(bad());
        }
        if parts[0].starts_with('[') || parts[0].starts_with('(') {
            // Sequence set.
            let interp = interp_override.unwrap_or_else(V::default_interp);
            let seqs: TemporalResult<Vec<TSequence<V>>> =
                parts.iter().map(|p| parse_sequence(p, interp)).collect();
            let seqs = seqs?;
            if seqs.len() == 1 {
                Temporal::Sequence(seqs.into_iter().next().unwrap())
            } else {
                Temporal::SequenceSet(TSequenceSet::new(seqs)?)
            }
        } else {
            // Discrete sequence.
            let instants: TemporalResult<Vec<TInstant<V>>> =
                parts.iter().map(|p| parse_instant(p)).collect();
            let instants = instants?;
            if instants.len() == 1 {
                Temporal::Instant(instants.into_iter().next().unwrap())
            } else {
                Temporal::Sequence(TSequence::discrete(instants)?)
            }
        }
    } else if s.starts_with('[') || s.starts_with('(') {
        let interp = interp_override.unwrap_or_else(V::default_interp);
        Temporal::Sequence(parse_sequence(s, interp)?)
    } else {
        Temporal::Instant(parse_instant(s)?)
    };
    Ok((t, srid))
}

fn split_interp_prefix(s: &str) -> (&str, Option<Interp>) {
    let trimmed = s.trim_start();
    let lower = trimmed.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("interp=") {
        if let Some(semi) = rest.find(';') {
            let word = rest[..semi].trim();
            let interp = match word {
                "step" => Some(Interp::Step),
                "linear" => Some(Interp::Linear),
                "discrete" => Some(Interp::Discrete),
                _ => None,
            };
            if interp.is_some() {
                // +7 for "interp=", +1 for ';'
                return (&trimmed[7 + semi + 1..], interp);
            }
        }
    }
    (s, None)
}

fn parse_sequence<V: TValue>(s: &str, interp: Interp) -> TemporalResult<TSequence<V>> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid sequence {s:?}"));
    let lower_inc = match s.chars().next() {
        Some('[') => true,
        Some('(') => false,
        _ => return Err(bad()),
    };
    let upper_inc = match s.chars().last() {
        Some(']') => true,
        Some(')') => false,
        _ => return Err(bad()),
    };
    let inner = &s[1..s.len() - 1];
    let parts = split_top_level(inner);
    if parts.is_empty() {
        return Err(bad());
    }
    let instants: TemporalResult<Vec<TInstant<V>>> =
        parts.iter().map(|p| parse_instant(p)).collect();
    TSequence::new(instants?, lower_inc, upper_inc, interp)
}

fn parse_instant<V: TValue>(s: &str) -> TemporalResult<TInstant<V>> {
    let s = s.trim();
    let at = find_value_separator(s)
        .ok_or_else(|| TemporalError::Parse(format!("missing '@' in instant {s:?}")))?;
    let value = V::parse_tvalue(s[..at].trim())?;
    let t = parse_timestamp(s[at + 1..].trim())?;
    Ok(TInstant::new(value, t))
}

/// Index of the `@` separating value from timestamp: the last `@` that is
/// not inside double quotes (text values may contain `@`).
fn find_value_separator(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut result = None;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '@' if !in_quotes => result = Some(i),
            _ => {}
        }
    }
    result
}

/// Typed convenience parser for `tbool`.
pub fn parse_tbool(s: &str) -> TemporalResult<Temporal<bool>> {
    parse_temporal(s).map(|(t, _)| t)
}

/// Typed convenience parser for `tint`.
pub fn parse_tint(s: &str) -> TemporalResult<Temporal<i64>> {
    parse_temporal(s).map(|(t, _)| t)
}

/// Typed convenience parser for `tfloat`.
pub fn parse_tfloat(s: &str) -> TemporalResult<Temporal<f64>> {
    parse_temporal(s).map(|(t, _)| t)
}

/// Typed convenience parser for `ttext`.
pub fn parse_ttext(s: &str) -> TemporalResult<Temporal<String>> {
    parse_temporal(s).map(|(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_instant_forms() {
        let t = parse_tint("1@2025-01-01").unwrap();
        assert_eq!(t.to_string(), "1@2025-01-01 00:00:00+00");
        let t = parse_tbool("t@2025-01-01 12:00:00").unwrap();
        assert_eq!(t.start_value(), true);
        let t = parse_ttext(r#""hello @ there"@2025-01-01"#).unwrap();
        assert_eq!(t.start_value(), "hello @ there");
    }

    #[test]
    fn parse_discrete_sequence() {
        // The paper's §3.5 duration example literal.
        let t = parse_tint("{1@2025-01-01, 2@2025-01-02, 1@2025-01-03}").unwrap();
        assert_eq!(t.num_instants(), 3);
        assert_eq!(t.duration(true).to_string(), "2 days");
        assert_eq!(
            t.to_string(),
            "{1@2025-01-01 00:00:00+00, 2@2025-01-02 00:00:00+00, 1@2025-01-03 00:00:00+00}"
        );
    }

    #[test]
    fn parse_continuous_sequence() {
        let t = parse_tfloat("[1.5@2025-01-01, 2.5@2025-01-02)").unwrap();
        match &t {
            Temporal::Sequence(s) => {
                assert!(s.lower_inc);
                assert!(!s.upper_inc);
                assert_eq!(s.interp, Interp::Linear);
            }
            _ => panic!("expected sequence"),
        }
        assert_eq!(t.to_string(), "[1.5@2025-01-01 00:00:00+00, 2.5@2025-01-02 00:00:00+00)");
    }

    #[test]
    fn parse_step_prefix() {
        let t = parse_tfloat("Interp=Step;[1@2025-01-01, 2@2025-01-02]").unwrap();
        assert_eq!(t.interp(), Interp::Step);
        assert!(t.to_string().starts_with("Interp=Step;["));
        // tint is step by default: no prefix needed or printed.
        let t = parse_tint("[1@2025-01-01, 2@2025-01-02]").unwrap();
        assert_eq!(t.interp(), Interp::Step);
        assert!(!t.to_string().contains("Interp"));
    }

    #[test]
    fn parse_sequence_set() {
        let t = parse_tfloat("{[1@2025-01-01, 2@2025-01-02], [5@2025-01-04, 5@2025-01-05]}")
            .unwrap();
        match &t {
            Temporal::SequenceSet(ss) => assert_eq!(ss.sequences().len(), 2),
            _ => panic!("expected sequence set"),
        }
        // A one-sequence set collapses to a sequence.
        let t = parse_tfloat("{[1@2025-01-01, 2@2025-01-02]}").unwrap();
        assert!(matches!(t, Temporal::Sequence(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_tint("").is_err());
        assert!(parse_tint("1").is_err());
        assert!(parse_tint("{1@2025-01-01").is_err());
        assert!(parse_tint("[2@2025-01-02, 1@2025-01-01]").is_err());
        assert!(parse_tbool("x@2025-01-01").is_err());
    }

    #[test]
    fn roundtrip_printing() {
        for lit in [
            "1@2025-01-01 00:00:00+00",
            "{1@2025-01-01 00:00:00+00, 2@2025-01-02 00:00:00+00}",
            "[1.5@2025-01-01 00:00:00+00, 2.5@2025-01-02 00:00:00+00)",
            "{[1@2025-01-01 00:00:00+00, 2@2025-01-02 00:00:00+00], [5@2025-01-04 00:00:00+00, 5@2025-01-05 00:00:00+00]}",
        ] {
            let (t, _) = parse_temporal::<f64>(lit).unwrap();
            assert_eq!(t.to_string(), lit);
        }
    }
}
