//! Restriction operators: `atTime`, `minusTime`, `atValues`,
//! `minusValues`, `atTimestamp` — the workhorses of the paper's queries
//! (Q3's `valueAtTimestamp`, Q7's `atValues`, `atTime` from §3.5).

use crate::error::TemporalResult;
use crate::span::TstzSpan;
use crate::spanset::TstzSpanSet;
use crate::temporal::{Interp, TInstant, TSequence, TValue, Temporal};
use crate::time::TimestampTz;

impl<V: TValue> TSequence<V> {
    /// Interpolated value at `t`, ignoring bound inclusivity (used to
    /// synthesize boundary instants when restricting). `t` must lie within
    /// `[start, end]`.
    pub(crate) fn interpolate_raw(&self, t: TimestampTz) -> V {
        debug_assert!(t >= self.start().t && t <= self.end().t);
        match self.instants().binary_search_by(|i| i.t.cmp(&t)) {
            Ok(idx) => self.instants()[idx].value.clone(),
            Err(idx) => {
                let a = &self.instants()[idx - 1];
                let b = &self.instants()[idx];
                match self.interp {
                    Interp::Step | Interp::Discrete => a.value.clone(),
                    Interp::Linear => {
                        let frac = (t.0 - a.t.0) as f64 / (b.t.0 - a.t.0) as f64;
                        V::lerp(&a.value, &b.value, frac)
                    }
                }
            }
        }
    }

    /// Restrict a sequence to a period; `None` when the result is empty.
    pub fn at_period(&self, p: &TstzSpan) -> Option<TSequence<V>> {
        if self.interp == Interp::Discrete {
            let kept: Vec<TInstant<V>> = self
                .instants()
                .iter()
                .filter(|i| p.contains_value(i.t))
                .cloned()
                .collect();
            if kept.is_empty() {
                return None;
            }
            return Some(TSequence::discrete(kept).expect("filtered instants stay ordered"));
        }
        let ix = self.period().intersection(p)?;
        let mut instants: Vec<TInstant<V>> = Vec::new();
        // Boundary instant at the new lower bound.
        instants.push(TInstant::new(self.interpolate_raw(ix.lower), ix.lower));
        for i in self.instants() {
            if i.t > ix.lower && i.t < ix.upper {
                instants.push(i.clone());
            }
        }
        if ix.upper > ix.lower {
            instants.push(TInstant::new(self.interpolate_raw(ix.upper), ix.upper));
        }
        Some(
            TSequence::new(instants, ix.lower_inc, ix.upper_inc, self.interp)
                .expect("restriction preserves ordering"),
        )
    }
}

impl<V: TValue> Temporal<V> {
    /// Restrict to a period (`atTime(temp, tstzspan)`).
    pub fn at_period(&self, p: &TstzSpan) -> Option<Temporal<V>> {
        let seqs: Vec<TSequence<V>> = self
            .as_sequences()
            .iter()
            .filter_map(|s| s.at_period(p))
            .collect();
        Temporal::from_sequences(seqs).ok()
    }

    /// Restrict to a period set (`atTime(temp, tstzspanset)`).
    pub fn at_periodset(&self, ps: &TstzSpanSet) -> Option<Temporal<V>> {
        let mut seqs: Vec<TSequence<V>> = Vec::new();
        for span in ps.spans() {
            for s in self.as_sequences() {
                if let Some(r) = s.at_period(span) {
                    seqs.push(r);
                }
            }
        }
        seqs.sort_by_key(|s| s.start().t);
        Temporal::from_sequences(seqs).ok()
    }

    /// Complement restriction (`minusTime`): the parts outside `ps`.
    pub fn minus_periodset(&self, ps: &TstzSpanSet) -> Option<Temporal<V>> {
        let remaining = self.time().minus(ps)?;
        self.at_periodset(&remaining)
    }

    /// Complement restriction by a single period.
    pub fn minus_period(&self, p: &TstzSpan) -> Option<Temporal<V>> {
        self.minus_periodset(&TstzSpanSet::from_span(*p))
    }

    /// The instant at `t`, if the value is defined there.
    pub fn at_timestamp(&self, t: TimestampTz) -> Option<TInstant<V>> {
        self.value_at(t).map(|v| TInstant::new(v, t))
    }

    /// Restrict to the instants/periods where the value equals `v`
    /// (`atValues`). Works for every interpolation; linear types report
    /// crossings as single-instant sequences.
    pub fn at_value(&self, v: &V) -> Option<Temporal<V>>
    where
        V: SolveCrossing,
    {
        let mut out: Vec<TSequence<V>> = Vec::new();
        for s in self.as_sequences() {
            match s.interp {
                Interp::Discrete => {
                    let kept: Vec<TInstant<V>> = s
                        .instants()
                        .iter()
                        .filter(|i| &i.value == v)
                        .cloned()
                        .collect();
                    if !kept.is_empty() {
                        out.push(TSequence::discrete(kept).expect("ordered"));
                    }
                }
                Interp::Step => step_runs_equal(&s, v, &mut out),
                Interp::Linear => linear_pieces_equal(&s, v, &mut out),
            }
        }
        out.sort_by_key(|s| s.start().t);
        out.dedup_by(|a, b| {
            a.num_instants() == 1 && b.num_instants() == 1 && a.start().t == b.start().t
        });
        Temporal::from_sequences(out).ok()
    }

    /// Restrict to several values at once.
    pub fn at_values(&self, vs: &[V]) -> Option<Temporal<V>>
    where
        V: SolveCrossing,
    {
        let mut seqs: Vec<TSequence<V>> = Vec::new();
        for v in vs {
            if let Some(t) = self.at_value(v) {
                seqs.extend(t.as_sequences());
            }
        }
        seqs.sort_by_key(|s| s.start().t);
        seqs.dedup_by(|a, b| a.start().t == b.start().t && a.num_instants() == b.num_instants());
        Temporal::from_sequences(seqs).ok()
    }

    /// The parts where the value differs from `v` (`minusValues`).
    pub fn minus_value(&self, v: &V) -> Option<Temporal<V>>
    where
        V: SolveCrossing,
    {
        match self.at_value(v) {
            None => Some(self.clone()),
            Some(at) => {
                let remaining = self.time().minus(&at.time())?;
                self.at_periodset(&remaining)
            }
        }
    }
}

/// Crossing solver for linear interpolation: the fraction in `(0, 1)` at
/// which the segment `a → b` passes through `v`, when it does. Step-only
/// types never report crossings.
pub trait SolveCrossing: TValue {
    fn solve_crossing(_a: &Self, _b: &Self, _v: &Self) -> Option<f64> {
        None
    }
}

impl SolveCrossing for bool {}
impl SolveCrossing for i64 {}
impl SolveCrossing for String {}

impl SolveCrossing for f64 {
    fn solve_crossing(a: &Self, b: &Self, v: &Self) -> Option<f64> {
        if a == b {
            return None; // constant segments handled by equality
        }
        let frac = (v - a) / (b - a);
        (frac > 0.0 && frac < 1.0).then_some(frac)
    }
}

impl SolveCrossing for mduck_geo::Point {
    fn solve_crossing(a: &Self, b: &Self, v: &Self) -> Option<f64> {
        let d = *b - *a;
        let len_sq = d.dot(d);
        if len_sq == 0.0 {
            return None;
        }
        let frac = (*v - *a).dot(d) / len_sq;
        if frac <= 0.0 || frac >= 1.0 {
            return None;
        }
        // The point must actually lie on the segment.
        let on = a.lerp(b, frac);
        (on.close_to(v, 1e-9)).then_some(frac)
    }
}

/// Step interpolation: maximal runs of instants with value `v` become
/// subsequences holding until the next change.
fn step_runs_equal<V: TValue>(s: &TSequence<V>, v: &V, out: &mut Vec<TSequence<V>>) {
    let instants = s.instants();
    let n = instants.len();
    let mut i = 0;
    while i < n {
        if &instants[i].value != v {
            i += 1;
            continue;
        }
        let run_start = i;
        while i + 1 < n && &instants[i + 1].value == v {
            i += 1;
        }
        // Run covers instants [run_start ..= i]; with step interpolation the
        // value holds until the *next* instant (exclusive) or sequence end.
        let mut kept: Vec<TInstant<V>> = instants[run_start..=i].to_vec();
        let lower_inc = if run_start == 0 { s.lower_inc } else { true };
        let (upper_inc, upper_t) = if i + 1 < n {
            (false, Some(instants[i + 1].t))
        } else {
            (s.upper_inc, None)
        };
        if let Some(ut) = upper_t {
            kept.push(TInstant::new(v.clone(), ut));
        }
        if kept.len() == 1 {
            out.push(
                TSequence::new(kept, true, true, Interp::Step).expect("singleton sequence"),
            );
        } else {
            out.push(
                TSequence::new(kept, lower_inc, upper_inc, Interp::Step)
                    .expect("run instants ordered"),
            );
        }
        i += 1;
    }
}

/// Linear interpolation: equality holds on constant segments equal to `v`,
/// at instants whose value is `v`, and at interior crossings.
fn linear_pieces_equal<V: TValue + SolveCrossing>(
    s: &TSequence<V>,
    v: &V,
    out: &mut Vec<TSequence<V>>,
) {
    let instants = s.instants();
    let n = instants.len();
    fn push_instant<V: TValue>(
        out: &mut Vec<TSequence<V>>,
        interp: Interp,
        val: V,
        t: TimestampTz,
    ) {
        out.push(
            TSequence::new(vec![TInstant::new(val, t)], true, true, interp)
                .expect("singleton"),
        );
    }
    let mut i = 0;
    while i < n {
        if &instants[i].value == v {
            // Extend over constant run equal to v.
            let run_start = i;
            while i + 1 < n && &instants[i + 1].value == v {
                i += 1;
            }
            if i > run_start {
                let kept = instants[run_start..=i].to_vec();
                let lower_inc = if run_start == 0 { s.lower_inc } else { true };
                let upper_inc = if i == n - 1 { s.upper_inc } else { true };
                out.push(
                    TSequence::new(kept, lower_inc, upper_inc, s.interp).expect("ordered run"),
                );
            } else {
                let included = (run_start > 0 || s.lower_inc)
                    && (run_start < n - 1 || s.upper_inc || n == 1);
                if included {
                    push_instant(out, s.interp, v.clone(), instants[run_start].t);
                }
            }
        } else if i + 1 < n {
            let a = &instants[i];
            let b = &instants[i + 1];
            if let Some(frac) = V::solve_crossing(&a.value, &b.value, v) {
                let t = TimestampTz(a.t.0 + ((b.t.0 - a.t.0) as f64 * frac).round() as i64);
                push_instant(out, s.interp, v.clone(), t);
            }
        }
        i += 1;
    }
}

/// Keep the error type reachable for doc examples.
#[allow(dead_code)]
fn _assert_result_alias(_r: TemporalResult<()>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanset::parse_periodset;
    use crate::temporal::{parse_tfloat, parse_tint};
    use crate::time::parse_timestamp;

    fn ts(s: &str) -> TimestampTz {
        parse_timestamp(s).unwrap()
    }
    fn period(s: &str) -> TstzSpan {
        crate::span::parse_span(s).unwrap()
    }

    #[test]
    fn at_period_linear_interpolates_bounds() {
        let t = parse_tfloat("[0@2025-01-01, 10@2025-01-03]").unwrap();
        let r = t.at_period(&period("[2025-01-01 12:00:00, 2025-01-02]")).unwrap();
        assert_eq!(r.start_value(), 2.5);
        assert_eq!(r.end_value(), 5.0);
        assert_eq!(r.start_timestamp(), ts("2025-01-01 12:00:00"));
        // Disjoint period → empty.
        assert!(t.at_period(&period("[2026-01-01, 2026-01-02]")).is_none());
    }

    #[test]
    fn at_period_discrete_filters() {
        let t = parse_tint("{1@2025-01-01, 2@2025-01-02, 3@2025-01-03}").unwrap();
        let r = t.at_period(&period("[2025-01-02, 2025-01-03)")).unwrap();
        assert_eq!(r.num_instants(), 1);
        assert_eq!(r.start_value(), 2);
    }

    #[test]
    fn at_periodset_multiple_pieces() {
        let t = parse_tfloat("[0@2025-01-01, 10@2025-01-11]").unwrap();
        let ps = parse_periodset("{[2025-01-02, 2025-01-03], [2025-01-05, 2025-01-06]}").unwrap();
        let r = t.at_periodset(&ps).unwrap();
        match &r {
            Temporal::SequenceSet(ss) => assert_eq!(ss.sequences().len(), 2),
            _ => panic!("expected a sequence set, got {r}"),
        }
        assert_eq!(r.value_at(ts("2025-01-02")), Some(1.0));
        assert_eq!(r.value_at(ts("2025-01-04")), None);
    }

    #[test]
    fn minus_period_cuts_a_hole() {
        let t = parse_tfloat("[0@2025-01-01, 10@2025-01-11]").unwrap();
        let r = t.minus_period(&period("[2025-01-03, 2025-01-05]")).unwrap();
        assert_eq!(r.value_at(ts("2025-01-02")), Some(1.0));
        assert_eq!(r.value_at(ts("2025-01-04")), None);
        assert_eq!(r.value_at(ts("2025-01-06")), Some(5.0));
        // The hole's bounds are excluded.
        assert_eq!(r.value_at(ts("2025-01-03")), None);
    }

    #[test]
    fn at_value_step_runs() {
        let t = parse_tint("[1@2025-01-01, 2@2025-01-02, 2@2025-01-03, 1@2025-01-04]").unwrap();
        let r = t.at_value(&2).unwrap();
        // Value 2 holds on [2025-01-02, 2025-01-04).
        let time = r.time();
        assert_eq!(time.num_spans(), 1);
        assert_eq!(
            time.spans()[0].to_string(),
            "[2025-01-02 00:00:00+00, 2025-01-04 00:00:00+00)"
        );
        // Value 1 holds at the start segment and the final instant.
        let r1 = t.at_value(&1).unwrap();
        assert_eq!(r1.time().num_spans(), 2);
    }

    #[test]
    fn at_value_linear_crossing() {
        let t = parse_tfloat("[0@2025-01-01, 10@2025-01-03]").unwrap();
        let r = t.at_value(&5.0).unwrap();
        assert_eq!(r.num_instants(), 1);
        assert_eq!(r.start_timestamp(), ts("2025-01-02"));
        // A value never reached.
        assert!(t.at_value(&11.0).is_none());
        // Endpoint values are found too.
        assert_eq!(t.at_value(&0.0).unwrap().start_timestamp(), ts("2025-01-01"));
    }

    #[test]
    fn at_value_linear_constant_segment() {
        let t = parse_tfloat("[5@2025-01-01, 5@2025-01-02, 8@2025-01-03]").unwrap();
        let r = t.at_value(&5.0).unwrap();
        assert_eq!(
            r.time().spans()[0].to_string(),
            "[2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00]"
        );
    }

    #[test]
    fn minus_value_complements() {
        let t = parse_tint("[1@2025-01-01, 2@2025-01-02, 1@2025-01-03]").unwrap();
        let r = t.minus_value(&2).unwrap();
        assert_eq!(r.value_at(ts("2025-01-01 12:00:00")), Some(1));
        assert_eq!(r.value_at(ts("2025-01-02 12:00:00")), None);
        assert_eq!(r.value_at(ts("2025-01-03")), Some(1));
        // Removing an absent value is the identity.
        let same = t.minus_value(&9).unwrap();
        assert_eq!(same, t);
    }

    #[test]
    fn at_timestamp_returns_instant() {
        let t = parse_tfloat("[0@2025-01-01, 10@2025-01-03]").unwrap();
        let i = t.at_timestamp(ts("2025-01-02")).unwrap();
        assert_eq!(i.value, 5.0);
        assert!(t.at_timestamp(ts("2026-01-01")).is_none());
    }
}
