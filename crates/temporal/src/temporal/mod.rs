//! Temporal types: `tbool`, `tint`, `tfloat`, `ttext`, `tgeompoint`.
//!
//! A temporal value is a function from time to a base type, represented by
//! one of three subtypes (as in MEOS):
//!
//! * **instant** — a single `value@timestamp`,
//! * **sequence** — an interval of time with values at instants and an
//!   interpolation (discrete, step, or linear) between them,
//! * **sequence set** — a set of disjoint sequences, representing the
//!   "temporal gaps" the paper highlights (§2.2).

mod agg;
mod boolops;
mod parse;
mod restrict;
mod spatial;
mod sync;

pub use agg::*;
pub use boolops::*;
pub use parse::*;
pub use restrict::*;
pub use spatial::*;
pub use sync::*;

use std::fmt;

use mduck_geo::point::Point;

use crate::error::{TemporalError, TemporalResult};
use crate::span::{Span, TstzSpan};
use crate::spanset::TstzSpanSet;
use crate::time::{Interval, TimestampTz};

/// Interpolation behaviour between the instants of a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interp {
    /// Isolated instants: the value is defined only *at* the instants.
    Discrete,
    /// The value holds constant until the next instant.
    Step,
    /// The value moves linearly between instants.
    Linear,
}

/// A base type over which temporal types can be built.
pub trait TValue: Clone + PartialEq + fmt::Debug {
    /// Whether linear interpolation is meaningful (floats, points).
    const CAN_LINEAR: bool;
    /// The interpolation assumed when a continuous literal doesn't say.
    fn default_interp() -> Interp {
        if Self::CAN_LINEAR {
            Interp::Linear
        } else {
            Interp::Step
        }
    }
    /// Interpolate between two values (`frac` in [0, 1]). Step types return
    /// the first value.
    fn lerp(a: &Self, b: &Self, frac: f64) -> Self;
    /// Parse a value token from a literal (everything before the `@`).
    fn parse_tvalue(s: &str) -> TemporalResult<Self>;
    /// Print a value into a literal.
    fn write_tvalue(&self, out: &mut String);
}

impl TValue for bool {
    const CAN_LINEAR: bool = false;
    fn lerp(a: &Self, _b: &Self, _frac: f64) -> Self {
        *a
    }
    fn parse_tvalue(s: &str) -> TemporalResult<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "t" | "true" => Ok(true),
            "f" | "false" => Ok(false),
            other => Err(TemporalError::Parse(format!("invalid boolean {other:?}"))),
        }
    }
    fn write_tvalue(&self, out: &mut String) {
        out.push(if *self { 't' } else { 'f' });
    }
}

impl TValue for i64 {
    const CAN_LINEAR: bool = false;
    fn lerp(a: &Self, _b: &Self, _frac: f64) -> Self {
        *a
    }
    fn parse_tvalue(s: &str) -> TemporalResult<Self> {
        s.trim()
            .parse()
            .map_err(|_| TemporalError::Parse(format!("invalid integer {s:?}")))
    }
    fn write_tvalue(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl TValue for f64 {
    const CAN_LINEAR: bool = true;
    fn lerp(a: &Self, b: &Self, frac: f64) -> Self {
        a + (b - a) * frac
    }
    fn parse_tvalue(s: &str) -> TemporalResult<Self> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| TemporalError::Parse(format!("invalid float {s:?}")))?;
        if v.is_nan() {
            return Err(TemporalError::Parse("NaN is not a valid temporal value".into()));
        }
        Ok(v)
    }
    fn write_tvalue(&self, out: &mut String) {
        out.push_str(&mduck_geo::wkt::fmt_coord(*self, None));
    }
}

impl TValue for String {
    const CAN_LINEAR: bool = false;
    fn lerp(a: &Self, _b: &Self, _frac: f64) -> Self {
        a.clone()
    }
    fn parse_tvalue(s: &str) -> TemporalResult<Self> {
        let s = s.trim();
        if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
            Ok(s[1..s.len() - 1].replace("\\\"", "\""))
        } else {
            Ok(s.to_string())
        }
    }
    fn write_tvalue(&self, out: &mut String) {
        out.push('"');
        out.push_str(&self.replace('"', "\\\""));
        out.push('"');
    }
}

impl TValue for Point {
    const CAN_LINEAR: bool = true;
    fn lerp(a: &Self, b: &Self, frac: f64) -> Self {
        a.lerp(b, frac)
    }
    fn parse_tvalue(s: &str) -> TemporalResult<Self> {
        let g = mduck_geo::wkt::parse_wkt(s.trim())?;
        g.as_point()
            .ok_or_else(|| TemporalError::Parse(format!("expected a point, got {s:?}")))
    }
    fn write_tvalue(&self, out: &mut String) {
        out.push_str("POINT(");
        out.push_str(&mduck_geo::wkt::fmt_coord(self.x, None));
        out.push(' ');
        out.push_str(&mduck_geo::wkt::fmt_coord(self.y, None));
        out.push(')');
    }
}

/// A single `value@timestamp`.
#[derive(Debug, Clone, PartialEq)]
pub struct TInstant<V: TValue> {
    pub value: V,
    pub t: TimestampTz,
}

impl<V: TValue> TInstant<V> {
    pub fn new(value: V, t: TimestampTz) -> Self {
        TInstant { value, t }
    }
}

/// A sequence of instants over a time interval with an interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct TSequence<V: TValue> {
    instants: Vec<TInstant<V>>,
    pub lower_inc: bool,
    pub upper_inc: bool,
    pub interp: Interp,
}

impl<V: TValue> TSequence<V> {
    /// Build with validation: non-empty, strictly increasing timestamps,
    /// linear only when the base type supports it, and MEOS's bound rules
    /// (a single-instant continuous sequence is `[v@t]`; discrete
    /// sequences are always closed).
    pub fn new(
        instants: Vec<TInstant<V>>,
        lower_inc: bool,
        upper_inc: bool,
        interp: Interp,
    ) -> TemporalResult<Self> {
        if instants.is_empty() {
            return Err(TemporalError::Invalid("sequence needs at least one instant".into()));
        }
        if interp == Interp::Linear && !V::CAN_LINEAR {
            return Err(TemporalError::Invalid(
                "linear interpolation is not defined for this base type".into(),
            ));
        }
        for w in instants.windows(2) {
            if w[0].t >= w[1].t {
                return Err(TemporalError::Invalid(format!(
                    "instants must be strictly increasing ({} then {})",
                    w[0].t, w[1].t
                )));
            }
        }
        let (lower_inc, upper_inc) = if interp == Interp::Discrete || instants.len() == 1 {
            (true, true)
        } else {
            (lower_inc, upper_inc)
        };
        if instants.len() > 1 && !lower_inc && !upper_inc && instants.len() == 2 {
            // fine: (v1@t1, v2@t2) is a valid open sequence
        }
        Ok(TSequence { instants, lower_inc, upper_inc, interp })
    }

    /// A discrete sequence from instants.
    pub fn discrete(instants: Vec<TInstant<V>>) -> TemporalResult<Self> {
        TSequence::new(instants, true, true, Interp::Discrete)
    }

    pub fn instants(&self) -> &[TInstant<V>] {
        &self.instants
    }

    pub fn num_instants(&self) -> usize {
        self.instants.len()
    }

    pub fn start(&self) -> &TInstant<V> {
        &self.instants[0]
    }

    pub fn end(&self) -> &TInstant<V> {
        self.instants.last().unwrap()
    }

    /// Bounding period of the sequence.
    pub fn period(&self) -> TstzSpan {
        Span {
            lower: self.start().t,
            upper: self.end().t,
            lower_inc: self.lower_inc,
            upper_inc: self.upper_inc || self.instants.len() == 1,
        }
    }

    /// Value at `t`, honouring interpolation and bound inclusivity.
    pub fn value_at(&self, t: TimestampTz) -> Option<V> {
        if self.interp == Interp::Discrete {
            return self
                .instants
                .iter()
                .find(|i| i.t == t)
                .map(|i| i.value.clone());
        }
        if !self.period().contains_value(t) {
            return None;
        }
        match self.instants.binary_search_by(|i| i.t.cmp(&t)) {
            Ok(idx) => Some(self.instants[idx].value.clone()),
            Err(idx) => {
                // t strictly between instants idx-1 and idx.
                let a = &self.instants[idx - 1];
                let b = &self.instants[idx];
                match self.interp {
                    Interp::Step => Some(a.value.clone()),
                    Interp::Linear => {
                        let frac = (t.0 - a.t.0) as f64 / (b.t.0 - a.t.0) as f64;
                        Some(V::lerp(&a.value, &b.value, frac))
                    }
                    Interp::Discrete => unreachable!(),
                }
            }
        }
    }
}

/// A set of disjoint sequences with a common interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct TSequenceSet<V: TValue> {
    sequences: Vec<TSequence<V>>,
}

impl<V: TValue> TSequenceSet<V> {
    /// Build with validation: non-empty, time-ordered, non-overlapping,
    /// uniform non-discrete interpolation.
    pub fn new(sequences: Vec<TSequence<V>>) -> TemporalResult<Self> {
        if sequences.is_empty() {
            return Err(TemporalError::Invalid("sequence set needs a sequence".into()));
        }
        let interp = sequences[0].interp;
        if interp == Interp::Discrete {
            return Err(TemporalError::Invalid(
                "sequence sets cannot hold discrete sequences".into(),
            ));
        }
        for s in &sequences {
            if s.interp != interp {
                return Err(TemporalError::Invalid("mixed interpolations in set".into()));
            }
        }
        for w in sequences.windows(2) {
            let a = w[0].period();
            let b = w[1].period();
            if !a.left_of(&b) {
                return Err(TemporalError::Invalid(
                    "sequences must be ordered and disjoint".into(),
                ));
            }
        }
        Ok(TSequenceSet { sequences })
    }

    pub fn sequences(&self) -> &[TSequence<V>] {
        &self.sequences
    }

    pub fn interp(&self) -> Interp {
        self.sequences[0].interp
    }
}

/// A temporal value of any subtype.
#[derive(Debug, Clone, PartialEq)]
pub enum Temporal<V: TValue> {
    Instant(TInstant<V>),
    Sequence(TSequence<V>),
    SequenceSet(TSequenceSet<V>),
}

/// `tbool`.
pub type TBool = Temporal<bool>;
/// `tint` (step interpolation).
pub type TInt = Temporal<i64>;
/// `tfloat`.
pub type TFloat = Temporal<f64>;
/// `ttext`.
pub type TText = Temporal<String>;

impl<V: TValue> Temporal<V> {
    /// All instants in temporal order.
    pub fn instants(&self) -> Vec<&TInstant<V>> {
        match self {
            Temporal::Instant(i) => vec![i],
            Temporal::Sequence(s) => s.instants.iter().collect(),
            Temporal::SequenceSet(ss) => {
                ss.sequences.iter().flat_map(|s| s.instants.iter()).collect()
            }
        }
    }

    pub fn num_instants(&self) -> usize {
        match self {
            Temporal::Instant(_) => 1,
            Temporal::Sequence(s) => s.num_instants(),
            Temporal::SequenceSet(ss) => ss.sequences.iter().map(TSequence::num_instants).sum(),
        }
    }

    /// The sequences of the value (an instant becomes a one-instant
    /// discrete view; used by generic algorithms).
    pub fn as_sequences(&self) -> Vec<TSequence<V>> {
        match self {
            Temporal::Instant(i) => {
                vec![TSequence::discrete(vec![i.clone()]).expect("valid singleton")]
            }
            Temporal::Sequence(s) => vec![s.clone()],
            Temporal::SequenceSet(ss) => ss.sequences.clone(),
        }
    }

    /// The interpolation of the value.
    pub fn interp(&self) -> Interp {
        match self {
            Temporal::Instant(_) => Interp::Discrete,
            Temporal::Sequence(s) => s.interp,
            Temporal::SequenceSet(ss) => ss.interp(),
        }
    }

    pub fn start_timestamp(&self) -> TimestampTz {
        match self {
            Temporal::Instant(i) => i.t,
            Temporal::Sequence(s) => s.start().t,
            Temporal::SequenceSet(ss) => ss.sequences[0].start().t,
        }
    }

    pub fn end_timestamp(&self) -> TimestampTz {
        match self {
            Temporal::Instant(i) => i.t,
            Temporal::Sequence(s) => s.end().t,
            Temporal::SequenceSet(ss) => ss.sequences.last().unwrap().end().t,
        }
    }

    pub fn start_value(&self) -> V {
        match self {
            Temporal::Instant(i) => i.value.clone(),
            Temporal::Sequence(s) => s.start().value.clone(),
            Temporal::SequenceSet(ss) => ss.sequences[0].start().value.clone(),
        }
    }

    pub fn end_value(&self) -> V {
        match self {
            Temporal::Instant(i) => i.value.clone(),
            Temporal::Sequence(s) => s.end().value.clone(),
            Temporal::SequenceSet(ss) => ss.sequences.last().unwrap().end().value.clone(),
        }
    }

    /// All distinct timestamps.
    pub fn timestamps(&self) -> Vec<TimestampTz> {
        self.instants().iter().map(|i| i.t).collect()
    }

    /// Bounding period (`::tstzspan` in the paper's Query 3).
    pub fn timespan(&self) -> TstzSpan {
        match self {
            Temporal::Instant(i) => TstzSpan::singleton(i.t),
            Temporal::Sequence(s) => {
                if s.interp == Interp::Discrete {
                    Span {
                        lower: s.start().t,
                        upper: s.end().t,
                        lower_inc: true,
                        upper_inc: true,
                    }
                } else {
                    s.period()
                }
            }
            Temporal::SequenceSet(ss) => {
                let first = ss.sequences[0].period();
                let last = ss.sequences.last().unwrap().period();
                Span {
                    lower: first.lower,
                    upper: last.upper,
                    lower_inc: first.lower_inc,
                    upper_inc: last.upper_inc,
                }
            }
        }
    }

    /// The time over which the value is defined, as a period set. Discrete
    /// subtypes yield degenerate singleton periods.
    pub fn time(&self) -> TstzSpanSet {
        let spans: Vec<TstzSpan> = match self {
            Temporal::Instant(i) => vec![TstzSpan::singleton(i.t)],
            Temporal::Sequence(s) => {
                if s.interp == Interp::Discrete {
                    s.instants.iter().map(|i| TstzSpan::singleton(i.t)).collect()
                } else {
                    vec![s.period()]
                }
            }
            Temporal::SequenceSet(ss) => ss.sequences.iter().map(TSequence::period).collect(),
        };
        TstzSpanSet::new(spans).expect("non-empty by construction")
    }

    /// `duration(temp, boundspan)`: with `boundspan = true` the length of
    /// the bounding period, otherwise the summed duration over which the
    /// value is actually defined (0 for discrete subtypes).
    pub fn duration(&self, boundspan: bool) -> Interval {
        if boundspan {
            return Interval::from_usecs(self.end_timestamp().0 - self.start_timestamp().0);
        }
        match self {
            Temporal::Instant(_) => Interval::ZERO,
            Temporal::Sequence(s) => {
                if s.interp == Interp::Discrete {
                    Interval::ZERO
                } else {
                    Interval::from_usecs(s.end().t.0 - s.start().t.0)
                }
            }
            Temporal::SequenceSet(ss) => Interval::from_usecs(
                ss.sequences.iter().map(|s| s.end().t.0 - s.start().t.0).sum(),
            ),
        }
    }

    /// Value at a timestamp (`valueAtTimestamp`), `None` outside the
    /// definition time.
    pub fn value_at(&self, t: TimestampTz) -> Option<V> {
        match self {
            Temporal::Instant(i) => (i.t == t).then(|| i.value.clone()),
            Temporal::Sequence(s) => s.value_at(t),
            Temporal::SequenceSet(ss) => {
                ss.sequences.iter().find_map(|s| s.value_at(t))
            }
        }
    }

    /// Shift the whole value in time.
    pub fn shift_time(&self, delta: &Interval) -> Temporal<V> {
        let shift_seq = |s: &TSequence<V>| TSequence {
            instants: s
                .instants
                .iter()
                .map(|i| TInstant::new(i.value.clone(), i.t.add_interval(delta)))
                .collect(),
            lower_inc: s.lower_inc,
            upper_inc: s.upper_inc,
            interp: s.interp,
        };
        match self {
            Temporal::Instant(i) => {
                Temporal::Instant(TInstant::new(i.value.clone(), i.t.add_interval(delta)))
            }
            Temporal::Sequence(s) => Temporal::Sequence(shift_seq(s)),
            Temporal::SequenceSet(ss) => Temporal::SequenceSet(TSequenceSet {
                sequences: ss.sequences.iter().map(shift_seq).collect(),
            }),
        }
    }

    /// All values at instants (no interpolation applied).
    pub fn values(&self) -> Vec<V> {
        self.instants().iter().map(|i| i.value.clone()).collect()
    }

    /// Build the canonical enum from a list of sequences (unwraps
    /// singletons).
    pub fn from_sequences(mut seqs: Vec<TSequence<V>>) -> TemporalResult<Temporal<V>> {
        match seqs.len() {
            0 => Err(TemporalError::Invalid("no sequences".into())),
            1 => {
                let s = seqs.pop().unwrap();
                if s.num_instants() == 1 && s.interp == Interp::Discrete {
                    Ok(Temporal::Instant(s.instants.into_iter().next().unwrap()))
                } else {
                    Ok(Temporal::Sequence(s))
                }
            }
            _ => {
                if seqs[0].interp == Interp::Discrete {
                    // Merge discrete sequences into one.
                    let mut instants: Vec<TInstant<V>> =
                        seqs.into_iter().flat_map(|s| s.instants).collect();
                    instants.sort_by_key(|i| i.t);
                    instants.dedup_by(|a, b| a.t == b.t);
                    Ok(Temporal::Sequence(TSequence::discrete(instants)?))
                } else {
                    Ok(Temporal::SequenceSet(TSequenceSet::new(seqs)?))
                }
            }
        }
    }
}

impl<V: TValue + PartialOrd> Temporal<V> {
    /// Minimum value over all instants. For linear interpolation the
    /// extremes are always attained at instants, so this is exact.
    pub fn min_value(&self) -> V {
        self.values()
            .into_iter()
            .min_by(|a, b| a.partial_cmp(b).expect("unordered values"))
            .expect("non-empty")
    }

    pub fn max_value(&self) -> V {
        self.values()
            .into_iter()
            .max_by(|a, b| a.partial_cmp(b).expect("unordered values"))
            .expect("non-empty")
    }
}

impl<V: TValue> Temporal<V> {
    /// Ever-equality: does the value ever take `v`? For linear
    /// interpolation only instants are checked here; continuous
    /// pass-through is handled by the typed `at_value` implementations.
    pub fn ever_eq_at_instants(&self, v: &V) -> bool {
        self.instants().iter().any(|i| &i.value == v)
    }

    /// Always-equality at instants.
    pub fn always_eq_at_instants(&self, v: &V) -> bool {
        self.instants().iter().all(|i| &i.value == v)
    }
}

// ---------------------------------------------------------------- display

fn write_instant<V: TValue>(out: &mut String, i: &TInstant<V>) {
    i.value.write_tvalue(out);
    out.push('@');
    out.push_str(&i.t.to_string());
}

fn write_sequence<V: TValue>(out: &mut String, s: &TSequence<V>) {
    let (open, close) = match s.interp {
        Interp::Discrete => ('{', '}'),
        _ => (if s.lower_inc { '[' } else { '(' }, if s.upper_inc { ']' } else { ')' }),
    };
    out.push(open);
    for (idx, i) in s.instants.iter().enumerate() {
        if idx > 0 {
            out.push_str(", ");
        }
        write_instant(out, i);
    }
    out.push(close);
}

impl<V: TValue> fmt::Display for Temporal<V> {
    /// MobilityDB literal syntax. A non-default interpolation on a
    /// continuous subtype is printed as an `Interp=Step;` prefix.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        match self {
            Temporal::Instant(i) => write_instant(&mut s, i),
            Temporal::Sequence(seq) => {
                if seq.interp == Interp::Step && V::default_interp() == Interp::Linear {
                    s.push_str("Interp=Step;");
                }
                write_sequence(&mut s, seq);
            }
            Temporal::SequenceSet(ss) => {
                if ss.interp() == Interp::Step && V::default_interp() == Interp::Linear {
                    s.push_str("Interp=Step;");
                }
                s.push('{');
                for (idx, seq) in ss.sequences.iter().enumerate() {
                    if idx > 0 {
                        s.push_str(", ");
                    }
                    write_sequence(&mut s, seq);
                }
                s.push('}');
            }
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::parse_timestamp;

    fn ts(s: &str) -> TimestampTz {
        parse_timestamp(s).unwrap()
    }

    #[test]
    fn sequence_validation() {
        let i1 = TInstant::new(1.0, ts("2025-01-01"));
        let i2 = TInstant::new(2.0, ts("2025-01-02"));
        assert!(TSequence::new(vec![i1.clone(), i2.clone()], true, true, Interp::Linear).is_ok());
        assert!(TSequence::new(vec![i2.clone(), i1.clone()], true, true, Interp::Linear).is_err());
        assert!(TSequence::<f64>::new(vec![], true, true, Interp::Linear).is_err());
        // Linear rejected for step-only base types.
        let b1 = TInstant::new(true, ts("2025-01-01"));
        let b2 = TInstant::new(false, ts("2025-01-02"));
        assert!(TSequence::new(vec![b1, b2], true, true, Interp::Linear).is_err());
    }

    #[test]
    fn value_at_linear_and_step() {
        let seq = TSequence::new(
            vec![
                TInstant::new(0.0, ts("2025-01-01")),
                TInstant::new(10.0, ts("2025-01-02")),
            ],
            true,
            true,
            Interp::Linear,
        )
        .unwrap();
        assert_eq!(seq.value_at(ts("2025-01-01 12:00:00")), Some(5.0));
        assert_eq!(seq.value_at(ts("2025-01-01")), Some(0.0));
        assert_eq!(seq.value_at(ts("2025-01-03")), None);

        let step = TSequence::new(seq.instants().to_vec(), true, true, Interp::Step).unwrap();
        assert_eq!(step.value_at(ts("2025-01-01 12:00:00")), Some(0.0));
        assert_eq!(step.value_at(ts("2025-01-02")), Some(10.0));
    }

    #[test]
    fn open_bounds_respected() {
        let seq = TSequence::new(
            vec![
                TInstant::new(0.0, ts("2025-01-01")),
                TInstant::new(10.0, ts("2025-01-02")),
            ],
            false,
            false,
            Interp::Linear,
        )
        .unwrap();
        assert_eq!(seq.value_at(ts("2025-01-01")), None);
        assert_eq!(seq.value_at(ts("2025-01-02")), None);
        assert_eq!(seq.value_at(ts("2025-01-01 12:00:00")), Some(5.0));
    }

    #[test]
    fn sequence_set_validation() {
        let s1 = TSequence::new(
            vec![
                TInstant::new(1.0, ts("2025-01-01")),
                TInstant::new(2.0, ts("2025-01-02")),
            ],
            true,
            true,
            Interp::Linear,
        )
        .unwrap();
        let s2 = TSequence::new(
            vec![
                TInstant::new(3.0, ts("2025-01-03")),
                TInstant::new(4.0, ts("2025-01-04")),
            ],
            true,
            true,
            Interp::Linear,
        )
        .unwrap();
        assert!(TSequenceSet::new(vec![s1.clone(), s2.clone()]).is_ok());
        assert!(TSequenceSet::new(vec![s2, s1]).is_err()); // out of order
    }

    #[test]
    fn duration_semantics() {
        // Discrete: bounding-span duration 2 days, plain duration zero.
        let d = TSequence::discrete(vec![
            TInstant::new(1i64, ts("2025-01-01")),
            TInstant::new(2, ts("2025-01-02")),
            TInstant::new(1, ts("2025-01-03")),
        ])
        .unwrap();
        let t = Temporal::Sequence(d);
        assert_eq!(t.duration(true).to_string(), "2 days");
        assert_eq!(t.duration(false).to_string(), "00:00:00");
    }

    #[test]
    fn timespan_and_time() {
        let s1 = TSequence::new(
            vec![
                TInstant::new(1.0, ts("2025-01-01")),
                TInstant::new(2.0, ts("2025-01-02")),
            ],
            true,
            true,
            Interp::Linear,
        )
        .unwrap();
        let s2 = TSequence::new(
            vec![
                TInstant::new(3.0, ts("2025-01-04")),
                TInstant::new(4.0, ts("2025-01-05")),
            ],
            true,
            true,
            Interp::Linear,
        )
        .unwrap();
        let t = Temporal::SequenceSet(TSequenceSet::new(vec![s1, s2]).unwrap());
        assert_eq!(t.timespan().duration().to_string(), "4 days");
        assert_eq!(t.time().num_spans(), 2);
        assert_eq!(t.duration(false).to_string(), "2 days");
    }

    #[test]
    fn min_max_values() {
        let t: TFloat = Temporal::Sequence(
            TSequence::new(
                vec![
                    TInstant::new(5.0, ts("2025-01-01")),
                    TInstant::new(-1.0, ts("2025-01-02")),
                    TInstant::new(3.0, ts("2025-01-03")),
                ],
                true,
                true,
                Interp::Linear,
            )
            .unwrap(),
        );
        assert_eq!(t.min_value(), -1.0);
        assert_eq!(t.max_value(), 5.0);
        assert_eq!(t.start_value(), 5.0);
        assert_eq!(t.end_value(), 3.0);
    }

    #[test]
    fn shift_time_moves_everything() {
        let t: TInt = Temporal::Instant(TInstant::new(7, ts("2025-01-01")));
        let s = t.shift_time(&Interval::from_days(3));
        assert_eq!(s.start_timestamp(), ts("2025-01-04"));
        assert_eq!(s.value_at(ts("2025-01-04")), Some(7));
    }
}
