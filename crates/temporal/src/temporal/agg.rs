//! Temporal aggregates: `extent` (bounding-box union) and `tcount`
//! (number of values defined at each instant of time).

use crate::boxes::STBox;
use crate::error::TemporalResult;
use crate::span::TstzSpan;
use crate::temporal::{Interp, TGeomPoint, TInstant, TSequence, Temporal};
use crate::time::TimestampTz;

/// Accumulator for the `extent` aggregate over `tgeompoint` / `stbox`
/// inputs: the smallest `stbox` covering everything seen so far.
#[derive(Debug, Clone, Default)]
pub struct ExtentAgg {
    acc: Option<STBox>,
}

impl ExtentAgg {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_stbox(&mut self, b: &STBox) -> TemporalResult<()> {
        self.acc = Some(match &self.acc {
            None => *b,
            Some(a) => a.union(b)?,
        });
        Ok(())
    }

    pub fn add_tgeompoint(&mut self, t: &TGeomPoint) -> TemporalResult<()> {
        self.add_stbox(&t.stbox())
    }

    pub fn finish(&self) -> Option<STBox> {
        self.acc
    }
}

/// Accumulator for the `tcount` aggregate: a step `tint` counting how many
/// input temporals are defined at each moment, built by sweeping period
/// endpoints.
#[derive(Debug, Clone, Default)]
pub struct TCountAgg {
    periods: Vec<TstzSpan>,
}

impl TCountAgg {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_period(&mut self, p: TstzSpan) {
        self.periods.push(p);
    }

    pub fn add_temporal<V: crate::temporal::TValue>(&mut self, t: &Temporal<V>) {
        for s in t.time().spans() {
            self.periods.push(*s);
        }
    }

    /// The step `tint` of concurrent counts; `None` when nothing was added.
    pub fn finish(&self) -> Option<Temporal<i64>> {
        if self.periods.is_empty() {
            return None;
        }
        // Sweep: +1 at each lower bound, −1 at each upper bound.
        let mut events: Vec<(TimestampTz, i64)> = Vec::with_capacity(self.periods.len() * 2);
        for p in &self.periods {
            events.push((p.lower, 1));
            events.push((p.upper, -1));
        }
        events.sort();
        let mut instants: Vec<TInstant<i64>> = Vec::new();
        let mut count = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                count += events[i].1;
                i += 1;
            }
            match instants.last() {
                Some(last) if last.value == count => {}
                _ => instants.push(TInstant::new(count, t)),
            }
        }
        // Drop a trailing zero-count instant pair shape: keep as produced —
        // the final instant records the count returning to 0.
        let seq = TSequence::new(instants, true, true, Interp::Step).ok()?;
        Some(Temporal::Sequence(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::parse_span;
    use crate::temporal::parse_tgeompoint;
    use crate::time::parse_timestamp;

    #[test]
    fn extent_unions_boxes() {
        let mut agg = ExtentAgg::new();
        let a = parse_tgeompoint("[Point(0 0)@2025-01-01, Point(5 5)@2025-01-02]").unwrap();
        let b = parse_tgeompoint("[Point(10 10)@2025-01-03, Point(12 1)@2025-01-04]").unwrap();
        agg.add_tgeompoint(&a).unwrap();
        agg.add_tgeompoint(&b).unwrap();
        let e = agg.finish().unwrap();
        let r = e.rect.unwrap();
        assert_eq!((r.xmin, r.ymin, r.xmax, r.ymax), (0.0, 0.0, 12.0, 10.0));
        assert_eq!(
            e.period.unwrap().upper,
            parse_timestamp("2025-01-04").unwrap()
        );
        assert!(ExtentAgg::new().finish().is_none());
    }

    #[test]
    fn tcount_sweeps() {
        let mut agg = TCountAgg::new();
        agg.add_period(parse_span("[2025-01-01, 2025-01-03]").unwrap());
        agg.add_period(parse_span("[2025-01-02, 2025-01-04]").unwrap());
        let t = agg.finish().unwrap();
        let at = |s: &str| t.value_at(parse_timestamp(s).unwrap());
        assert_eq!(at("2025-01-01 12:00:00"), Some(1));
        assert_eq!(at("2025-01-02 12:00:00"), Some(2));
        assert_eq!(at("2025-01-03 12:00:00"), Some(1));
        assert!(TCountAgg::new().finish().is_none());
    }
}
