//! The `set` template type: an ordered set of distinct base values
//! (`intset`, `bigintset`, `floatset`, `textset`, `dateset`, `tstzset`,
//! `geomset`).

use std::cmp::Ordering;
use std::fmt;

use mduck_geo::{wkb, wkt, Geometry};

use crate::error::{TemporalError, TemporalResult};
use crate::span::{Span, SpanValue};
use crate::time::{Date, TimestampTz};

/// A base type over which sets can be built. Broader than [`SpanValue`]
/// because sets also exist for text and geometry.
pub trait SetValue: Clone + PartialEq + fmt::Debug {
    fn cmp_set(&self, other: &Self) -> Ordering;
    /// Parse one element (the parser has already isolated the token).
    fn parse_element(s: &str) -> TemporalResult<Self>;
    fn write_element(&self, out: &mut String);
}

macro_rules! set_value_via_span {
    ($t:ty) => {
        impl SetValue for $t {
            fn cmp_set(&self, other: &Self) -> Ordering {
                SpanValue::cmp_v(self, other)
            }
            fn parse_element(s: &str) -> TemporalResult<Self> {
                <$t as SpanValue>::parse_value(s)
            }
            fn write_element(&self, out: &mut String) {
                SpanValue::write_value(self, out)
            }
        }
    };
}

set_value_via_span!(i64);
set_value_via_span!(f64);
set_value_via_span!(Date);
set_value_via_span!(TimestampTz);

impl SetValue for String {
    fn cmp_set(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
    fn parse_element(s: &str) -> TemporalResult<Self> {
        let s = s.trim();
        if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
            Ok(s[1..s.len() - 1].replace("\\\"", "\""))
        } else {
            Ok(s.to_string())
        }
    }
    fn write_element(&self, out: &mut String) {
        out.push('"');
        out.push_str(&self.replace('"', "\\\""));
        out.push('"');
    }
}

impl SetValue for Geometry {
    fn cmp_set(&self, other: &Self) -> Ordering {
        // Deterministic total order via the WKB encoding.
        wkb::to_wkb(self).cmp(&wkb::to_wkb(other))
    }
    fn parse_element(s: &str) -> TemporalResult<Self> {
        let s = s.trim();
        let s = s.strip_prefix('"').and_then(|t| t.strip_suffix('"')).unwrap_or(s);
        Ok(wkt::parse_wkt(s)?)
    }
    fn write_element(&self, out: &mut String) {
        out.push('"');
        out.push_str(&wkt::to_wkt(self, None));
        out.push('"');
    }
}

/// An ordered set of distinct values of `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Set<T: SetValue> {
    values: Vec<T>,
}

/// `intset` / `bigintset`.
pub type IntSet = Set<i64>;
/// `floatset`.
pub type FloatSet = Set<f64>;
/// `textset`.
pub type TextSet = Set<String>;
/// `dateset`.
pub type DateSet = Set<Date>;
/// `tstzset`.
pub type TstzSet = Set<TimestampTz>;
/// `geomset` (SRID carried by the member geometries).
pub type GeomSet = Set<Geometry>;

impl<T: SetValue> Set<T> {
    /// Build from arbitrary values: sorts and deduplicates.
    pub fn new(mut values: Vec<T>) -> TemporalResult<Self> {
        if values.is_empty() {
            return Err(TemporalError::Invalid("set must be non-empty".into()));
        }
        values.sort_by(|a, b| a.cmp_set(b));
        values.dedup_by(|a, b| a == b);
        Ok(Set { values })
    }

    /// The ordered values.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        false // construction guarantees non-emptiness
    }

    pub fn start_value(&self) -> &T {
        &self.values[0]
    }

    pub fn end_value(&self) -> &T {
        self.values.last().unwrap()
    }

    pub fn contains(&self, v: &T) -> bool {
        self.values.binary_search_by(|x| x.cmp_set(v)).is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &Set<T>) -> Set<T> {
        let mut vals = self.values.clone();
        vals.extend(other.values.iter().cloned());
        Set::new(vals).expect("non-empty by construction")
    }

    /// Set intersection (`None` when empty).
    pub fn intersection(&self, other: &Set<T>) -> Option<Set<T>> {
        let vals: Vec<T> =
            self.values.iter().filter(|v| other.contains(v)).cloned().collect();
        Set::new(vals).ok()
    }

    /// Set difference (`None` when empty).
    pub fn minus(&self, other: &Set<T>) -> Option<Set<T>> {
        let vals: Vec<T> =
            self.values.iter().filter(|v| !other.contains(v)).cloned().collect();
        Set::new(vals).ok()
    }

    /// Rough in-memory footprint in bytes (the paper's `memSize`).
    pub fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.values.len() * std::mem::size_of::<T>()
    }

    /// Map values, then renormalize.
    pub fn map(&self, f: impl Fn(&T) -> T) -> Set<T> {
        Set::new(self.values.iter().map(|v| f(v)).collect()).expect("non-empty")
    }
}

impl<T: SetValue + SpanValue> Set<T> {
    /// Bounding span of the set.
    pub fn to_span(&self) -> Span<T> {
        Span::new(*self.start_value(), *self.end_value(), true, true)
            .expect("ordered set bounds are a valid span")
    }

    /// Shift every element by `delta`.
    pub fn shift(&self, delta: T::Delta) -> Set<T> {
        self.map(|v| v.add_delta(delta))
    }

    /// Shift then rescale so the full width becomes `new_width` (in the
    /// double domain), anchored at the (shifted) start. Mirrors MEOS
    /// `shiftScale`.
    pub fn shift_scale(&self, delta: Option<T::Delta>, new_width: Option<f64>) -> TemporalResult<Set<T>> {
        let shifted = match delta {
            Some(d) => self.shift(d),
            None => self.clone(),
        };
        let Some(w) = new_width else { return Ok(shifted) };
        if w <= 0.0 {
            return Err(TemporalError::Invalid("scale width must be positive".into()));
        }
        let lo = shifted.start_value().to_double();
        let hi = shifted.end_value().to_double();
        let old_w = hi - lo;
        if old_w == 0.0 {
            return Ok(shifted);
        }
        Ok(shifted.map(|v| T::from_double(lo + (v.to_double() - lo) / old_w * w)))
    }
}

impl<T: SetValue> fmt::Display for Set<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::from("{");
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            v.write_element(&mut s);
        }
        s.push('}');
        f.write_str(&s)
    }
}

impl GeomSet {
    /// SRID of the members (0 when unset); members are kept consistent.
    pub fn srid(&self) -> i32 {
        self.values().iter().map(|g| g.srid).find(|s| *s != 0).unwrap_or(0)
    }

    /// EWKT rendering with SRID prefix, as `asEWKT(geomset)` prints:
    /// `SRID=4326;{"POINT(...)", "POINT(...)"}`.
    pub fn as_ewkt(&self, decimals: Option<usize>) -> String {
        let srid = self.srid();
        let body: Vec<String> = self
            .values()
            .iter()
            .map(|g| format!("\"{}\"", wkt::to_wkt(g, decimals)))
            .collect();
        if srid != 0 {
            format!("SRID={};{{{}}}", srid, body.join(", "))
        } else {
            format!("{{{}}}", body.join(", "))
        }
    }

    /// Transform every member to a new SRID.
    pub fn transform(&self, to_srid: i32) -> TemporalResult<GeomSet> {
        let vals: TemporalResult<Vec<Geometry>> = self
            .values()
            .iter()
            .map(|g| mduck_geo::transform::transform(g, to_srid).map_err(Into::into))
            .collect();
        Set::new(vals?)
    }
}

/// Parse a set literal `{v1, v2, ...}`. Elements are split on top-level
/// commas (commas inside quotes or parentheses don't count), so geometry
/// WKT members parse correctly. A leading `SRID=n;` applies to every
/// geometry member.
pub fn parse_set<T: SetValue>(s: &str) -> TemporalResult<Set<T>> {
    let (body, _srid) = split_srid_prefix(s.trim());
    parse_set_inner(body, None)
}

/// Parse a `geomset` literal, honouring a leading `SRID=n;`.
pub fn parse_geomset(s: &str) -> TemporalResult<GeomSet> {
    let (body, srid) = split_srid_prefix(s.trim());
    let set: GeomSet = parse_set_inner(body, None)?;
    match srid {
        Some(srid) => Set::new(
            set.values()
                .iter()
                .map(|g| {
                    if g.srid == 0 {
                        g.clone().with_srid(srid)
                    } else {
                        g.clone()
                    }
                })
                .collect(),
        ),
        None => Ok(set),
    }
}

pub(crate) fn split_srid_prefix(s: &str) -> (&str, Option<i32>) {
    // Checked slice: byte 5 of arbitrary input may fall inside a
    // multi-byte character, where `s[..5]` would panic.
    if s.get(..5).is_some_and(|p| p.eq_ignore_ascii_case("srid=")) {
        if let Some(semi) = s.find(';') {
            if let Ok(v) = s[5..semi].trim().parse::<i32>() {
                return (s[semi + 1..].trim_start(), Some(v));
            }
        }
    }
    (s, None)
}

fn parse_set_inner<T: SetValue>(s: &str, _hint: Option<()>) -> TemporalResult<Set<T>> {
    let s = s.trim();
    let bad = || TemporalError::Parse(format!("invalid set {s:?}"));
    if !s.starts_with('{') || !s.ends_with('}') {
        return Err(bad());
    }
    let inner = &s[1..s.len() - 1];
    let parts = split_top_level(inner);
    if parts.is_empty() {
        return Err(bad());
    }
    let vals: TemporalResult<Vec<T>> = parts.iter().map(|p| T::parse_element(p)).collect();
    Set::new(vals?)
}

/// Split on commas that are not nested inside parentheses or double quotes.
pub(crate) fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_quotes = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '(' | '[' | '{' if !in_quotes => depth += 1,
            ')' | ']' | '}' if !in_quotes => depth = depth.saturating_sub(1),
            ',' if depth == 0 && !in_quotes => {
                parts.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        parts.push(last);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intset_sorted_dedup() {
        let s: IntSet = parse_set("{3, 1, 2, 3}").unwrap();
        assert_eq!(s.values(), &[1, 2, 3]);
        assert_eq!(s.to_string(), "{1, 2, 3}");
        assert!(s.contains(&2));
        assert!(!s.contains(&4));
    }

    #[test]
    fn empty_set_rejected() {
        assert!(parse_set::<i64>("{}").is_err());
        assert!(parse_set::<i64>("1,2").is_err());
    }

    #[test]
    fn textset_quoting() {
        let s: TextSet = parse_set(r#"{"b", "a", "with, comma"}"#).unwrap();
        assert_eq!(s.values(), &["a".to_string(), "b".into(), "with, comma".into()]);
        assert_eq!(s.to_string(), r#"{"a", "b", "with, comma"}"#);
    }

    #[test]
    fn tstzset_parse_print() {
        let s: TstzSet = parse_set("{2025-01-01, 2025-01-03, 2025-01-02}").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.start_value().to_string(), "2025-01-01 00:00:00+00");
        assert_eq!(s.end_value().to_string(), "2025-01-03 00:00:00+00");
        assert_eq!(s.to_span().duration().to_string(), "2 days");
    }

    #[test]
    fn set_algebra_ops() {
        let a: IntSet = parse_set("{1, 2, 3}").unwrap();
        let b: IntSet = parse_set("{3, 4}").unwrap();
        assert_eq!(a.union(&b).values(), &[1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).unwrap().values(), &[3]);
        assert_eq!(a.minus(&b).unwrap().values(), &[1, 2]);
        assert!(b.minus(&b).is_none());
    }

    #[test]
    fn shift_scale_matches_meos_semantics() {
        // Paper §3.5: shiftScale of a tstzset by (1 day, 1 hour):
        // values move 1 day, then the whole set is compressed to 1 hour.
        let s: TstzSet = parse_set("{2025-01-01, 2025-01-02, 2025-01-03}").unwrap();
        let shifted = s
            .shift_scale(
                Some(crate::time::Interval::from_days(1)),
                Some(crate::time::USECS_PER_HOUR as f64),
            )
            .unwrap();
        assert_eq!(
            shifted.to_string(),
            "{2025-01-02 00:00:00+00, 2025-01-02 00:30:00+00, 2025-01-02 01:00:00+00}"
        );
    }

    #[test]
    fn geomset_parse_transform() {
        let s = parse_geomset("SRID=4326;{Point(2.340088 49.400250), Point(6.575317 51.553167)}")
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.srid(), 4326);
        let t = s.transform(3812).unwrap();
        let ewkt = t.as_ewkt(Some(6));
        assert!(ewkt.starts_with("SRID=3812;{\"POINT("), "{ewkt}");
        // Paper §3.5 prints these coordinates (we allow sub-metre slack).
        assert!(ewkt.contains("502773.42"), "{ewkt}");
        assert!(ewkt.contains("803028.9"), "{ewkt}");
    }

    #[test]
    fn floatset_shift() {
        let s: FloatSet = parse_set("{1.5, 2.5}").unwrap();
        assert_eq!(s.shift(1.0).values(), &[2.5, 3.5]);
        assert_eq!(s.mem_size() > 0, true);
    }

    #[test]
    fn split_top_level_nesting() {
        assert_eq!(split_top_level("a, (b, c), d"), vec!["a", "(b, c)", "d"]);
        assert_eq!(split_top_level(r#""x, y", z"#), vec![r#""x, y""#, "z"]);
        assert_eq!(split_top_level("[1, 2], [3, 4]"), vec!["[1, 2]", "[3, 4]"]);
    }
}
