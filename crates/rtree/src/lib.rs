//! # mduck-rtree — a 3-D (x, y, t) R-tree
//!
//! The index structure beneath the paper's TRTREE index (§4): a classic
//! Guttman R-tree with quadratic split for incremental insertion
//! (the *index-first* path, §4.2.1) and Sort-Tile-Recursive bulk loading
//! (the *data-first* `CREATE INDEX` path, §4.2.2). Entries are 3-D
//! axis-aligned boxes — two spatial axes plus time — with a `u64` payload
//! (a row identifier).

mod node;

pub use node::Rect3;

use node::{Entry, Node, MAX_ENTRIES, MIN_ENTRIES};

/// A 3-D R-tree mapping boxes to `u64` row identifiers.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        RTree { root: Node::new_leaf(), len: 0 }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Insert one entry (`rtree_insert` in MEOS terms).
    pub fn insert(&mut self, rect: Rect3, id: u64) {
        let new_entry = Entry::Leaf { rect, id };
        if let Some((e1, e2)) = self.root.insert(new_entry) {
            // Root split: grow the tree.
            let mut new_root = Node::new_inner();
            new_root.entries.push(e1);
            new_root.entries.push(e2);
            self.root = new_root;
        }
        self.len += 1;
    }

    /// Bulk-load with Sort-Tile-Recursive packing. Much faster and better
    /// packed than repeated insertion; used by the data-first `CREATE
    /// INDEX` path after the parallel Sink/Combine phases collected all
    /// rows.
    pub fn bulk_load(items: Vec<(Rect3, u64)>) -> Self {
        let len = items.len();
        if len == 0 {
            return RTree::new();
        }
        let mut leaves: Vec<Entry> = items
            .into_iter()
            .map(|(rect, id)| Entry::Leaf { rect, id })
            .collect();
        // STR: sort by x-center, tile, sort each tile by y-center, then cut
        // into nodes (time is the minor axis: mobility data clusters
        // spatially first).
        let mut level: Vec<Node> = str_pack_level(&mut leaves, true);
        while level.len() > 1 {
            let mut entries: Vec<Entry> = level
                .into_iter()
                .map(|n| Entry::Node { rect: n.bounding_rect(), child: Box::new(n) })
                .collect();
            level = str_pack_level(&mut entries, false);
        }
        let root = level.pop().expect("non-empty input yields a root");
        RTree { root, len }
    }

    /// All ids whose boxes intersect `query` (closed-interval semantics,
    /// matching the `&&` overlap operator).
    pub fn search(&self, query: &Rect3) -> Vec<u64> {
        let mut out = Vec::new();
        self.root.search(query, &mut out);
        out
    }

    /// Visit matching ids without allocating the result vector.
    pub fn search_with(&self, query: &Rect3, f: &mut impl FnMut(u64)) {
        self.root.search_with(query, f);
    }

    /// Remove an entry by exact rect + id; returns whether it was found.
    /// (Simplified deletion: nodes are not re-condensed, matching how the
    /// paper's extension handles deletes via vacuuming.)
    pub fn remove(&mut self, rect: &Rect3, id: u64) -> bool {
        if self.root.remove(rect, id) {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Check structural invariants (used by tests).
    pub fn check_invariants(&self) {
        self.root.check_invariants(true);
        assert_eq!(self.root.count_leaves(), self.len, "leaf count matches len");
    }
}

/// Pack a flat list of entries into nodes of ≤ `MAX_ENTRIES` using STR.
fn str_pack_level(entries: &mut Vec<Entry>, leaf: bool) -> Vec<Node> {
    let n = entries.len();
    let node_cap = MAX_ENTRIES;
    let num_nodes = n.div_ceil(node_cap);
    // Number of vertical slabs ≈ sqrt(num_nodes).
    let slabs = (num_nodes as f64).sqrt().ceil() as usize;
    let per_slab = (n.div_ceil(slabs.max(1))).div_ceil(node_cap) * node_cap;

    // total_cmp: degenerate input rects (e.g. infinite extents whose
    // center is NaN) must not panic index construction.
    entries.sort_by(|a, b| a.rect().center(0).total_cmp(&b.rect().center(0)));
    let mut nodes = Vec::with_capacity(num_nodes);
    let mut rest: &mut [Entry] = entries.as_mut_slice();
    while !rest.is_empty() {
        let take = per_slab.min(rest.len()).max(1);
        let (slab, tail) = rest.split_at_mut(take);
        slab.sort_by(|a, b| a.rect().center(1).total_cmp(&b.rect().center(1)));
        for chunk in slab.chunks_mut(node_cap) {
            let mut node = if leaf { Node::new_leaf() } else { Node::new_inner() };
            for e in chunk.iter_mut() {
                node.entries.push(e.clone());
            }
            nodes.push(node);
        }
        rest = tail;
    }
    // Guard the minimum-fill invariant of the last node by borrowing from
    // its left sibling when necessary.
    let k = nodes.len();
    if k >= 2 {
        let last_len = nodes[k - 1].entries.len();
        if last_len < MIN_ENTRIES {
            let need = MIN_ENTRIES - last_len;
            let donor_len = nodes[k - 2].entries.len();
            if donor_len > need && donor_len - need >= MIN_ENTRIES {
                let moved: Vec<Entry> =
                    nodes[k - 2].entries.drain(donor_len - need..).collect();
                for (i, e) in moved.into_iter().enumerate() {
                    nodes[k - 1].entries.insert(i, e);
                }
            }
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect3 {
        Rect3::new([x0, y0, 0.0], [x1, y1, 1.0])
    }

    #[test]
    fn insert_and_search() {
        let mut t = RTree::new();
        for i in 0..100u64 {
            let x = i as f64;
            t.insert(r(x, x, x + 0.5, x + 0.5), i);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants();
        let mut hits = t.search(&r(10.0, 10.0, 12.0, 12.0));
        hits.sort();
        assert_eq!(hits, vec![10, 11, 12]);
        assert!(t.search(&r(1000.0, 1000.0, 1001.0, 1001.0)).is_empty());
    }

    #[test]
    fn bulk_load_matches_insert() {
        let items: Vec<(Rect3, u64)> = (0..500u64)
            .map(|i| {
                let x = (i % 37) as f64 * 3.0;
                let y = (i % 23) as f64 * 5.0;
                (r(x, y, x + 1.0, y + 1.0), i)
            })
            .collect();
        let bulk = RTree::bulk_load(items.clone());
        bulk.check_invariants();
        let mut incr = RTree::new();
        for (rect, id) in &items {
            incr.insert(*rect, *id);
        }
        incr.check_invariants();
        let q = r(0.0, 0.0, 20.0, 20.0);
        let mut a = bulk.search(&q);
        let mut b = incr.search(&q);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(bulk.len(), 500);
    }

    #[test]
    fn time_axis_filters() {
        let mut t = RTree::new();
        t.insert(Rect3::new([0.0, 0.0, 0.0], [1.0, 1.0, 10.0]), 1);
        t.insert(Rect3::new([0.0, 0.0, 20.0], [1.0, 1.0, 30.0]), 2);
        let hits = t.search(&Rect3::new([0.0, 0.0, 5.0], [1.0, 1.0, 6.0]));
        assert_eq!(hits, vec![1]);
        // Touching boundaries count (closed intervals).
        let hits = t.search(&Rect3::new([0.0, 0.0, 10.0], [1.0, 1.0, 20.0]));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn remove_entries() {
        let mut t = RTree::new();
        for i in 0..50u64 {
            t.insert(r(i as f64, 0.0, i as f64 + 0.5, 0.5), i);
        }
        assert!(t.remove(&r(7.0, 0.0, 7.5, 0.5), 7));
        assert!(!t.remove(&r(7.0, 0.0, 7.5, 0.5), 7));
        assert_eq!(t.len(), 49);
        assert!(t.search(&r(7.0, 0.0, 7.5, 0.5)).iter().all(|&id| id != 7));
    }

    #[test]
    fn empty_and_degenerate() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert!(t.search(&r(0.0, 0.0, 1.0, 1.0)).is_empty());
        let t = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        let t = RTree::bulk_load(vec![(r(0.0, 0.0, 0.0, 0.0), 42)]);
        assert_eq!(t.search(&r(0.0, 0.0, 0.0, 0.0)), vec![42]);
    }

    #[test]
    fn large_bulk_load_height_is_logarithmic() {
        let items: Vec<(Rect3, u64)> = (0..10_000u64)
            .map(|i| {
                let x = (i as f64).sin() * 1000.0;
                let y = (i as f64).cos() * 1000.0;
                (r(x, y, x + 1.0, y + 1.0), i)
            })
            .collect();
        let t = RTree::bulk_load(items);
        t.check_invariants();
        assert!(t.height() <= 4, "height {} too tall for 10k entries", t.height());
        let hits = t.search(&r(-2000.0, -2000.0, 2000.0, 2000.0));
        assert_eq!(hits.len(), 10_000);
    }

    #[test]
    fn infinite_axes_supported() {
        // Time-only stboxes map to infinite spatial extents.
        let mut t = RTree::new();
        t.insert(
            Rect3::new([f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0], [f64::INFINITY, f64::INFINITY, 5.0]),
            1,
        );
        t.insert(r(100.0, 100.0, 101.0, 101.0), 2);
        let hits = t.search(&Rect3::new([0.0, 0.0, 3.0], [1.0, 1.0, 4.0]));
        assert_eq!(hits, vec![1]);
    }
}
