//! Nodes, entries, and the Guttman quadratic-split insertion algorithm.

/// Fan-out bounds. 16/6 keeps nodes around a cache line's worth of boxes
/// while staying close to MEOS's defaults.
pub(crate) const MAX_ENTRIES: usize = 16;
pub(crate) const MIN_ENTRIES: usize = 6;

/// An axis-aligned 3-D box (x, y, t).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect3 {
    pub min: [f64; 3],
    pub max: [f64; 3],
}

impl Rect3 {
    /// Build, normalizing per-axis min/max order.
    pub fn new(a: [f64; 3], b: [f64; 3]) -> Self {
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for d in 0..3 {
            min[d] = a[d].min(b[d]);
            max[d] = a[d].max(b[d]);
        }
        Rect3 { min, max }
    }

    /// Closed-interval overlap on all three axes.
    #[inline]
    pub fn intersects(&self, other: &Rect3) -> bool {
        (0..3).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Rect3) -> Rect3 {
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for d in 0..3 {
            min[d] = self.min[d].min(other.min[d]);
            max[d] = self.max[d].max(other.max[d]);
        }
        Rect3 { min, max }
    }

    /// True when `other` fits entirely inside `self`.
    pub fn contains(&self, other: &Rect3) -> bool {
        (0..3).all(|d| self.min[d] <= other.min[d] && self.max[d] >= other.max[d])
    }

    /// Volume with infinite axes clamped (used only for split heuristics,
    /// where relative comparisons are what matters).
    pub fn volume(&self) -> f64 {
        (0..3)
            .map(|d| (self.max[d] - self.min[d]).min(1e18).max(0.0))
            .product()
    }

    /// Volume increase if `other` were merged in.
    pub fn enlargement(&self, other: &Rect3) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Center along axis `d` (finite fallback for infinite bounds).
    pub fn center(&self, d: usize) -> f64 {
        let lo = if self.min[d].is_finite() { self.min[d] } else { -1e18 };
        let hi = if self.max[d].is_finite() { self.max[d] } else { 1e18 };
        (lo + hi) * 0.5
    }
}

/// A node entry: either a data row (leaf level) or a child node.
#[derive(Debug, Clone)]
pub(crate) enum Entry {
    Leaf { rect: Rect3, id: u64 },
    Node { rect: Rect3, child: Box<Node> },
}

impl Entry {
    pub(crate) fn rect(&self) -> &Rect3 {
        match self {
            Entry::Leaf { rect, .. } => rect,
            Entry::Node { rect, .. } => rect,
        }
    }
}

/// An R-tree node.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) leaf: bool,
    pub(crate) entries: Vec<Entry>,
}

impl Node {
    pub(crate) fn new_leaf() -> Self {
        Node { leaf: true, entries: Vec::with_capacity(MAX_ENTRIES + 1) }
    }

    pub(crate) fn new_inner() -> Self {
        Node { leaf: false, entries: Vec::with_capacity(MAX_ENTRIES + 1) }
    }

    pub(crate) fn bounding_rect(&self) -> Rect3 {
        let mut it = self.entries.iter();
        let first = *it.next().expect("node never empty when asked for bounds").rect();
        it.fold(first, |acc, e| acc.union(e.rect()))
    }

    pub(crate) fn height(&self) -> usize {
        if self.leaf {
            1
        } else {
            1 + match &self.entries[0] {
                Entry::Node { child, .. } => child.height(),
                Entry::Leaf { .. } => 0,
            }
        }
    }

    /// Insert; on overflow split and return the two replacement entries for
    /// the parent.
    pub(crate) fn insert(&mut self, new_entry: Entry) -> Option<(Entry, Entry)> {
        if self.leaf {
            self.entries.push(new_entry);
            if self.entries.len() > MAX_ENTRIES {
                return Some(self.split());
            }
            return None;
        }
        // Choose the subtree needing least enlargement (ties: smallest).
        let target_rect = *new_entry.rect();
        let mut best = 0usize;
        let mut best_enlarge = f64::INFINITY;
        let mut best_vol = f64::INFINITY;
        for (i, e) in self.entries.iter().enumerate() {
            let enlarge = e.rect().enlargement(&target_rect);
            let vol = e.rect().volume();
            if enlarge < best_enlarge || (enlarge == best_enlarge && vol < best_vol) {
                best = i;
                best_enlarge = enlarge;
                best_vol = vol;
            }
        }
        let split = match &mut self.entries[best] {
            Entry::Node { rect, child } => {
                let s = child.insert(new_entry);
                if s.is_none() {
                    *rect = child.bounding_rect();
                }
                s
            }
            Entry::Leaf { .. } => unreachable!("inner nodes hold node entries"),
        };
        if let Some((e1, e2)) = split {
            // Replace the split child with its two halves.
            self.entries.swap_remove(best);
            self.entries.push(e1);
            self.entries.push(e2);
            if self.entries.len() > MAX_ENTRIES {
                return Some(self.split());
            }
        }
        None
    }

    /// Guttman quadratic split of an overflowing node.
    fn split(&mut self) -> (Entry, Entry) {
        let entries = std::mem::take(&mut self.entries);
        // Pick the two seeds wasting the most volume together.
        let (mut s1, mut s2) = (0usize, 1usize);
        let mut worst = f64::NEG_INFINITY;
        for i in 0..entries.len() {
            for j in i + 1..entries.len() {
                let waste = entries[i].rect().union(entries[j].rect()).volume()
                    - entries[i].rect().volume()
                    - entries[j].rect().volume();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let mut g1 = if self.leaf { Node::new_leaf() } else { Node::new_inner() };
        let mut g2 = if self.leaf { Node::new_leaf() } else { Node::new_inner() };
        let mut r1 = *entries[s1].rect();
        let mut r2 = *entries[s2].rect();
        let mut remaining: Vec<Entry> = Vec::with_capacity(entries.len());
        for (i, e) in entries.into_iter().enumerate() {
            if i == s1 {
                g1.entries.push(e);
            } else if i == s2 {
                g2.entries.push(e);
            } else {
                remaining.push(e);
            }
        }
        // Distribute, honouring the minimum-fill guarantee.
        while let Some(e) = remaining.pop() {
            let need1 = MIN_ENTRIES.saturating_sub(g1.entries.len());
            let need2 = MIN_ENTRIES.saturating_sub(g2.entries.len());
            let left = remaining.len() + 1;
            let into_g1 = if need1 >= left {
                true
            } else if need2 >= left {
                false
            } else {
                let e1 = r1.enlargement(e.rect());
                let e2 = r2.enlargement(e.rect());
                e1 < e2 || (e1 == e2 && g1.entries.len() <= g2.entries.len())
            };
            if into_g1 {
                r1 = r1.union(e.rect());
                g1.entries.push(e);
            } else {
                r2 = r2.union(e.rect());
                g2.entries.push(e);
            }
        }
        (
            Entry::Node { rect: g1.bounding_rect(), child: Box::new(g1) },
            Entry::Node { rect: g2.bounding_rect(), child: Box::new(g2) },
        )
    }

    pub(crate) fn search(&self, query: &Rect3, out: &mut Vec<u64>) {
        for e in &self.entries {
            if !e.rect().intersects(query) {
                continue;
            }
            match e {
                Entry::Leaf { id, .. } => out.push(*id),
                Entry::Node { child, .. } => child.search(query, out),
            }
        }
    }

    pub(crate) fn search_with(&self, query: &Rect3, f: &mut impl FnMut(u64)) {
        for e in &self.entries {
            if !e.rect().intersects(query) {
                continue;
            }
            match e {
                Entry::Leaf { id, .. } => f(*id),
                Entry::Node { child, .. } => child.search_with(query, f),
            }
        }
    }

    pub(crate) fn remove(&mut self, rect: &Rect3, id: u64) -> bool {
        if self.leaf {
            if let Some(pos) = self.entries.iter().position(|e| match e {
                Entry::Leaf { rect: r, id: i } => i == &id && r == rect,
                Entry::Node { .. } => false,
            }) {
                self.entries.swap_remove(pos);
                return true;
            }
            return false;
        }
        for e in &mut self.entries {
            if let Entry::Node { rect: r, child } = e {
                if r.contains(rect) && child.remove(rect, id) {
                    if !child.entries.is_empty() {
                        *r = child.bounding_rect();
                    }
                    return true;
                }
            }
        }
        false
    }

    pub(crate) fn count_leaves(&self) -> usize {
        if self.leaf {
            self.entries.len()
        } else {
            self.entries
                .iter()
                .map(|e| match e {
                    Entry::Node { child, .. } => child.count_leaves(),
                    Entry::Leaf { .. } => 1,
                })
                .sum()
        }
    }

    pub(crate) fn check_invariants(&self, is_root: bool) {
        assert!(self.entries.len() <= MAX_ENTRIES, "node over capacity");
        if !is_root && !self.entries.is_empty() {
            // Deletion without condensing can drop below MIN; only freshly
            // built structure is held to the strict bound.
        }
        if !self.leaf {
            for e in &self.entries {
                match e {
                    Entry::Node { rect, child } => {
                        assert!(!child.entries.is_empty(), "empty child node");
                        let actual = child.bounding_rect();
                        assert!(
                            rect.contains(&actual),
                            "stored rect {rect:?} does not cover child {actual:?}"
                        );
                        child.check_invariants(false);
                    }
                    Entry::Leaf { .. } => panic!("leaf entry in inner node"),
                }
            }
        }
    }
}
