//! Reversible binary encoding for [`Value`] and [`LogicalType`].
//!
//! Unlike `Value::hash_key` (one-way, for grouping), this codec must
//! round-trip every storable value byte-exactly across a process
//! restart. Extension values are encoded as `(type name, to_bytes())`
//! and decoded through the registry's ext codecs — the same "aliased
//! BLOB" contract the paper uses for MEOS types — so a WAL containing
//! `tgeompoint` columns can only be recovered after
//! `mobilityduck::load` has populated the registry.
//!
//! All integers are little-endian. Strings and blobs are
//! length-prefixed with `u32`. Each value starts with a one-byte tag.

use std::sync::Arc;

use mduck_sql::{LogicalType, Registry, SqlError, SqlResult, Value};

// Value tags. Stable on disk: append new tags, never renumber.
const T_NULL: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_FLOAT: u8 = 3;
const T_TEXT: u8 = 4;
const T_BLOB: u8 = 5;
const T_TIMESTAMP: u8 = 6;
const T_DATE: u8 = 7;
const T_INTERVAL: u8 = 8;
const T_EXT: u8 = 9;
const T_LIST: u8 = 10;

// LogicalType tags.
const LT_NULL: u8 = 0;
const LT_BOOL: u8 = 1;
const LT_INT: u8 = 2;
const LT_FLOAT: u8 = 3;
const LT_TEXT: u8 = 4;
const LT_BLOB: u8 = 5;
const LT_TIMESTAMP: u8 = 6;
const LT_DATE: u8 = 7;
const LT_INTERVAL: u8 = 8;
const LT_EXT: u8 = 9;
const LT_LIST: u8 = 10;
const LT_ANY: u8 = 11;

// ------------------------------------------------------------------ writer

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

// ------------------------------------------------------------------ reader

/// A bounds-checked reader over an on-disk payload. Every overrun is a
/// typed [`SqlError::Corruption`], never a panic.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> SqlResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SqlError::corruption(format!(
                "payload truncated: wanted {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> SqlResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> SqlResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> SqlResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn i32(&mut self) -> SqlResult<i32> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn i64(&mut self) -> SqlResult<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn bytes(&mut self) -> SqlResult<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub fn str(&mut self) -> SqlResult<&'a str> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map_err(|e| SqlError::corruption(format!("payload holds invalid UTF-8: {e}")))
    }
}

// ------------------------------------------------------------------ values

pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, T_NULL),
        Value::Bool(b) => {
            put_u8(buf, T_BOOL);
            put_u8(buf, *b as u8);
        }
        Value::Int(n) => {
            put_u8(buf, T_INT);
            put_i64(buf, *n);
        }
        Value::Float(f) => {
            put_u8(buf, T_FLOAT);
            put_u64(buf, f.to_bits());
        }
        Value::Text(s) => {
            put_u8(buf, T_TEXT);
            put_str(buf, s);
        }
        Value::Blob(b) => {
            put_u8(buf, T_BLOB);
            put_bytes(buf, b);
        }
        Value::Timestamp(us) => {
            put_u8(buf, T_TIMESTAMP);
            put_i64(buf, *us);
        }
        Value::Date(d) => {
            put_u8(buf, T_DATE);
            put_i32(buf, *d);
        }
        Value::Interval { months, days, usecs } => {
            put_u8(buf, T_INTERVAL);
            put_i32(buf, *months);
            put_i32(buf, *days);
            put_i64(buf, *usecs);
        }
        Value::Ext(e) => {
            put_u8(buf, T_EXT);
            put_str(buf, e.type_name());
            put_bytes(buf, &e.obj.to_bytes());
        }
        Value::List(items) => {
            put_u8(buf, T_LIST);
            put_u32(buf, items.len() as u32);
            for item in items.iter() {
                encode_value(buf, item);
            }
        }
    }
}

pub fn decode_value(cur: &mut Cursor<'_>, registry: &Registry) -> SqlResult<Value> {
    let tag = cur.u8()?;
    Ok(match tag {
        T_NULL => Value::Null,
        T_BOOL => Value::Bool(cur.u8()? != 0),
        T_INT => Value::Int(cur.i64()?),
        T_FLOAT => Value::Float(f64::from_bits(cur.u64()?)),
        T_TEXT => Value::Text(Arc::from(cur.str()?)),
        T_BLOB => Value::Blob(Arc::from(cur.bytes()?)),
        T_TIMESTAMP => Value::Timestamp(cur.i64()?),
        T_DATE => Value::Date(cur.i32()?),
        T_INTERVAL => Value::Interval {
            months: cur.i32()?,
            days: cur.i32()?,
            usecs: cur.i64()?,
        },
        T_EXT => {
            let name = cur.str()?.to_string();
            let bytes = cur.bytes()?;
            let decode = registry.ext_codec(&name).ok_or_else(|| {
                SqlError::execution(format!(
                    "cannot recover value of extension type '{name}': no codec registered \
                     (attach the WAL after loading the extension)"
                ))
            })?;
            decode(bytes)?
        }
        T_LIST => {
            let n = cur.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                items.push(decode_value(cur, registry)?);
            }
            Value::List(Arc::new(items))
        }
        other => {
            return Err(SqlError::corruption(format!("unknown value tag {other}")));
        }
    })
}

// ------------------------------------------------------------------ types

pub fn encode_type(buf: &mut Vec<u8>, ty: &LogicalType) {
    match ty {
        LogicalType::Null => put_u8(buf, LT_NULL),
        LogicalType::Bool => put_u8(buf, LT_BOOL),
        LogicalType::Int => put_u8(buf, LT_INT),
        LogicalType::Float => put_u8(buf, LT_FLOAT),
        LogicalType::Text => put_u8(buf, LT_TEXT),
        LogicalType::Blob => put_u8(buf, LT_BLOB),
        LogicalType::Timestamp => put_u8(buf, LT_TIMESTAMP),
        LogicalType::Date => put_u8(buf, LT_DATE),
        LogicalType::Interval => put_u8(buf, LT_INTERVAL),
        LogicalType::Ext(name) => {
            put_u8(buf, LT_EXT);
            put_str(buf, name);
        }
        LogicalType::List => put_u8(buf, LT_LIST),
        LogicalType::Any => put_u8(buf, LT_ANY),
    }
}

pub fn decode_type(cur: &mut Cursor<'_>) -> SqlResult<LogicalType> {
    let tag = cur.u8()?;
    Ok(match tag {
        LT_NULL => LogicalType::Null,
        LT_BOOL => LogicalType::Bool,
        LT_INT => LogicalType::Int,
        LT_FLOAT => LogicalType::Float,
        LT_TEXT => LogicalType::Text,
        LT_BLOB => LogicalType::Blob,
        LT_TIMESTAMP => LogicalType::Timestamp,
        LT_DATE => LogicalType::Date,
        LT_INTERVAL => LogicalType::Interval,
        LT_EXT => LogicalType::ext(cur.str()?),
        LT_LIST => LogicalType::List,
        LT_ANY => LogicalType::Any,
        other => {
            return Err(SqlError::corruption(format!("unknown type tag {other}")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, v);
        let registry = Registry::default();
        decode_value(&mut Cursor::new(&buf), &registry).unwrap()
    }

    #[test]
    fn scalar_values_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Float(f64::MAX),
            Value::text("héllo wörld"),
            Value::blob(vec![0u8, 255, 3]),
            Value::Timestamp(1_700_000_000_000_000),
            Value::Date(-719_162),
            Value::Interval { months: -3, days: 14, usecs: 123_456 },
            Value::List(Arc::new(vec![Value::Int(1), Value::Null, Value::text("x")])),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn nan_bits_are_preserved() {
        let v = Value::Float(f64::NAN);
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        let registry = Registry::default();
        let back = decode_value(&mut Cursor::new(&buf), &registry).unwrap();
        match back {
            Value::Float(f) => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn types_roundtrip() {
        for ty in [
            LogicalType::Null,
            LogicalType::Bool,
            LogicalType::Int,
            LogicalType::Float,
            LogicalType::Text,
            LogicalType::Blob,
            LogicalType::Timestamp,
            LogicalType::Date,
            LogicalType::Interval,
            LogicalType::ext("stbox"),
            LogicalType::List,
            LogicalType::Any,
        ] {
            let mut buf = Vec::new();
            encode_type(&mut buf, &ty);
            assert_eq!(decode_type(&mut Cursor::new(&buf)).unwrap(), ty);
        }
    }

    #[test]
    fn truncated_payload_is_typed_corruption() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::text("truncate me"));
        buf.truncate(buf.len() - 3);
        let registry = Registry::default();
        let err = decode_value(&mut Cursor::new(&buf), &registry).unwrap_err();
        assert!(matches!(err, SqlError::Corruption(_)), "{err}");
    }

    #[test]
    fn unknown_ext_type_is_typed_execution_error() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 9); // T_EXT
        put_str(&mut buf, "mystery");
        put_bytes(&mut buf, b"\x01\x02");
        let registry = Registry::default();
        let err = decode_value(&mut Cursor::new(&buf), &registry).unwrap_err();
        assert!(matches!(err, SqlError::Execution(_)), "{err}");
    }
}
