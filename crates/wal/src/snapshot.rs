//! Checkpoint snapshots: a full, self-contained image of the catalog
//! and every table, written atomically (temp file + fsync + rename) so
//! a crash mid-checkpoint always leaves either the old image or the new
//! one, never a blend.
//!
//! The snapshot records `last_seq`, the sequence number of the last WAL
//! record it covers. Recovery replays only records with a higher
//! sequence number, which makes the checkpoint protocol safe against a
//! crash between the rename and the WAL truncation (the full WAL is
//! still on disk, but its already-checkpointed prefix is skipped).

use mduck_sql::{LogicalType, Registry, SqlError, SqlResult, Value};

use crate::codec::{
    decode_type, decode_value, encode_type, encode_value, put_str, put_u32, put_u64, Cursor,
};
use crate::crc32::crc32;

/// Secondary-index definition, engine-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    pub name: String,
    pub method: String,
    pub column: String,
}

/// One table's full image.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    pub name: String,
    pub columns: Vec<(String, LogicalType)>,
    pub indexes: Vec<IndexDef>,
    pub rows: Vec<Vec<Value>>,
}

/// The whole database image, tables sorted by name for determinism.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub tables: Vec<TableSnapshot>,
}

const CKPT_MAGIC: &[u8; 4] = b"MDCK";
const CKPT_VERSION: u32 = 1;

/// Serialize a checkpoint file image: magic, version, CRC, payload
/// length, payload (`last_seq` + tables).
pub fn encode_checkpoint(snapshot: &Snapshot, last_seq: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, last_seq);
    put_u32(&mut payload, snapshot.tables.len() as u32);
    for t in &snapshot.tables {
        put_str(&mut payload, &t.name);
        put_u32(&mut payload, t.columns.len() as u32);
        for (cname, ty) in &t.columns {
            put_str(&mut payload, cname);
            encode_type(&mut payload, ty);
        }
        put_u32(&mut payload, t.indexes.len() as u32);
        for idx in &t.indexes {
            put_str(&mut payload, &idx.name);
            put_str(&mut payload, &idx.method);
            put_str(&mut payload, &idx.column);
        }
        put_u64(&mut payload, t.rows.len() as u64);
        for row in &t.rows {
            put_u32(&mut payload, row.len() as u32);
            for v in row {
                encode_value(&mut payload, v);
            }
        }
    }
    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Parse a checkpoint file image. Any structural defect — bad magic,
/// wrong version, truncation, CRC mismatch — is typed corruption: a
/// checkpoint is renamed into place atomically, so unlike the WAL it
/// has no legitimate "torn" state.
pub fn decode_checkpoint(bytes: &[u8], registry: &Registry) -> SqlResult<(Snapshot, u64)> {
    if bytes.len() < 20 {
        return Err(SqlError::corruption(format!(
            "checkpoint file too short ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[0..4] != CKPT_MAGIC {
        return Err(SqlError::corruption("checkpoint file has bad magic"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != CKPT_VERSION {
        return Err(SqlError::corruption(format!(
            "checkpoint version {version} unsupported (expected {CKPT_VERSION})"
        )));
    }
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]) as usize;
    let body = &bytes[20..];
    if body.len() != len {
        return Err(SqlError::corruption(format!(
            "checkpoint payload length mismatch: header says {len}, file has {}",
            body.len()
        )));
    }
    if crc32(body) != crc {
        return Err(SqlError::corruption("checkpoint payload failed CRC check"));
    }
    let mut cur = Cursor::new(body);
    let last_seq = cur.u64()?;
    let ntables = cur.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(4096));
    for _ in 0..ntables {
        let name = cur.str()?.to_string();
        let ncols = cur.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(4096));
        for _ in 0..ncols {
            let cname = cur.str()?.to_string();
            columns.push((cname, decode_type(&mut cur)?));
        }
        let nidx = cur.u32()? as usize;
        let mut indexes = Vec::with_capacity(nidx.min(4096));
        for _ in 0..nidx {
            indexes.push(IndexDef {
                name: cur.str()?.to_string(),
                method: cur.str()?.to_string(),
                column: cur.str()?.to_string(),
            });
        }
        let nrows = cur.u64()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1_048_576));
        for _ in 0..nrows {
            let width = cur.u32()? as usize;
            let mut row = Vec::with_capacity(width.min(4096));
            for _ in 0..width {
                row.push(decode_value(&mut cur, registry)?);
            }
            rows.push(row);
        }
        tables.push(TableSnapshot { name, columns, indexes, rows });
    }
    if !cur.is_empty() {
        return Err(SqlError::corruption(format!(
            "checkpoint payload has {} trailing bytes",
            cur.remaining()
        )));
    }
    Ok((Snapshot { tables }, last_seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            tables: vec![TableSnapshot {
                name: "pts".into(),
                columns: vec![
                    ("id".into(), LogicalType::Int),
                    ("label".into(), LogicalType::Text),
                ],
                indexes: vec![IndexDef {
                    name: "pts_id_idx".into(),
                    method: "art".into(),
                    column: "id".into(),
                }],
                rows: vec![
                    vec![Value::Int(1), Value::text("a")],
                    vec![Value::Int(2), Value::Null],
                ],
            }],
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let snap = sample();
        let bytes = encode_checkpoint(&snap, 42);
        let registry = Registry::default();
        let (back, seq) = decode_checkpoint(&bytes, &registry).unwrap();
        assert_eq!(back, snap);
        assert_eq!(seq, 42);
    }

    #[test]
    fn byte_flip_is_corruption() {
        let snap = sample();
        let mut bytes = encode_checkpoint(&snap, 7);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let registry = Registry::default();
        let err = decode_checkpoint(&bytes, &registry).unwrap_err();
        assert!(matches!(err, SqlError::Corruption(_)), "{err}");
    }

    #[test]
    fn truncation_is_corruption() {
        let snap = sample();
        let mut bytes = encode_checkpoint(&snap, 7);
        bytes.truncate(bytes.len() - 5);
        let registry = Registry::default();
        let err = decode_checkpoint(&bytes, &registry).unwrap_err();
        assert!(matches!(err, SqlError::Corruption(_)), "{err}");
    }
}
