//! Logical WAL records: one per committed DDL/DML statement.
//!
//! DML deltas are **positional**: both engines are positional stores
//! whose UPDATE/DELETE preserve physical row order, so `(row, col)`
//! coordinates replay byte-exactly. Inserted rows are recorded
//! post-coercion (full table width, declared column order), which makes
//! replay a pure mechanical apply with no expression re-evaluation.

use mduck_sql::{LogicalType, Registry, SqlError, SqlResult, Value};

use crate::codec::{
    decode_type, decode_value, encode_type, encode_value, put_str, put_u32, put_u64, put_u8,
    Cursor,
};

const R_CREATE_TABLE: u8 = 1;
const R_DROP_TABLE: u8 = 2;
const R_CREATE_INDEX: u8 = 3;
const R_INSERT: u8 = 4;
const R_UPDATE: u8 = 5;
const R_DELETE: u8 = 6;

/// One durably logged statement effect.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    CreateTable {
        name: String,
        columns: Vec<(String, LogicalType)>,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        name: String,
        table: String,
        method: String,
        column: String,
    },
    /// Fully coerced rows in declared column order.
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    /// Individual cell overwrites: `(row position, column ordinal, new value)`.
    Update {
        table: String,
        cells: Vec<(u64, u64, Value)>,
    },
    /// Physical row positions at the time of the delete, ascending.
    Delete {
        table: String,
        rows: Vec<u64>,
    },
}

impl WalRecord {
    /// Human-readable kind, for diagnostics and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::CreateTable { .. } => "create_table",
            WalRecord::DropTable { .. } => "drop_table",
            WalRecord::CreateIndex { .. } => "create_index",
            WalRecord::Insert { .. } => "insert",
            WalRecord::Update { .. } => "update",
            WalRecord::Delete { .. } => "delete",
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WalRecord::CreateTable { name, columns } => {
                put_u8(&mut buf, R_CREATE_TABLE);
                put_str(&mut buf, name);
                put_u32(&mut buf, columns.len() as u32);
                for (cname, ty) in columns {
                    put_str(&mut buf, cname);
                    encode_type(&mut buf, ty);
                }
            }
            WalRecord::DropTable { name } => {
                put_u8(&mut buf, R_DROP_TABLE);
                put_str(&mut buf, name);
            }
            WalRecord::CreateIndex { name, table, method, column } => {
                put_u8(&mut buf, R_CREATE_INDEX);
                put_str(&mut buf, name);
                put_str(&mut buf, table);
                put_str(&mut buf, method);
                put_str(&mut buf, column);
            }
            WalRecord::Insert { table, rows } => {
                put_u8(&mut buf, R_INSERT);
                put_str(&mut buf, table);
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_u32(&mut buf, row.len() as u32);
                    for v in row {
                        encode_value(&mut buf, v);
                    }
                }
            }
            WalRecord::Update { table, cells } => {
                put_u8(&mut buf, R_UPDATE);
                put_str(&mut buf, table);
                put_u32(&mut buf, cells.len() as u32);
                for (row, col, v) in cells {
                    put_u64(&mut buf, *row);
                    put_u64(&mut buf, *col);
                    encode_value(&mut buf, v);
                }
            }
            WalRecord::Delete { table, rows } => {
                put_u8(&mut buf, R_DELETE);
                put_str(&mut buf, table);
                put_u32(&mut buf, rows.len() as u32);
                for r in rows {
                    put_u64(&mut buf, *r);
                }
            }
        }
        buf
    }

    pub fn decode(payload: &[u8], registry: &Registry) -> SqlResult<WalRecord> {
        let mut cur = Cursor::new(payload);
        let rec = Self::decode_cursor(&mut cur, registry)?;
        if !cur.is_empty() {
            return Err(SqlError::corruption(format!(
                "wal record has {} trailing bytes after {}",
                cur.remaining(),
                rec.kind()
            )));
        }
        Ok(rec)
    }

    fn decode_cursor(cur: &mut Cursor<'_>, registry: &Registry) -> SqlResult<WalRecord> {
        let tag = cur.u8()?;
        Ok(match tag {
            R_CREATE_TABLE => {
                let name = cur.str()?.to_string();
                let ncols = cur.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(4096));
                for _ in 0..ncols {
                    let cname = cur.str()?.to_string();
                    let ty = decode_type(cur)?;
                    columns.push((cname, ty));
                }
                WalRecord::CreateTable { name, columns }
            }
            R_DROP_TABLE => WalRecord::DropTable { name: cur.str()?.to_string() },
            R_CREATE_INDEX => WalRecord::CreateIndex {
                name: cur.str()?.to_string(),
                table: cur.str()?.to_string(),
                method: cur.str()?.to_string(),
                column: cur.str()?.to_string(),
            },
            R_INSERT => {
                let table = cur.str()?.to_string();
                let nrows = cur.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(65_536));
                for _ in 0..nrows {
                    let width = cur.u32()? as usize;
                    let mut row = Vec::with_capacity(width.min(4096));
                    for _ in 0..width {
                        row.push(decode_value(cur, registry)?);
                    }
                    rows.push(row);
                }
                WalRecord::Insert { table, rows }
            }
            R_UPDATE => {
                let table = cur.str()?.to_string();
                let ncells = cur.u32()? as usize;
                let mut cells = Vec::with_capacity(ncells.min(65_536));
                for _ in 0..ncells {
                    let row = cur.u64()?;
                    let col = cur.u64()?;
                    cells.push((row, col, decode_value(cur, registry)?));
                }
                WalRecord::Update { table, cells }
            }
            R_DELETE => {
                let table = cur.str()?.to_string();
                let nrows = cur.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(65_536));
                for _ in 0..nrows {
                    rows.push(cur.u64()?);
                }
                WalRecord::Delete { table, rows }
            }
            other => {
                return Err(SqlError::corruption(format!("unknown wal record tag {other}")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip() {
        let registry = Registry::default();
        let records = vec![
            WalRecord::CreateTable {
                name: "trips".into(),
                columns: vec![
                    ("id".into(), LogicalType::Int),
                    ("route".into(), LogicalType::ext("tgeompoint")),
                ],
            },
            WalRecord::DropTable { name: "old".into() },
            WalRecord::CreateIndex {
                name: "trips_route_idx".into(),
                table: "trips".into(),
                method: "rtree".into(),
                column: "route".into(),
            },
            WalRecord::Insert {
                table: "trips".into(),
                rows: vec![
                    vec![Value::Int(1), Value::text("a")],
                    vec![Value::Null, Value::Float(2.5)],
                ],
            },
            WalRecord::Update {
                table: "trips".into(),
                cells: vec![(0, 1, Value::text("b")), (7, 0, Value::Int(9))],
            },
            WalRecord::Delete { table: "trips".into(), rows: vec![0, 3, 9] },
        ];
        for rec in records {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes, &registry).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let registry = Registry::default();
        let mut bytes = WalRecord::DropTable { name: "t".into() }.encode();
        bytes.push(0xAB);
        let err = WalRecord::decode(&bytes, &registry).unwrap_err();
        assert!(matches!(err, SqlError::Corruption(_)), "{err}");
    }
}
