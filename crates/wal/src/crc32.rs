//! CRC-32 (IEEE 802.3 polynomial, reflected), hand-rolled so the crate
//! stays dependency-free. Every WAL record payload and the checkpoint
//! body carry one of these; a mismatch is how recovery distinguishes
//! bit rot from a cleanly torn tail.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (same parameters as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
