//! # mduck-wal — crash-safe durability for the MobilityDuck engines
//!
//! The paper's engines inherit durability from DuckDB's storage layer;
//! this crate is our reproduction's equivalent: a length-prefixed,
//! CRC32-checksummed write-ahead log plus checkpoint/recovery, shared
//! by both the vectorized and the row engine through
//! [`DurabilityManager`]. The in-memory default is unchanged — a
//! database only pays for durability after `Database::open(path)` or
//! `PRAGMA wal='path'`.
//!
//! Module map:
//! * [`crc32`] — hand-rolled IEEE CRC-32 (zero external deps).
//! * [`codec`] — reversible binary encoding of `Value`/`LogicalType`.
//! * [`record`] — logical WAL records (one per committed statement).
//! * [`snapshot`] — checkpoint images and their atomic-rename protocol.
//! * [`wal`] — the log file, recovery, and the append/checkpoint path.
//! * [`failpoint`] — deterministic fault injection for all of the above.

pub mod codec;
pub mod crc32;
pub mod failpoint;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use failpoint::{FailAction, FailDecision};
pub use record::WalRecord;
pub use snapshot::{IndexDef, Snapshot, TableSnapshot};
pub use wal::{DurabilityManager, Recovery, DEFAULT_AUTO_CHECKPOINT_BYTES, WAL_HEADER_LEN};
