//! The write-ahead log file and the [`DurabilityManager`] both engines
//! share.
//!
//! ## On-disk layout
//!
//! * `<path>` — the WAL: an 8-byte header (`b"MDWL"` + `u32` version)
//!   followed by frames `[u32 payload_len][u32 crc32][payload]` where
//!   the payload is `[u64 seq][record bytes]`. `seq` is a monotonically
//!   increasing statement sequence number shared with the checkpoint.
//! * `<path>.ckpt` — the latest checkpoint (see [`crate::snapshot`]),
//!   replaced atomically via `<path>.ckpt.tmp` + rename.
//!
//! ## Recovery rules
//!
//! Walking frames from the header: a frame whose header or payload
//! extends past end-of-file is a **torn tail** — the expected residue
//! of a crash mid-append — and is truncated away silently (counted in
//! `wal_torn_tails`). A fully present frame whose CRC does not match is
//! **corruption** and surfaces as a typed [`SqlError::Corruption`]:
//! recovery refuses to guess, and never replays garbage.
//!
//! ## Commit protocol
//!
//! Engines validate and buffer a statement's full effect, append one
//! record here, and only then mutate in-memory state (log-then-apply;
//! the apply stage is infallible after validation). If the append
//! fails, the file is rolled back to its pre-append length and the
//! statement fails cleanly with the in-memory state untouched.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use mduck_obs::metrics::metrics;
use mduck_obs::span::span;
use mduck_sql::{Registry, SqlError, SqlResult};

use crate::codec::{put_u32, put_u64};
use crate::crc32::crc32;
use crate::failpoint::{self, FailAction, FailDecision};
use crate::record::WalRecord;
use crate::snapshot::{decode_checkpoint, encode_checkpoint, Snapshot};

const WAL_MAGIC: &[u8; 4] = b"MDWL";
const WAL_VERSION: u32 = 1;
/// Magic + version.
pub const WAL_HEADER_LEN: u64 = 8;
/// `[u32 len][u32 crc]` preceding every payload.
const FRAME_HEADER_LEN: u64 = 8;
/// Auto-checkpoint once the WAL exceeds this many bytes (0 disables).
pub const DEFAULT_AUTO_CHECKPOINT_BYTES: u64 = 4 * 1024 * 1024;

/// What `DurabilityManager::open` recovered from disk, for the engine
/// to apply: the checkpoint image (if any), then the WAL records in
/// order.
#[derive(Debug, Default)]
pub struct Recovery {
    pub snapshot: Option<Snapshot>,
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away (0 when the log ended cleanly).
    pub torn_tail_bytes: u64,
}

#[derive(Debug)]
struct Inner {
    file: File,
    /// Valid length of the WAL file (header + complete frames).
    len: u64,
    /// Sequence number the next append will use.
    next_seq: u64,
    /// Set after a simulated crash: every later durability call fails
    /// until the database is reopened from disk.
    poisoned: bool,
}

/// One per database with durability attached. All file access is
/// serialized under an internal mutex; the engines already serialize
/// DML per statement, so this is never contended on the hot path.
#[derive(Debug)]
pub struct DurabilityManager {
    wal_path: PathBuf,
    ckpt_path: PathBuf,
    inner: Mutex<Inner>,
    auto_checkpoint: AtomicU64,
}

fn io_err(ctx: &str, e: std::io::Error) -> SqlError {
    SqlError::io(format!("{ctx}: {e}"))
}

fn wal_header_bytes() -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[0..4].copy_from_slice(WAL_MAGIC);
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

impl DurabilityManager {
    /// Open (or create) the WAL at `path`, run recovery, and hand back
    /// the recovered image for the engine to apply. `registry` supplies
    /// the ext codecs needed to decode extension values, so durability
    /// must be attached *after* extensions are loaded.
    pub fn open(path: impl Into<PathBuf>, registry: &Registry) -> SqlResult<(Self, Recovery)> {
        let _span = span("wal.recover");
        let t0 = Instant::now();
        let wal_path: PathBuf = path.into();
        let ckpt_path = PathBuf::from(format!("{}.ckpt", wal_path.display()));

        if let FailDecision::Fail { .. } = failpoint::check("wal.open.read") {
            return Err(SqlError::io("injected open failure at failpoint 'wal.open.read'"));
        }

        // 1. Checkpoint image, if one exists.
        let (snapshot, ckpt_seq) = match std::fs::read(&ckpt_path) {
            Ok(bytes) => {
                let (snap, seq) = decode_checkpoint(&bytes, registry)
                    .map_err(|e| match e {
                        SqlError::Corruption(m) => SqlError::Corruption(format!(
                            "checkpoint {}: {m}",
                            ckpt_path.display()
                        )),
                        other => other,
                    })?;
                (Some(snap), seq)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (None, 0),
            Err(e) => return Err(io_err("reading checkpoint", e)),
        };

        // 2. The log itself.
        let bytes = match std::fs::read(&wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("reading wal", e)),
        };

        let mut fresh_header = false;
        if bytes.len() < WAL_HEADER_LEN as usize {
            // Empty or torn-header file: a crash during the very first
            // open. Anything that is not a prefix of our own header is
            // someone else's file — refuse to overwrite it.
            let expect = wal_header_bytes();
            if !expect.starts_with(&bytes) {
                return Err(SqlError::corruption(format!(
                    "{} is not a MobilityDuck WAL (bad magic)",
                    wal_path.display()
                )));
            }
            fresh_header = true;
        } else {
            if &bytes[0..4] != WAL_MAGIC {
                return Err(SqlError::corruption(format!(
                    "{} is not a MobilityDuck WAL (bad magic)",
                    wal_path.display()
                )));
            }
            let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            if version != WAL_VERSION {
                return Err(SqlError::corruption(format!(
                    "wal version {version} unsupported (expected {WAL_VERSION})"
                )));
            }
        }

        // 3. Walk frames: collect records newer than the checkpoint,
        //    stop at a torn tail, refuse corruption.
        let mut records = Vec::new();
        let mut max_seq = ckpt_seq;
        let mut pos = WAL_HEADER_LEN as usize;
        let mut valid_len = pos as u64;
        let mut torn_tail_bytes = 0u64;
        if !fresh_header {
            while pos < bytes.len() {
                let remaining = bytes.len() - pos;
                if remaining < FRAME_HEADER_LEN as usize {
                    torn_tail_bytes = remaining as u64;
                    break;
                }
                let len = u32::from_le_bytes([
                    bytes[pos],
                    bytes[pos + 1],
                    bytes[pos + 2],
                    bytes[pos + 3],
                ]) as usize;
                let crc = u32::from_le_bytes([
                    bytes[pos + 4],
                    bytes[pos + 5],
                    bytes[pos + 6],
                    bytes[pos + 7],
                ]);
                if len < 8 || len > remaining - FRAME_HEADER_LEN as usize {
                    // Frame extends past EOF (or cannot even hold its
                    // seq): the torn residue of a crashed append.
                    torn_tail_bytes = remaining as u64;
                    break;
                }
                let payload = &bytes[pos + 8..pos + 8 + len];
                if crc32(payload) != crc {
                    return Err(SqlError::corruption(format!(
                        "wal record at offset {pos} failed CRC check"
                    )));
                }
                let seq = u64::from_le_bytes([
                    payload[0], payload[1], payload[2], payload[3], payload[4], payload[5],
                    payload[6], payload[7],
                ]);
                let rec = WalRecord::decode(&payload[8..], registry).map_err(|e| match e {
                    SqlError::Corruption(m) => SqlError::Corruption(format!(
                        "wal record at offset {pos}: {m}"
                    )),
                    other => other,
                })?;
                if seq > ckpt_seq {
                    records.push(rec);
                }
                max_seq = max_seq.max(seq);
                pos += (FRAME_HEADER_LEN as usize) + len;
                valid_len = pos as u64;
            }
        }

        // 4. Materialize the cleaned-up file: write the header if the
        //    file was fresh/torn-at-header, truncate a torn tail.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| io_err("opening wal", e))?;
        if torn_tail_bytes > 0 {
            if let FailDecision::Fail { .. } = failpoint::check("wal.recover.truncate") {
                return Err(SqlError::io(
                    "injected failure at failpoint 'wal.recover.truncate'",
                ));
            }
            file.set_len(valid_len).map_err(|e| io_err("truncating torn wal tail", e))?;
            file.sync_data().map_err(|e| io_err("syncing wal after truncation", e))?;
            metrics().wal_torn_tails.inc(1);
        }
        if fresh_header {
            file.set_len(0).map_err(|e| io_err("resetting wal header", e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seeking wal", e))?;
            file.write_all(&wal_header_bytes()).map_err(|e| io_err("writing wal header", e))?;
            file.sync_data().map_err(|e| io_err("syncing wal header", e))?;
            valid_len = WAL_HEADER_LEN;
        }
        file.seek(SeekFrom::Start(valid_len)).map_err(|e| io_err("seeking wal", e))?;

        let replayed = records.len() as u64;
        let manager = DurabilityManager {
            wal_path,
            ckpt_path,
            inner: Mutex::new(Inner {
                file,
                len: valid_len,
                next_seq: max_seq + 1,
                poisoned: false,
            }),
            auto_checkpoint: AtomicU64::new(DEFAULT_AUTO_CHECKPOINT_BYTES),
        };
        metrics().wal_recoveries.inc(1);
        metrics().wal_records_replayed.inc(replayed);
        metrics().wal_recovery_ns.observe(t0.elapsed().as_nanos() as u64);
        Ok((manager, Recovery { snapshot, records, torn_tail_bytes }))
    }

    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    pub fn checkpoint_path(&self) -> &Path {
        &self.ckpt_path
    }

    pub fn wal_len(&self) -> u64 {
        self.lock().len
    }

    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }

    /// Auto-checkpoint threshold in bytes; 0 disables.
    pub fn set_auto_checkpoint(&self, bytes: u64) {
        self.auto_checkpoint.store(bytes, Ordering::Relaxed);
    }

    pub fn auto_checkpoint(&self) -> u64 {
        self.auto_checkpoint.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // The inner state is a plain file handle + counters; a panic
        // mid-operation cannot leave it logically inconsistent beyond
        // what `poisoned` already models.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Force the WAL file to `pre_len` plus `extra` trailing bytes —
    /// used both to roll back a failed append and to fabricate the torn
    /// state a simulated crash leaves behind. A real I/O error here
    /// poisons the manager: the file can no longer be trusted.
    fn force_state(inner: &mut Inner, pre_len: u64, extra: &[u8]) -> SqlResult<()> {
        let res = (|| -> std::io::Result<()> {
            inner.file.set_len(pre_len)?;
            inner.file.seek(SeekFrom::Start(pre_len))?;
            if !extra.is_empty() {
                inner.file.write_all(extra)?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                inner.len = pre_len + extra.len() as u64;
                Ok(())
            }
            Err(e) => {
                inner.poisoned = true;
                Err(io_err("rolling back wal after failed append", e))
            }
        }
    }

    /// Consult the failpoint at `site` while `frame` is in flight.
    /// `lo..lo+span` bounds the torn-prefix length a short write or
    /// simulated crash leaves behind (always a strict prefix of the
    /// frame).
    fn inject(
        inner: &mut Inner,
        site: &str,
        pre_len: u64,
        frame: &[u8],
        lo: u64,
        fail_span: u64,
    ) -> SqlResult<()> {
        let FailDecision::Fail { action, raw } = failpoint::check(site) else {
            return Ok(());
        };
        let partial = (lo + if fail_span == 0 { 0 } else { raw % fail_span })
            .min(frame.len().saturating_sub(1) as u64) as usize;
        match action {
            FailAction::Crash => {
                // Leave a strict prefix of the in-flight frame on disk
                // (the rest "never left the page cache"), then refuse
                // all further work until reopen.
                let _ = Self::force_state(inner, pre_len, &frame[..partial]);
                inner.poisoned = true;
                Err(SqlError::io(format!("simulated crash at failpoint '{site}'")))
            }
            FailAction::ShortWrite => {
                // The short write lands, then the statement's append
                // fails and rolls the file back to the commit boundary.
                Self::force_state(inner, pre_len, &frame[..partial])?;
                Self::force_state(inner, pre_len, &[])?;
                Err(SqlError::io(format!(
                    "injected short write at failpoint '{site}' ({partial} of {} bytes)",
                    frame.len()
                )))
            }
            FailAction::Error => {
                Self::force_state(inner, pre_len, &[])?;
                Err(SqlError::io(format!("injected io error at failpoint '{site}'")))
            }
        }
    }

    /// Durably append one record. Returns `true` when the WAL has grown
    /// past the auto-checkpoint threshold and the engine should run a
    /// checkpoint.
    pub fn append(&self, record: &WalRecord) -> SqlResult<bool> {
        let t0 = Instant::now();
        let mut inner = self.lock();
        if inner.poisoned {
            return Err(SqlError::io(
                "wal is poisoned after a simulated crash; reopen the database to recover",
            ));
        }
        let mut payload = Vec::new();
        put_u64(&mut payload, inner.next_seq);
        payload.extend_from_slice(&record.encode());
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        let pre_len = inner.len;
        let flen = frame.len() as u64;

        // Failure windows: torn within the frame header, torn within
        // the payload, or an arbitrary lost suffix at sync time.
        Self::inject(&mut inner, "wal.append.header", pre_len, &frame, 0, FRAME_HEADER_LEN)?;
        Self::inject(
            &mut inner,
            "wal.append.payload",
            pre_len,
            &frame,
            FRAME_HEADER_LEN,
            flen - FRAME_HEADER_LEN,
        )?;
        if let Err(e) = inner.file.write_all(&frame) {
            Self::force_state(&mut inner, pre_len, &[])?;
            return Err(io_err("appending wal record", e));
        }
        Self::inject(&mut inner, "wal.append.sync", pre_len, &frame, 0, flen)?;
        if let Err(e) = inner.file.sync_data() {
            Self::force_state(&mut inner, pre_len, &[])?;
            return Err(io_err("syncing wal record", e));
        }

        inner.len = pre_len + flen;
        inner.next_seq += 1;
        let wal_len = inner.len;
        drop(inner);
        metrics().wal_records_appended.inc(1);
        metrics().wal_bytes_written.inc(flen);
        metrics().wal_append_ns.observe(t0.elapsed().as_nanos() as u64);
        let threshold = self.auto_checkpoint();
        Ok(threshold > 0 && wal_len >= threshold)
    }

    /// Write a checkpoint covering everything appended so far, then
    /// truncate the log. Crash-safe at every step: the checkpoint is
    /// built in `<ckpt>.tmp` and renamed into place, and a crash after
    /// the rename but before the truncation is covered by the sequence
    /// numbers stored in both files.
    pub fn checkpoint(&self, snapshot: &Snapshot) -> SqlResult<()> {
        let _span = span("wal.checkpoint");
        let t0 = Instant::now();
        let mut inner = self.lock();
        if inner.poisoned {
            return Err(SqlError::io(
                "wal is poisoned after a simulated crash; reopen the database to recover",
            ));
        }
        let last_seq = inner.next_seq - 1;
        let image = encode_checkpoint(snapshot, last_seq);
        let tmp_path = PathBuf::from(format!("{}.tmp", self.ckpt_path.display()));

        let write_res = (|| -> SqlResult<File> {
            Self::inject_ckpt(&mut inner, "ckpt.write", &tmp_path, &image)?;
            let mut f = File::create(&tmp_path).map_err(|e| io_err("creating checkpoint", e))?;
            f.write_all(&image).map_err(|e| io_err("writing checkpoint", e))?;
            Self::inject_ckpt(&mut inner, "ckpt.sync", &tmp_path, &image)?;
            f.sync_all().map_err(|e| io_err("syncing checkpoint", e))?;
            Ok(f)
        })();
        let _tmp_file = match write_res {
            Ok(f) => f,
            Err(e) => {
                if !inner.poisoned {
                    let _ = std::fs::remove_file(&tmp_path);
                }
                return Err(e);
            }
        };

        if let Err(e) = Self::inject_ckpt(&mut inner, "ckpt.rename", &tmp_path, &image) {
            if !inner.poisoned {
                let _ = std::fs::remove_file(&tmp_path);
            }
            return Err(e);
        }
        if let Err(e) = std::fs::rename(&tmp_path, &self.ckpt_path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(io_err("renaming checkpoint into place", e));
        }

        // From here the new checkpoint is authoritative. A failure to
        // truncate leaves a stale-but-skippable WAL prefix (records
        // with seq <= last_seq are ignored on recovery), so the log
        // stays consistent either way.
        Self::inject_ckpt(&mut inner, "ckpt.truncate_wal", &tmp_path, &image)?;
        inner
            .file
            .set_len(WAL_HEADER_LEN)
            .map_err(|e| io_err("truncating wal after checkpoint", e))?;
        inner
            .file
            .seek(SeekFrom::Start(WAL_HEADER_LEN))
            .map_err(|e| io_err("seeking wal after checkpoint", e))?;
        inner
            .file
            .sync_data()
            .map_err(|e| io_err("syncing wal after checkpoint", e))?;
        inner.len = WAL_HEADER_LEN;
        drop(inner);
        metrics().wal_checkpoints.inc(1);
        metrics().wal_checkpoint_ns.observe(t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Checkpoint-site failpoint: fabricates partial temp files for
    /// short writes and simulated crashes.
    fn inject_ckpt(
        inner: &mut Inner,
        site: &str,
        tmp_path: &Path,
        image: &[u8],
    ) -> SqlResult<()> {
        let FailDecision::Fail { action, raw } = failpoint::check(site) else {
            return Ok(());
        };
        let partial = (raw % image.len().max(1) as u64) as usize;
        match action {
            FailAction::Crash => {
                // Leave whatever partial temp file the crash would
                // have: recovery ignores `<ckpt>.tmp` entirely.
                let _ = std::fs::write(tmp_path, &image[..partial]);
                inner.poisoned = true;
                Err(SqlError::io(format!("simulated crash at failpoint '{site}'")))
            }
            FailAction::ShortWrite => {
                let _ = std::fs::write(tmp_path, &image[..partial]);
                Err(SqlError::io(format!(
                    "injected short write at failpoint '{site}' ({partial} of {} bytes)",
                    image.len()
                )))
            }
            FailAction::Error => {
                Err(SqlError::io(format!("injected io error at failpoint '{site}'")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mduck_sql::Value;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mduck_wal_unit_{}_{name}", std::process::id()));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(format!("{}.ckpt", p.display()));
        let _ = std::fs::remove_file(format!("{}.ckpt.tmp", p.display()));
    }

    fn insert(table: &str, n: i64) -> WalRecord {
        WalRecord::Insert {
            table: table.into(),
            rows: vec![vec![Value::Int(n), Value::text(format!("row{n}"))]],
        }
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let registry = Registry::default();
        let path = tmp_path("roundtrip");
        cleanup(&path);
        {
            let (wal, rec) = DurabilityManager::open(&path, &registry).unwrap();
            assert!(rec.snapshot.is_none());
            assert!(rec.records.is_empty());
            wal.append(&WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![
                    ("id".into(), mduck_sql::LogicalType::Int),
                    ("s".into(), mduck_sql::LogicalType::Text),
                ],
            })
            .unwrap();
            wal.append(&insert("t", 1)).unwrap();
            wal.append(&insert("t", 2)).unwrap();
        }
        let (_, rec) = DurabilityManager::open(&path, &registry).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.torn_tail_bytes, 0);
        assert_eq!(rec.records[2], insert("t", 2));
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_truncated_cleanly() {
        let registry = Registry::default();
        let path = tmp_path("torn");
        cleanup(&path);
        {
            let (wal, _) = DurabilityManager::open(&path, &registry).unwrap();
            wal.append(&insert("t", 1)).unwrap();
            wal.append(&insert("t", 2)).unwrap();
        }
        // Chop bytes off the last frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_, rec) = DurabilityManager::open(&path, &registry).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert!(rec.torn_tail_bytes > 0);
        assert_eq!(rec.records[0], insert("t", 1));
        // The truncation is durable: a second open sees a clean log.
        let (_, rec2) = DurabilityManager::open(&path, &registry).unwrap();
        assert_eq!(rec2.records.len(), 1);
        assert_eq!(rec2.torn_tail_bytes, 0);
        cleanup(&path);
    }

    #[test]
    fn crc_flip_mid_log_is_corruption() {
        let registry = Registry::default();
        let path = tmp_path("crcflip");
        cleanup(&path);
        {
            let (wal, _) = DurabilityManager::open(&path, &registry).unwrap();
            wal.append(&insert("t", 1)).unwrap();
            wal.append(&insert("t", 2)).unwrap();
        }
        // Flip a byte inside the FIRST record's payload (offset header
        // + frame header + a bit) so the damage is mid-log, not a tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(WAL_HEADER_LEN + FRAME_HEADER_LEN) as usize + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = DurabilityManager::open(&path, &registry).unwrap_err();
        assert!(matches!(err, SqlError::Corruption(_)), "{err}");
        cleanup(&path);
    }

    #[test]
    fn checkpoint_truncates_and_seq_skips_replayed_prefix() {
        let registry = Registry::default();
        let path = tmp_path("ckpt");
        cleanup(&path);
        {
            let (wal, _) = DurabilityManager::open(&path, &registry).unwrap();
            wal.append(&insert("t", 1)).unwrap();
            let snap = Snapshot::default();
            wal.checkpoint(&snap).unwrap();
            assert_eq!(wal.wal_len(), WAL_HEADER_LEN);
            wal.append(&insert("t", 2)).unwrap();
        }
        let (_, rec) = DurabilityManager::open(&path, &registry).unwrap();
        assert!(rec.snapshot.is_some());
        // Only the post-checkpoint record replays.
        assert_eq!(rec.records, vec![insert("t", 2)]);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_present_but_wal_missing_recovers_from_checkpoint() {
        let registry = Registry::default();
        let path = tmp_path("nowal");
        cleanup(&path);
        {
            let (wal, _) = DurabilityManager::open(&path, &registry).unwrap();
            wal.append(&insert("t", 1)).unwrap();
            wal.checkpoint(&Snapshot::default()).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
        let (_, rec) = DurabilityManager::open(&path, &registry).unwrap();
        assert!(rec.snapshot.is_some());
        assert!(rec.records.is_empty());
        cleanup(&path);
    }

    #[test]
    fn foreign_file_is_rejected_not_overwritten() {
        let registry = Registry::default();
        let path = tmp_path("foreign");
        cleanup(&path);
        std::fs::write(&path, b"PK\x03\x04 definitely not a wal").unwrap();
        let err = DurabilityManager::open(&path, &registry).unwrap_err();
        assert!(matches!(err, SqlError::Corruption(_)), "{err}");
        // Contents untouched.
        assert!(std::fs::read(&path).unwrap().starts_with(b"PK"));
        cleanup(&path);
    }
}
