//! Deterministic fault injection for the durability path.
//!
//! Every durability-critical I/O site calls [`check`] with its site
//! name before performing the operation. A site can be armed to fire on
//! its `n`-th hit with one of three actions:
//!
//! * `error` — the operation reports an I/O failure; the WAL rolls the
//!   file back to the pre-operation length and the statement fails
//!   cleanly (the engine stays usable).
//! * `short` — a short write: a PRNG-chosen strict prefix of the bytes
//!   reaches the file before the failure; the WAL rolls back as above.
//! * `crash` — a simulated process death mid-operation: a strict prefix
//!   of the in-flight bytes is left on disk (the unsynced suffix is
//!   "lost in the page cache"), the manager is poisoned so every later
//!   durability call fails, and the test must reopen from disk.
//!
//! Arming is either programmatic ([`set`]) or via the environment:
//!
//! ```text
//! MDUCK_FAILPOINTS="wal.append.payload=crash@3,ckpt.rename=error@1"
//! MDUCK_FAILPOINT_SEED=42   # optional; defaults to 0xD0C5EED
//! ```
//!
//! Short-write lengths are derived from the in-repo PRNG seeded by
//! `(seed, site hash, hit index)`, so a given configuration replays the
//! same torn bytes on every run. Triggers are one-shot: after firing,
//! the site disarms itself so recovery on reopen is not re-injected.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use mduck_prng::{RngCore, SeedableRng, SplitMix64};

/// The full catalog of durability failpoint sites.
pub const SITES: &[&str] = &[
    "wal.open.read",
    "wal.recover.truncate",
    "wal.append.header",
    "wal.append.payload",
    "wal.append.sync",
    "ckpt.write",
    "ckpt.sync",
    "ckpt.rename",
    "ckpt.truncate_wal",
];

const DEFAULT_SEED: u64 = 0xD0C5EED;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Plain I/O error; nothing reaches the file.
    Error,
    /// A strict prefix of the bytes reaches the file, then an error.
    ShortWrite,
    /// Simulated process death: torn bytes stay on disk, the manager is
    /// poisoned, and only a reopen recovers.
    Crash,
}

/// The verdict [`check`] hands back to the I/O site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailDecision {
    Proceed,
    /// Fire with `action`; `raw` is the deterministic PRNG draw the
    /// site uses to pick a torn-prefix length (`raw % len`).
    Fail { action: FailAction, raw: u64 },
}

struct SiteState {
    /// `(action, fire_on_hit)` — 1-based hit index; one-shot.
    armed: Option<(FailAction, u64)>,
    hits: u64,
}

struct FailRegistry {
    sites: HashMap<String, SiteState>,
    seed: u64,
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_action(s: &str) -> Option<FailAction> {
    match s {
        "error" => Some(FailAction::Error),
        "short" => Some(FailAction::ShortWrite),
        "crash" => Some(FailAction::Crash),
        _ => None,
    }
}

fn registry() -> MutexGuard<'static, FailRegistry> {
    static REG: OnceLock<Mutex<FailRegistry>> = OnceLock::new();
    let m = REG.get_or_init(|| {
        let seed = std::env::var("MDUCK_FAILPOINT_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(DEFAULT_SEED);
        let mut reg = FailRegistry { sites: HashMap::new(), seed };
        if let Ok(spec) = std::env::var("MDUCK_FAILPOINTS") {
            apply_spec(&mut reg, &spec);
        }
        Mutex::new(reg)
    });
    // A panic while holding the lock cannot corrupt this plain map.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn apply_spec(reg: &mut FailRegistry, spec: &str) {
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let Some((site, rest)) = entry.split_once('=') else { continue };
        let (action_str, at) = match rest.split_once('@') {
            Some((a, n)) => (a, n.parse::<u64>().unwrap_or(1).max(1)),
            None => (rest, 1),
        };
        if let Some(action) = parse_action(action_str.trim()) {
            reg.sites.insert(
                site.trim().to_string(),
                SiteState { armed: Some((action, at)), hits: 0 },
            );
        }
    }
}

/// Consult (and count) the failpoint at `site`. Never blocks on I/O.
pub fn check(site: &str) -> FailDecision {
    let mut reg = registry();
    let seed = reg.seed;
    let state = reg
        .sites
        .entry(site.to_string())
        .or_insert(SiteState { armed: None, hits: 0 });
    state.hits += 1;
    if let Some((action, at)) = state.armed {
        if state.hits == at {
            state.armed = None; // one-shot
            let mut rng = SplitMix64::seed_from_u64(seed ^ fnv1a(site) ^ state.hits);
            let raw = rng.next_u64();
            mduck_obs::metrics::metrics().wal_failpoint_trips.inc(1);
            return FailDecision::Fail { action, raw };
        }
    }
    FailDecision::Proceed
}

/// Arm `site` to fire `action` on its `after`-th hit (1-based, one-shot).
pub fn set(site: &str, action: FailAction, after: u64) {
    let mut reg = registry();
    reg.sites.insert(
        site.to_string(),
        SiteState { armed: Some((action, after.max(1))), hits: 0 },
    );
}

/// Disarm every site and zero all hit counters.
pub fn clear_all() {
    registry().sites.clear();
}

/// Zero hit counters without touching armed triggers.
pub fn reset_hits() {
    for s in registry().sites.values_mut() {
        s.hits = 0;
    }
}

/// Per-site hit totals since the last clear/reset, sorted by name.
pub fn hit_counts() -> Vec<(String, u64)> {
    let reg = registry();
    let mut out: Vec<(String, u64)> =
        reg.sites.iter().map(|(k, v)| (k.clone(), v.hits)).collect();
    out.sort();
    out
}

/// Override the PRNG seed (tests); env `MDUCK_FAILPOINT_SEED` sets the
/// initial value.
pub fn set_seed(seed: u64) {
    registry().seed = seed;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global registry, so each test clears it
    // and uses site names no other test (or the WAL) uses.

    #[test]
    fn one_shot_fires_on_exact_hit() {
        clear_all();
        set("test.site.a", FailAction::Error, 3);
        assert_eq!(check("test.site.a"), FailDecision::Proceed);
        assert_eq!(check("test.site.a"), FailDecision::Proceed);
        match check("test.site.a") {
            FailDecision::Fail { action, .. } => assert_eq!(action, FailAction::Error),
            other => panic!("expected fire, got {other:?}"),
        }
        // One-shot: disarmed afterwards.
        assert_eq!(check("test.site.a"), FailDecision::Proceed);
        clear_all();
    }

    #[test]
    fn raw_draw_is_deterministic_in_seed_site_and_hit() {
        clear_all();
        set_seed(99);
        set("test.site.b", FailAction::ShortWrite, 2);
        let _ = check("test.site.b");
        let first = check("test.site.b");
        clear_all();
        set_seed(99);
        set("test.site.b", FailAction::ShortWrite, 2);
        let _ = check("test.site.b");
        let second = check("test.site.b");
        assert_eq!(first, second);
        clear_all();
        set_seed(DEFAULT_SEED);
    }

    #[test]
    fn spec_parsing() {
        let mut reg = FailRegistry { sites: HashMap::new(), seed: 0 };
        apply_spec(&mut reg, "a.b=crash@3, c.d=error ,bogus,e=nope@2");
        assert_eq!(reg.sites.len(), 2);
        assert_eq!(reg.sites["a.b"].armed, Some((FailAction::Crash, 3)));
        assert_eq!(reg.sites["c.d"].armed, Some((FailAction::Error, 1)));
    }
}
