//! # mduck-bench — the benchmark harness
//!
//! One report binary per table/figure of the paper (see DESIGN.md's
//! experiment index) plus Criterion micro-benchmarks. This library holds
//! the shared scenario plumbing: engine setup, timing, and plain-text
//! table rendering.

pub mod json;
pub mod micro;

use std::time::Instant;

use berlinmod::{BerlinModData, RoadNetwork, ScaleFactor};
use mduck_rowdb::RowDatabase;
use quackdb::Database;

/// The three execution scenarios of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// MobilityDuck on the vectorized engine (no extra indexes).
    MobilityDuck,
    /// MobilityDB baseline, no indexes.
    MobilityDbPlain,
    /// MobilityDB baseline with B-tree + GiST indexes.
    MobilityDbIndexed,
}

impl Scenario {
    pub fn label(self) -> &'static str {
        match self {
            Scenario::MobilityDuck => "MobilityDuck",
            Scenario::MobilityDbPlain => "MobilityDB (no idx)",
            Scenario::MobilityDbIndexed => "MobilityDB (idx)",
        }
    }

    /// Stable machine-readable identifier (used in JSON reports).
    pub fn id(self) -> &'static str {
        match self {
            Scenario::MobilityDuck => "mobilityduck",
            Scenario::MobilityDbPlain => "mobilitydb_plain",
            Scenario::MobilityDbIndexed => "mobilitydb_indexed",
        }
    }
}

/// Timing statistics over `n` samples of one query under one scenario.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub rows: usize,
}

/// A loaded benchmark environment: both engines, all scenarios.
pub struct BenchEnv {
    pub sf: ScaleFactor,
    pub data: BerlinModData,
    pub vdb: Database,
    pub rdb_plain: RowDatabase,
    pub rdb_indexed: RowDatabase,
}

impl BenchEnv {
    /// Generate + load one scale factor into all three scenarios.
    pub fn prepare(sf: ScaleFactor, seed: u64) -> Self {
        let net = RoadNetwork::generate(seed);
        let data = BerlinModData::generate(&net, sf, seed);
        let vdb = Database::new();
        mobilityduck::load(&vdb);
        data.load_into_quack(&vdb).expect("load quackdb");
        let rdb_plain = RowDatabase::new();
        mobilityduck::load_row(&rdb_plain);
        data.load_into_row(&rdb_plain, false).expect("load rowdb");
        let rdb_indexed = RowDatabase::new();
        mobilityduck::load_row(&rdb_indexed);
        data.load_into_row(&rdb_indexed, true).expect("load rowdb idx");
        BenchEnv { sf, data, vdb, rdb_plain, rdb_indexed }
    }

    /// Run a query under a scenario; returns (milliseconds, row count).
    pub fn run(&self, scenario: Scenario, sql: &str) -> (f64, usize) {
        let start = Instant::now();
        let rows = match scenario {
            Scenario::MobilityDuck => self
                .vdb
                .execute(sql)
                .unwrap_or_else(|e| panic!("MobilityDuck failed: {e}\n{sql}"))
                .rows
                .len(),
            Scenario::MobilityDbPlain => self
                .rdb_plain
                .execute(sql)
                .unwrap_or_else(|e| panic!("MobilityDB failed: {e}\n{sql}"))
                .rows
                .len(),
            Scenario::MobilityDbIndexed => self
                .rdb_indexed
                .execute(sql)
                .unwrap_or_else(|e| panic!("MobilityDB-idx failed: {e}\n{sql}"))
                .rows
                .len(),
        };
        (start.elapsed().as_secs_f64() * 1000.0, rows)
    }

    /// Median of `n` timed runs (after one warm-up), in milliseconds.
    pub fn run_median(&self, scenario: Scenario, sql: &str, n: usize) -> (f64, usize) {
        let stats = self.run_stats(scenario, sql, n);
        (stats.p50_ms, stats.rows)
    }

    /// Mean/p50/p95 over `n` timed runs (after one warm-up), in
    /// milliseconds. Setting `MDUCK_COLD=1` skips the warm-up run (used
    /// to bound the wall time of the largest scale factors).
    pub fn run_stats(&self, scenario: Scenario, sql: &str, n: usize) -> RunStats {
        let cold = std::env::var("MDUCK_COLD").is_ok_and(|v| v == "1");
        let mut rows = 0;
        if !cold {
            rows = self.run(scenario, sql).1;
        }
        let mut times: Vec<f64> = (0..n.max(1))
            .map(|_| {
                let (ms, r) = self.run(scenario, sql);
                rows = r;
                ms
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean_ms = times.iter().sum::<f64>() / times.len() as f64;
        // Nearest-rank percentile: smallest x with at least p% of samples <= x.
        let rank = |p: f64| -> f64 {
            let idx = ((p * times.len() as f64).ceil() as usize).max(1) - 1;
            times[idx.min(times.len() - 1)]
        };
        RunStats { mean_ms, p50_ms: times[times.len() / 2], p95_ms: rank(0.95), rows }
    }
}

/// Render an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Human-readable byte size.
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GB", bytes as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} MB", bytes as f64 / (1u64 << 20) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_prepares_and_runs() {
        let env = BenchEnv::prepare(ScaleFactor(0.0002), 42);
        let (_, rows) = env.run(Scenario::MobilityDuck, "SELECT count(*) FROM trips");
        assert_eq!(rows, 1);
        let (ms, _) = env.run_median(Scenario::MobilityDbPlain, "SELECT count(*) FROM trips", 3);
        assert!(ms >= 0.0);
        let stats = env.run_stats(Scenario::MobilityDuck, "SELECT count(*) FROM trips", 5);
        assert_eq!(stats.rows, 1);
        assert!(stats.mean_ms >= 0.0);
        assert!(stats.p95_ms >= stats.p50_ms);
    }

    #[test]
    fn table_rendering() {
        let t = render_table(
            &["a", "bbb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        assert!(t.contains("bbb"));
        assert_eq!(t.lines().count(), 4);
        assert_eq!(human_size(2 << 30), "2.00 GB");
        assert_eq!(human_size(10 << 20), "10.0 MB");
    }
}
