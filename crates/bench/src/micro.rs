//! Minimal micro-benchmark harness replacing the external `criterion`
//! dependency: warm-up, adaptive iteration count, median-of-samples
//! timing, plain-text reporting. Deterministic in structure (no random
//! sampling), so results are comparable run-to-run.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Run `f` repeatedly and report the median per-iteration time.
///
/// Strategy: one warm-up call; pick an iteration count so each sample
/// takes ≥ ~5 ms; collect 15 samples; report the median.
pub fn bench_function<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and calibration.
    let start = Instant::now();
    black_box(f());
    let one = start.elapsed().max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(15);
    for _ in 0..15 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[1], samples[samples.len() - 2]);
    println!("{name:<40} {:>12}/iter  [{} .. {}]", fmt_ns(median), fmt_ns(lo), fmt_ns(hi));
}

fn fmt_ns(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_ns_scales() {
        assert_eq!(super::fmt_ns(5e-9), "5 ns");
        assert_eq!(super::fmt_ns(5e-6), "5.00 µs");
        assert_eq!(super::fmt_ns(5e-3), "5.00 ms");
        assert_eq!(super::fmt_ns(5.0), "5.000 s");
    }
}
