//! Minimal hand-rolled JSON emitter for machine-readable bench reports.
//!
//! The bench crate takes no external dependencies, so this is the whole
//! serializer: a value tree plus a renderer. Non-finite floats render as
//! `null` (JSON has no NaN/Infinity).

/// A JSON value tree. Objects preserve insertion order.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Render compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render an array with one element per line (diff-friendly reports).
    pub fn render_lines(rows: &[Json]) -> String {
        let mut out = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            out.push_str("  ");
            row.write(&mut out);
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn renders_compound_values() {
        let obj = Json::Obj(vec![
            ("q", Json::Str("Q1".into())),
            ("ms", Json::Num(2.25)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(obj.render(), "{\"q\":\"Q1\",\"ms\":2.25,\"tags\":[1,2]}");
        let lines = Json::render_lines(&[Json::Int(1), Json::Int(2)]);
        assert_eq!(lines, "[\n  1,\n  2\n]\n");
    }
}
