//! Regenerates **Table 1**: the template-type coverage matrix, checked
//! against the live type registry (a type only prints as supported if it
//! is actually registered and parseable).

use mduck_bench::render_table;
use mduck_sql::Registry;

fn main() {
    let mut reg = Registry::with_builtins();
    mobilityduck::register_all(&mut reg);
    let mut rows = Vec::new();
    for (base, cols) in mobilityduck::type_coverage() {
        let mut row = vec![base.to_string()];
        for slot in cols {
            row.push(match slot {
                Some(name) => {
                    assert!(reg.resolve_type(name).is_ok(), "{name} not registered");
                    name.to_string()
                }
                None => "—".to_string(),
            });
        }
        rows.push(row);
    }
    println!("Table 1: template types supported in MobilityDuck (— : not applicable / not implemented)\n");
    println!("{}", render_table(&["base type", "set", "span", "spanset", "temporal"], &rows));
    println!("Registered scalar functions: {}", reg.scalar_names().len());
    println!("Registered type aliases:     {}", reg.type_names().len());
}
