//! Regenerates **Figure 1**: the execution plan DuckDB produces for the
//! §4.4 overlap query once the optimizer has injected the TRTREE index
//! scan.

fn main() {
    let db = quackdb::Database::new();
    mobilityduck::load(&db);
    db.execute_script(
        "CREATE TABLE test_geo(\"times\" timestamptz, \"box\" stbox);
         CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box);
         INSERT INTO test_geo
         SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')) AS times,
                ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) ||
                 '),(' || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) ||
                 '))')::stbox
         FROM generate_series(1, 1000) AS t(i);",
    )
    .expect("setup");
    let sql = "SELECT * FROM test_geo WHERE box && STBOX('STBOX X((1000.0,1000.0),(1100.0,1100.0))')";
    println!("Figure 1: execution plan of the §4.4 overlap query\n");
    println!("EXPLAIN {sql};\n");
    let plan = db.execute(&format!("EXPLAIN {sql}")).expect("explain");
    println!("{}", plan.rows[0][0]);
    let result = db.execute(sql).expect("query");
    println!("(query returns {} row(s))", result.rows.len());
}
