//! Regenerates **Figure 2**: R-tree index scan versus sequential scan, for
//! MobilityDuck's stbox TRTREE and the Spatial-style geometry RTREE, at
//! table sizes 1k / 10k / 100k / 1M rows (mean of 5 runs, as the paper
//! reports).
//!
//! Pass `--small` to stop at 100k rows (CI-friendly).

use std::time::Instant;

use mduck_bench::render_table;
use quackdb::Database;

fn setup_stbox(n: usize, with_index: bool) -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    db.execute("CREATE TABLE test_geo(times TIMESTAMPTZ, box STBOX)").unwrap();
    if with_index {
        db.execute("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)").unwrap();
    }
    db.execute(&format!(
        "INSERT INTO test_geo \
         SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')), \
                ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) || \
                '),(' || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) || \
                '))')::stbox \
         FROM generate_series(1, {n}) AS t(i)"
    ))
    .unwrap();
    db
}

fn setup_geom(n: usize, with_index: bool) -> Database {
    // The paper's test_geo_geom table: same synthetic data plus a geometry
    // column derived from the box, indexed with Spatial's RTREE.
    let db = Database::new();
    mobilityduck::load(&db);
    db.execute("CREATE TABLE test_geo_geom(times TIMESTAMPTZ, box STBOX, geom GEOMETRY)")
        .unwrap();
    db.execute(&format!(
        "INSERT INTO test_geo_geom \
         SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')), \
                ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) || \
                '),(' || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) || \
                '))')::stbox, NULL \
         FROM generate_series(1, {n}) AS t(i)"
    ))
    .unwrap();
    db.execute("UPDATE test_geo_geom SET geom = geometry(box)::GEOMETRY").unwrap();
    if with_index {
        db.execute("CREATE INDEX rtree_geom ON test_geo_geom USING RTREE(geom)").unwrap();
    }
    db
}

/// Mean of 5 runs, in seconds.
fn time5(db: &Database, sql: &str) -> f64 {
    db.execute(sql).unwrap(); // warm-up
    let mut total = 0.0;
    for _ in 0..5 {
        let t = Instant::now();
        db.execute(sql).unwrap();
        total += t.elapsed().as_secs_f64();
    }
    total / 5.0
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scales: &[usize] = if small {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let mut rows = Vec::new();
    for &n in scales {
        // Query boxes near the upper-right corner, as in §4.4.
        let lo = n as f64;
        let hi = n as f64 * 1.1;
        let stbox_q = format!(
            "SELECT * FROM test_geo WHERE box && STBOX('STBOX X(({lo},{lo}),({hi},{hi}))')"
        );
        let geom_q = format!(
            "SELECT * FROM test_geo_geom WHERE geom && ST_MakeEnvelope({lo}, {lo}, {hi}, {hi})"
        );

        let db = setup_stbox(n, true);
        let t_idx = time5(&db, &stbox_q);
        let db = setup_stbox(n, false);
        let t_seq = time5(&db, &stbox_q);
        let db = setup_geom(n, true);
        let g_idx = time5(&db, &geom_q);
        let db = setup_geom(n, false);
        let g_seq = time5(&db, &geom_q);

        rows.push(vec![
            n.to_string(),
            format!("{t_idx:.6}"),
            format!("{t_seq:.6}"),
            format!("{g_idx:.6}"),
            format!("{g_seq:.6}"),
        ]);
        eprintln!("scale {n} done");
    }
    println!("Figure 2: R-tree index scan vs sequential scan (mean of 5 runs, seconds)\n");
    println!(
        "{}",
        render_table(
            &[
                "rows",
                "MobilityDuck TRTREE (s)",
                "MobilityDuck seq (s)",
                "geometry RTREE (s)",
                "geometry seq (s)",
            ],
            &rows,
        )
    );
    println!("Expected shape (paper): both index scans stay ~flat as the table grows;");
    println!("both sequential scans grow ~linearly; the stbox TRTREE is the fastest,");
    println!("especially at the largest scale.");
}
