//! Regenerates **Table 3**: the benchmark datasets at SF-0.001 / 0.002 /
//! 0.005 / 0.01 (vehicles, trips).

use berlinmod::{BerlinModData, RoadNetwork, ScaleFactor};
use mduck_bench::render_table;

fn main() {
    let net = RoadNetwork::generate(42);
    let mut rows = Vec::new();
    for sf in [0.001, 0.002, 0.005, 0.01] {
        let data = BerlinModData::generate(&net, ScaleFactor(sf), 42);
        rows.push(vec![
            format!("SF-{sf}"),
            data.vehicles.len().to_string(),
            data.trips.len().to_string(),
        ]);
    }
    println!("Table 3: BerlinMOD-Hanoi benchmark datasets\n");
    println!(
        "{}",
        render_table(&["Scale factor", "Number of vehicles", "Number of trips"], &rows)
    );
    println!("(paper: 63/549, 89/758, 141/1620, 200/2903)");
}
