//! Regenerates **Figure 12**: the 17 BerlinMOD-Hanoi benchmark queries at
//! SF-0.001 / 0.002 / 0.005 / 0.01, across the three scenarios
//! (MobilityDuck; MobilityDB without indexes; MobilityDB with indexes).
//! Prints runtimes in milliseconds plus a per-query winner summary.
//!
//! Pass `--small` to run SF-0.001 only; `--runs N` to change the sample
//! count (default 3, median reported).
//!
//! Besides the plain-text tables, the run emits two machine-readable
//! reports into the working directory:
//! - `BENCH_queries.json` — one record per (query, scale factor, engine,
//!   thread count) with mean/p50/p95 runtimes and the result row count; the
//!   vectorized engine is measured at threads=1 and, on multi-core hosts,
//!   threads=max (morsel-driven parallelism);
//! - `BENCH_operators.json` — the vectorized engine's per-operator
//!   `EXPLAIN ANALYZE` breakdown for every (query, scale factor).

use berlinmod::{benchmark_queries, ScaleFactor};
use mduck_bench::json::Json;
use mduck_bench::{render_table, BenchEnv, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let sf_arg: Option<f64> = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let skip: Vec<u32> = args
        .iter()
        .position(|a| a == "--skip")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_default();
    let single;
    let sfs: &[f64] = if let Some(sf) = sf_arg {
        single = [sf];
        &single
    } else if small {
        &[0.001]
    } else {
        &[0.001, 0.002, 0.005, 0.01]
    };

    let scenarios = [
        Scenario::MobilityDuck,
        Scenario::MobilityDbPlain,
        Scenario::MobilityDbIndexed,
    ];

    // wins[scenario] across all (query, sf) cells.
    let mut wins = [0usize; 3];
    let mut duck_beats_both = vec![true; 18]; // indexed by query id
    let mut query_records: Vec<Json> = Vec::new();
    let mut operator_records: Vec<Json> = Vec::new();
    // (query, sf, serial p50, parallel p50) for the threads summary.
    let mut speedups: Vec<(u32, f64, f64, f64)> = Vec::new();

    for &sf in sfs {
        eprintln!("preparing SF-{sf} ...");
        let env = BenchEnv::prepare(ScaleFactor(sf), 42);
        // Morsel-driven parallelism: the vectorized engine is measured at
        // threads=1 and (on multi-core hosts) threads=max, as its own
        // dimension in BENCH_queries.json.
        env.vdb.set_threads(0);
        let max_threads = env.vdb.effective_threads();
        println!(
            "\nFigure 12 — SF-{sf}: {} vehicles, {} trips (runtimes in ms, median of {runs})\n",
            env.data.vehicles.len(),
            env.data.trips.len()
        );
        let mut rows = Vec::new();
        for (id, _question, sql) in benchmark_queries() {
            if skip.contains(&id) {
                println!("Q{id}: skipped (--skip)");
                continue;
            }
            let mut cells = vec![format!("Q{id}")];
            let mut times = Vec::new();
            for (si, sc) in scenarios.iter().enumerate() {
                let mut record = |stats: mduck_bench::RunStats, threads: usize| {
                    // Peak memory of the most recent sample: every
                    // `execute()` logs its statement (with the guard's
                    // mem peak) to the global query log, so the last
                    // record is the run that just finished.
                    let mem_peak = mduck_obs::query_log_snapshot()
                        .last()
                        .map(|r| r.mem_peak)
                        .unwrap_or(0);
                    query_records.push(Json::Obj(vec![
                        ("query", Json::Str(format!("Q{id}"))),
                        ("sf", Json::Num(sf)),
                        ("engine", Json::Str(sc.id().into())),
                        ("threads", Json::Int(threads as i64)),
                        ("mean_ms", Json::Num(stats.mean_ms)),
                        ("p50_ms", Json::Num(stats.p50_ms)),
                        ("p95_ms", Json::Num(stats.p95_ms)),
                        ("rows", Json::Int(stats.rows as i64)),
                        ("mem_peak", Json::Int(mem_peak as i64)),
                    ]));
                };
                let stats = if *sc == Scenario::MobilityDuck {
                    // Serial baseline first, then the worker pool at full
                    // width; the table reports the parallel numbers.
                    env.vdb.set_threads(1);
                    let serial = env.run_stats(*sc, sql, runs);
                    record(serial, 1);
                    if max_threads > 1 {
                        env.vdb.set_threads(max_threads);
                        let parallel = env.run_stats(*sc, sql, runs);
                        record(parallel, max_threads);
                        speedups.push((id, sf, serial.p50_ms, parallel.p50_ms));
                        parallel
                    } else {
                        serial
                    }
                } else {
                    // The row engine is single-threaded by design.
                    let stats = env.run_stats(*sc, sql, runs);
                    record(stats, 1);
                    stats
                };
                times.push(stats.p50_ms);
                cells.push(format!("{:.2}", stats.p50_ms));
                if si == 0 {
                    cells.push(stats.rows.to_string());
                }
            }
            match env.vdb.execute_analyzed(sql) {
                Ok(profiled) => {
                    for op in &profiled.operators {
                        operator_records.push(Json::Obj(vec![
                            ("query", Json::Str(format!("Q{id}"))),
                            ("sf", Json::Num(sf)),
                            ("op", Json::Str(op.op.into())),
                            ("detail", Json::Str(op.detail.clone())),
                            ("execs", Json::Int(op.execs as i64)),
                            ("elapsed_ms", Json::Num(op.elapsed_ms)),
                            ("rows_out", Json::Int(op.rows_out as i64)),
                            ("chunks_out", Json::Int(op.chunks_out as i64)),
                            ("rows_scanned", Json::Int(op.rows_scanned as i64)),
                            ("mem_bytes", Json::Int(op.mem_bytes as i64)),
                        ]));
                    }
                }
                Err(e) => eprintln!("  Q{id}: operator breakdown unavailable ({e})"),
            }
            let best = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            wins[best] += 1;
            if times[0] > times[1] || times[0] > times[2] {
                duck_beats_both[id as usize] = false;
            }
            cells.push(scenarios[best].label().to_string());
            rows.push(cells);
            eprintln!("  Q{id} done");
        }
        println!(
            "{}",
            render_table(
                &[
                    "query",
                    "MobilityDuck (ms)",
                    "rows",
                    "MobilityDB no-idx (ms)",
                    "MobilityDB idx (ms)",
                    "winner",
                ],
                &rows,
            )
        );
    }

    let duck_sweeps = duck_beats_both[1..=17].iter().filter(|b| **b).count();
    println!("\nSummary across all scale factors:");
    for (i, sc) in scenarios.iter().enumerate() {
        println!("  fastest in {:>3} cells: {}", wins[i], sc.label());
    }
    println!(
        "  MobilityDuck fastest in all tested SFs on {duck_sweeps}/17 queries \
         (paper reports 12/17)."
    );

    if speedups.is_empty() {
        println!("\nParallel execution: single-core host, threads dimension not measured.");
    } else {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut accelerated = 0usize;
        for &(id, sf, serial, parallel) in &speedups {
            let x = if parallel > 0.0 { serial / parallel } else { 1.0 };
            if x >= 1.5 {
                accelerated += 1;
            }
            rows.push(vec![
                format!("Q{id}"),
                format!("{sf}"),
                format!("{serial:.2}"),
                format!("{parallel:.2}"),
                format!("{x:.2}x"),
            ]);
        }
        println!("\nMorsel-driven parallelism (vectorized engine, p50 ms):");
        println!(
            "{}",
            render_table(&["query", "sf", "threads=1", "threads=max", "speedup"], &rows)
        );
        println!("  >=1.5x speedup on {accelerated}/{} cells.", speedups.len());
    }

    for (path, records) in [
        ("BENCH_queries.json", &query_records),
        ("BENCH_operators.json", &operator_records),
    ] {
        match std::fs::write(path, Json::render_lines(records)) {
            Ok(()) => println!("wrote {path} ({} records)", records.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
