//! Regenerates **Figure 12**: the 17 BerlinMOD-Hanoi benchmark queries at
//! SF-0.001 / 0.002 / 0.005 / 0.01, across the three scenarios
//! (MobilityDuck; MobilityDB without indexes; MobilityDB with indexes).
//! Prints runtimes in milliseconds plus a per-query winner summary.
//!
//! Pass `--small` to run SF-0.001 only; `--runs N` to change the sample
//! count (default 3, median reported).

use berlinmod::{benchmark_queries, ScaleFactor};
use mduck_bench::{render_table, BenchEnv, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let sf_arg: Option<f64> = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let skip: Vec<u32> = args
        .iter()
        .position(|a| a == "--skip")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_default();
    let single;
    let sfs: &[f64] = if let Some(sf) = sf_arg {
        single = [sf];
        &single
    } else if small {
        &[0.001]
    } else {
        &[0.001, 0.002, 0.005, 0.01]
    };

    let scenarios = [
        Scenario::MobilityDuck,
        Scenario::MobilityDbPlain,
        Scenario::MobilityDbIndexed,
    ];

    // wins[scenario] across all (query, sf) cells.
    let mut wins = [0usize; 3];
    let mut duck_beats_both = vec![true; 18]; // indexed by query id

    for &sf in sfs {
        eprintln!("preparing SF-{sf} ...");
        let env = BenchEnv::prepare(ScaleFactor(sf), 42);
        println!(
            "\nFigure 12 — SF-{sf}: {} vehicles, {} trips (runtimes in ms, median of {runs})\n",
            env.data.vehicles.len(),
            env.data.trips.len()
        );
        let mut rows = Vec::new();
        for (id, _question, sql) in benchmark_queries() {
            if skip.contains(&id) {
                println!("Q{id}: skipped (--skip)");
                continue;
            }
            let mut cells = vec![format!("Q{id}")];
            let mut times = Vec::new();
            for (si, sc) in scenarios.iter().enumerate() {
                let (ms, nrows) = env.run_median(*sc, sql, runs);
                times.push(ms);
                cells.push(format!("{ms:.2}"));
                if si == 0 {
                    cells.push(nrows.to_string());
                }
            }
            let best = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            wins[best] += 1;
            if times[0] > times[1] || times[0] > times[2] {
                duck_beats_both[id as usize] = false;
            }
            cells.push(scenarios[best].label().to_string());
            rows.push(cells);
            eprintln!("  Q{id} done");
        }
        println!(
            "{}",
            render_table(
                &[
                    "query",
                    "MobilityDuck (ms)",
                    "rows",
                    "MobilityDB no-idx (ms)",
                    "MobilityDB idx (ms)",
                    "winner",
                ],
                &rows,
            )
        );
    }

    let duck_sweeps = duck_beats_both[1..=17].iter().filter(|b| **b).count();
    println!("\nSummary across all scale factors:");
    for (i, sc) in scenarios.iter().enumerate() {
        println!("  fastest in {:>3} cells: {}", wins[i], sc.label());
    }
    println!(
        "  MobilityDuck fastest in all tested SFs on {duck_sweeps}/17 queries \
         (paper reports 12/17)."
    );
}
