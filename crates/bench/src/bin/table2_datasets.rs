//! Regenerates **Table 2**: BerlinMOD-Hanoi datasets at SF 0.01 / 0.02 /
//! 0.05 / 0.1 (vehicles, days, trips, approximate size).
//!
//! Pass `--small` to only generate the two smallest factors (quick check).

use berlinmod::{BerlinModData, RoadNetwork, ScaleFactor};
use mduck_bench::{human_size, render_table};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let sfs: &[f64] = if small { &[0.01, 0.02] } else { &[0.01, 0.02, 0.05, 0.1] };
    let net = RoadNetwork::generate(42);
    let mut rows = Vec::new();
    for &sf in sfs {
        let data = BerlinModData::generate(&net, ScaleFactor(sf), 42);
        rows.push(vec![
            format!("SF {sf}"),
            data.vehicles.len().to_string(),
            ScaleFactor(sf).num_days().to_string(),
            data.trips.len().to_string(),
            human_size(data.approx_size_bytes()),
        ]);
    }
    println!("Table 2: BerlinMOD-Hanoi datasets at different scale factors\n");
    println!(
        "{}",
        render_table(&["Scale Factor", "Vehicles", "Days", "Trips", "Size"], &rows)
    );
    println!("(paper: SF 0.01 → 200 vehicles / 5 days / 2,903 trips; vehicle and day");
    println!(" counts are exact by the closed-form model, trip counts stochastic ±5%)");
}
