//! Durability overhead report: WAL-on vs in-memory ingest of the
//! BerlinMOD dataset, plus cold recovery time, on both engines.
//!
//! Each (engine, mode) cell loads the full SF dataset through the
//! engines' bulk commit path (`insert_rows`), which appends one WAL
//! record per table when a WAL is attached — the same discipline as an
//! INSERT statement. Recovery reopens the WAL cold (checkpoint decode +
//! record replay) into a fresh instance.
//!
//! Emits `BENCH_durability.json` (one record per measurement) and a
//! human-readable table on stdout.
//!
//!   durability_ingest --sf 0.001 --runs 3

use std::path::PathBuf;
use std::time::Instant;

use berlinmod::{BerlinModData, RoadNetwork, ScaleFactor};
use mduck_bench::json::Json;
use mduck_bench::render_table;

fn wal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mduck_bench_dur_{}_{tag}.wal", std::process::id()))
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(format!("{}.ckpt", p.display()));
    let _ = std::fs::remove_file(format!("{}.ckpt.tmp", p.display()));
}

fn file_len(p: &PathBuf) -> u64 {
    std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// One engine's three measurements, medians over `runs` samples.
struct Cell {
    engine: &'static str,
    mem_ms: f64,
    wal_ms: f64,
    recover_ms: f64,
    wal_bytes: u64,
    ckpt_bytes: u64,
}

fn bench_vec(data: &BerlinModData, runs: usize) -> Cell {
    let mut mem = Vec::new();
    let mut wal = Vec::new();
    let mut rec = Vec::new();
    let mut wal_bytes = 0;
    let mut ckpt_bytes = 0;
    for run in 0..runs {
        let t0 = Instant::now();
        let db = quackdb::Database::new();
        mobilityduck::load(&db);
        data.load_into_quack(&db).expect("in-memory load");
        mem.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(db);

        let path = wal_path(&format!("vec_{run}"));
        cleanup(&path);
        let t0 = Instant::now();
        let db = quackdb::Database::new();
        mobilityduck::load(&db);
        db.attach_wal(&path).expect("attach wal");
        data.load_into_quack(&db).expect("wal load");
        wal.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(db);
        wal_bytes = file_len(&path);
        ckpt_bytes = file_len(&PathBuf::from(format!("{}.ckpt", path.display())));

        let t0 = Instant::now();
        let db = quackdb::Database::new();
        mobilityduck::load(&db);
        db.attach_wal(&path).expect("recover");
        rec.push(t0.elapsed().as_secs_f64() * 1e3);
        let n = db.execute("SELECT count(*) FROM trips").expect("recovered query").rows;
        assert!(!n.is_empty(), "recovery lost the trips table");
        cleanup(&path);
    }
    Cell {
        engine: "quackdb",
        mem_ms: median(mem),
        wal_ms: median(wal),
        recover_ms: median(rec),
        wal_bytes,
        ckpt_bytes,
    }
}

fn bench_row(data: &BerlinModData, runs: usize) -> Cell {
    let mut mem = Vec::new();
    let mut wal = Vec::new();
    let mut rec = Vec::new();
    let mut wal_bytes = 0;
    let mut ckpt_bytes = 0;
    for run in 0..runs {
        let t0 = Instant::now();
        let db = mduck_rowdb::RowDatabase::new();
        mobilityduck::load_row(&db);
        data.load_into_row(&db, false).expect("in-memory load");
        mem.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(db);

        let path = wal_path(&format!("row_{run}"));
        cleanup(&path);
        let t0 = Instant::now();
        let db = mduck_rowdb::RowDatabase::new();
        mobilityduck::load_row(&db);
        db.attach_wal(&path).expect("attach wal");
        data.load_into_row(&db, false).expect("wal load");
        wal.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(db);
        wal_bytes = file_len(&path);
        ckpt_bytes = file_len(&PathBuf::from(format!("{}.ckpt", path.display())));

        let t0 = Instant::now();
        let db = mduck_rowdb::RowDatabase::new();
        mobilityduck::load_row(&db);
        db.attach_wal(&path).expect("recover");
        rec.push(t0.elapsed().as_secs_f64() * 1e3);
        let n = db.execute("SELECT count(*) FROM trips").expect("recovered query").rows;
        assert!(!n.is_empty(), "recovery lost the trips table");
        cleanup(&path);
    }
    Cell {
        engine: "rowdb",
        mem_ms: median(mem),
        wal_ms: median(wal),
        recover_ms: median(rec),
        wal_bytes,
        ckpt_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf: f64 = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.001);
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    eprintln!("preparing SF-{sf} ...");
    let net = RoadNetwork::generate(42);
    let data = BerlinModData::generate(&net, ScaleFactor(sf), 42);
    let total_rows: usize = data.trips.len() + data.vehicles.len();

    let cells = [bench_vec(&data, runs), bench_row(&data, runs)];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for c in &cells {
        let overhead = if c.mem_ms > 0.0 { c.wal_ms / c.mem_ms } else { 1.0 };
        rows.push(vec![
            c.engine.to_string(),
            format!("{:.1}", c.mem_ms),
            format!("{:.1}", c.wal_ms),
            format!("{overhead:.2}x"),
            format!("{:.1}", c.recover_ms),
            format!("{}", c.wal_bytes),
            format!("{}", c.ckpt_bytes),
        ]);
        records.push(Json::Obj(vec![
            ("engine", Json::Str(c.engine.to_string())),
            ("sf", Json::Num(sf)),
            ("runs", Json::Int(runs as i64)),
            ("ingest_memory_ms", Json::Num(c.mem_ms)),
            ("ingest_wal_ms", Json::Num(c.wal_ms)),
            ("wal_overhead", Json::Num(overhead)),
            ("recovery_ms", Json::Num(c.recover_ms)),
            ("wal_bytes", Json::Int(c.wal_bytes as i64)),
            ("checkpoint_bytes", Json::Int(c.ckpt_bytes as i64)),
        ]));
    }

    println!(
        "\nDurability — SF-{sf}: {} vehicles, {} trips (~{total_rows} primary rows; \
         median of {runs})\n",
        data.vehicles.len(),
        data.trips.len()
    );
    println!(
        "{}",
        render_table(
            &[
                "engine",
                "ingest mem (ms)",
                "ingest wal (ms)",
                "overhead",
                "recovery (ms)",
                "wal bytes",
                "ckpt bytes"
            ],
            &rows
        )
    );

    match std::fs::write("BENCH_durability.json", Json::render_lines(&records)) {
        Ok(()) => println!("wrote BENCH_durability.json ({} records)", records.len()),
        Err(e) => eprintln!("failed to write BENCH_durability.json: {e}"),
    }
}
