//! Ablation for the §6.3 Query-5 optimization: the WKB proxy-layer
//! formulation (`trajectory(...)::GEOMETRY`, `ST_Collect`, `ST_Distance`)
//! versus the MobilityDuck-native `_gs` formulation (`trajectory_gs`,
//! `collect_gs`, `distance_gs`), which keeps geometries in the native
//! serialized form end to end.
//!
//! The paper motivates `_gs` by the "heavy" casting between WKB_BLOB and
//! GEOMETRY; this binary measures exactly that gap.

use berlinmod::ScaleFactor;
use mduck_bench::{render_table, BenchEnv, Scenario};

const Q5_WKB: &str = "WITH Temp1(license1, trajs) AS (
   SELECT l1.license, ST_Collect(list(trajectory(t1.trip)::GEOMETRY))
   FROM trips t1, licenses1 l1
   WHERE t1.vehicleid = l1.vehicleid
   GROUP BY l1.license ),
 Temp2(license2, trajs) AS (
   SELECT l2.license, ST_Collect(list(trajectory(t2.trip)::GEOMETRY))
   FROM trips t2, licenses2 l2
   WHERE t2.vehicleid = l2.vehicleid
   GROUP BY l2.license )
 SELECT license1, license2, ST_Distance(t1.trajs, t2.trajs) AS mindist
 FROM Temp1 t1, Temp2 t2
 ORDER BY license1, license2";

const Q5_GS: &str = "WITH Temp1(license1, trajs) AS (
   SELECT l1.license, collect_gs(list(trajectory_gs(t1.trip)))
   FROM trips t1, licenses1 l1
   WHERE t1.vehicleid = l1.vehicleid
   GROUP BY l1.license ),
 Temp2(license2, trajs) AS (
   SELECT l2.license, collect_gs(list(trajectory_gs(t2.trip)))
   FROM trips t2, licenses2 l2
   WHERE t2.vehicleid = l2.vehicleid
   GROUP BY l2.license )
 SELECT license1, license2, distance_gs(t1.trajs, t2.trajs) AS mindist
 FROM Temp1 t1, Temp2 t2
 ORDER BY license1, license2";

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let sfs: &[f64] = if small { &[0.001] } else { &[0.001, 0.002, 0.005] };
    let mut rows = Vec::new();
    for &sf in sfs {
        eprintln!("preparing SF-{sf} ...");
        let env = BenchEnv::prepare(ScaleFactor(sf), 42);
        let (wkb_ms, n1) = env.run_median(Scenario::MobilityDuck, Q5_WKB, 3);
        let (gs_ms, n2) = env.run_median(Scenario::MobilityDuck, Q5_GS, 3);
        assert_eq!(n1, n2, "the two formulations must return the same rows");
        // Cross-check one value.
        let a = env.vdb.execute(Q5_WKB).unwrap().rows;
        let b = env.vdb.execute(Q5_GS).unwrap().rows;
        for (ra, rb) in a.iter().zip(&b) {
            let (da, db) = (ra[2].as_float().unwrap(), rb[2].as_float().unwrap());
            assert!((da - db).abs() <= 1e-6 * da.abs().max(1.0), "distances diverge");
        }
        rows.push(vec![
            format!("SF-{sf}"),
            format!("{wkb_ms:.2}"),
            format!("{gs_ms:.2}"),
            format!("{:.2}×", wkb_ms / gs_ms.max(1e-9)),
        ]);
    }
    println!("§6.3 ablation: Query 5 via the WKB proxy layer vs the native _gs path\n");
    println!(
        "{}",
        render_table(&["scale", "WKB path (ms)", "_gs path (ms)", "speedup"], &rows)
    );
    println!("(the paper reports the _gs rewrite as the fix for Query 5's WKB-cast overhead)");
}
