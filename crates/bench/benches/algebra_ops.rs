//! Micro-benchmarks of the temporal algebra itself (the ablation DESIGN.md
//! calls out): synchronization-heavy operators (tdwithin, tdistance),
//! restriction (atTime/atGeometry), and the WKB-vs-native `_gs` geometry
//! round trip of §6.3.

use mduck_bench::micro::bench_function;
use mduck_geo::point::Point;
use mduck_geo::{gserialized, wkb, Geometry};
use mduck_temporal::span::TstzSpan;
use mduck_temporal::temporal::TGeomPoint;
use mduck_temporal::TimestampTz;

fn make_trip(n: usize, phase: f64) -> TGeomPoint {
    let pts: Vec<(Point, TimestampTz)> = (0..n)
        .map(|i| {
            let t = i as f64;
            (
                Point::new((t * 0.1 + phase).sin() * 1000.0, (t * 0.07 + phase).cos() * 1000.0),
                TimestampTz(1_700_000_000_000_000 + i as i64 * 60_000_000),
            )
        })
        .collect();
    TGeomPoint::linear_seq(pts, 3405).unwrap()
}

fn main() {
    let a = make_trip(200, 0.0);
    let b = make_trip(200, 0.5);
    bench_function("tdwithin_200x200", || a.tdwithin(&b, 50.0).map(|t| t.num_instants()));
    bench_function("tdistance_200x200", || a.tdistance(&b).map(|t| t.num_instants()));
    let period = TstzSpan::new(
        TimestampTz(1_700_000_000_000_000 + 30 * 60_000_000),
        TimestampTz(1_700_000_000_000_000 + 90 * 60_000_000),
        true,
        true,
    )
    .unwrap();
    bench_function("attime_200", || a.at_period(&period).map(|t| t.temp.num_instants()));
    let square = Geometry::polygon(vec![vec![
        Point::new(-500.0, -500.0),
        Point::new(500.0, -500.0),
        Point::new(500.0, 500.0),
        Point::new(-500.0, 500.0),
        Point::new(-500.0, -500.0),
    ]])
    .unwrap();
    bench_function("atgeometry_200", || a.at_geometry(&square).unwrap().map(|t| t.length()));

    // The §6.3 conversion-overhead ablation: WKB round trip vs native.
    let traj = a.trajectory();
    bench_function("geometry_wkb_roundtrip", || {
        wkb::from_wkb(&wkb::to_wkb(&traj)).unwrap().num_points()
    });
    bench_function("geometry_native_roundtrip", || {
        gserialized::from_native(&gserialized::to_native(&traj)).unwrap().num_points()
    });
    let bytes = gserialized::to_native(&traj);
    bench_function("geometry_native_peek_bbox", || gserialized::peek_bbox(&bytes).unwrap().0);
}
