//! Criterion micro-benchmark behind Figure 12: a representative subset of
//! the BerlinMOD queries (Q3 joins + temporal restriction, Q7 correlated
//! ALL, Q10 tDwithin) at SF-0.001 across the three scenarios. The report
//! binary `fig12_berlinmod` runs all 17 queries at all four scale factors.

use berlinmod::benchmark_queries;
use berlinmod::ScaleFactor;
use criterion::{criterion_group, criterion_main, Criterion};
use mduck_bench::{BenchEnv, Scenario};

fn bench_queries(c: &mut Criterion) {
    let env = BenchEnv::prepare(ScaleFactor(0.001), 42);
    let queries = benchmark_queries();
    for id in [1u32, 3, 4, 8] {
        let (_, _, sql) = queries.iter().find(|(q, _, _)| *q == id).unwrap();
        let mut g = c.benchmark_group(format!("berlinmod_q{id}_sf0.001"));
        g.sample_size(10);
        g.bench_function("mobilityduck", |b| {
            b.iter(|| env.run(Scenario::MobilityDuck, sql).1)
        });
        g.bench_function("mobilitydb_plain", |b| {
            b.iter(|| env.run(Scenario::MobilityDbPlain, sql).1)
        });
        g.bench_function("mobilitydb_indexed", |b| {
            b.iter(|| env.run(Scenario::MobilityDbIndexed, sql).1)
        });
        g.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
