//! Micro-benchmark behind Figure 12: a representative subset of the
//! BerlinMOD queries (Q3 joins + temporal restriction, Q7 correlated
//! ALL, Q10 tDwithin) at SF-0.001 across the three scenarios. The report
//! binary `fig12_berlinmod` runs all 17 queries at all four scale factors.

use berlinmod::benchmark_queries;
use berlinmod::ScaleFactor;
use mduck_bench::micro::bench_function;
use mduck_bench::{BenchEnv, Scenario};

fn main() {
    let env = BenchEnv::prepare(ScaleFactor(0.001), 42);
    let queries = benchmark_queries();
    for id in [1u32, 3, 4, 8] {
        let (_, _, sql) = queries.iter().find(|(q, _, _)| *q == id).unwrap();
        bench_function(&format!("berlinmod_q{id}_sf0.001/mobilityduck"), || {
            env.run(Scenario::MobilityDuck, sql).1
        });
        bench_function(&format!("berlinmod_q{id}_sf0.001/mobilitydb_plain"), || {
            env.run(Scenario::MobilityDbPlain, sql).1
        });
        bench_function(&format!("berlinmod_q{id}_sf0.001/mobilitydb_indexed"), || {
            env.run(Scenario::MobilityDbIndexed, sql).1
        });
    }
}
