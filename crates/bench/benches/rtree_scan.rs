//! Micro-benchmark behind Figure 2: TRTREE index scan vs sequential scan
//! on the §4.4 synthetic table (10k rows — the report binary `fig2_rtree`
//! sweeps the full 1k..1M range).

use mduck_bench::micro::bench_function;
use quackdb::Database;

fn setup(n: usize, with_index: bool) -> Database {
    let db = Database::new();
    mobilityduck::load(&db);
    db.execute("CREATE TABLE test_geo(times TIMESTAMPTZ, box STBOX)").unwrap();
    if with_index {
        db.execute("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)").unwrap();
    }
    db.execute(&format!(
        "INSERT INTO test_geo \
         SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')), \
                ('STBOX X((' || (i * 1.0)::DECIMAL(10,2) || ',' || (i * 1.0)::DECIMAL(10,2) || \
                '),(' || (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' || (i * 1.0 + 0.5)::DECIMAL(10,2) || \
                '))')::stbox \
         FROM generate_series(1, {n}) AS t(i)"
    ))
    .unwrap();
    db
}

fn main() {
    const N: usize = 10_000;
    let q = format!(
        "SELECT count(*) FROM test_geo WHERE box && STBOX('STBOX X(({lo},{lo}),({hi},{hi}))')",
        lo = N as f64 * 0.5,
        hi = N as f64 * 0.51
    );
    let indexed = setup(N, true);
    let plain = setup(N, false);
    bench_function("rtree_vs_seq_10k/trtree_index_scan", || indexed.execute(&q).unwrap().rows.len());
    bench_function("rtree_vs_seq_10k/seq_scan", || plain.execute(&q).unwrap().rows.len());
}
