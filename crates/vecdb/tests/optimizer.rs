//! Planner/optimizer behaviour tests: filter pushdown, hash-join
//! extraction, and EXPLAIN-visible plan shapes.

use quackdb::Database;

fn db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE a(id INTEGER, x INTEGER)").unwrap();
    db.execute("CREATE TABLE b(id INTEGER, y INTEGER)").unwrap();
    db.execute("INSERT INTO a SELECT i, i * 2 FROM generate_series(1, 100) AS t(i)").unwrap();
    db.execute("INSERT INTO b SELECT i, i * 3 FROM generate_series(1, 100) AS t(i)").unwrap();
    db
}

fn plan(db: &Database, sql: &str) -> String {
    db.execute(&format!("EXPLAIN {sql}")).unwrap().rows[0][0].to_string()
}

#[test]
fn equality_conjuncts_become_hash_joins() {
    let db = db();
    let p = plan(&db, "SELECT count(*) FROM a, b WHERE a.id = b.id");
    assert!(p.contains("HASH_JOIN"), "{p}");
    assert!(!p.contains("CROSS_PRODUCT"), "{p}");
    let r = db.execute("SELECT count(*) FROM a, b WHERE a.id = b.id").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "100");
}

#[test]
fn no_key_means_cross_product() {
    let db = db();
    let p = plan(&db, "SELECT count(*) FROM a, b WHERE a.x < b.y");
    assert!(p.contains("CROSS_PRODUCT"), "{p}");
}

#[test]
fn single_table_predicates_are_pushed_below_joins() {
    let db = db();
    let p = plan(&db, "SELECT count(*) FROM a, b WHERE a.id = b.id AND a.x > 100 AND b.y > 100");
    // Both pushed filters appear below the join (the join box comes first
    // in the rendering, filters attach to scans).
    let join_pos = p.find("HASH_JOIN").expect("hash join in plan");
    let first_filter = p.find("FILTER").expect("filters in plan");
    assert!(first_filter > join_pos, "filters should render below the join\n{p}");
    let r = db
        .execute("SELECT count(*) FROM a, b WHERE a.id = b.id AND a.x > 100 AND b.y > 100")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "50"); // ids 51..100
}

#[test]
fn join_keys_can_be_expressions() {
    let db = db();
    let r = db
        .execute("SELECT count(*) FROM a, b WHERE a.x = b.y") // 2i = 3j
        .unwrap();
    // x = 2i ∈ [2,200], y = 3j ∈ [3,300]; matches at multiples of 6 → 33.
    assert_eq!(r.rows[0][0].to_string(), "33");
}

#[test]
fn three_way_join_order_follows_from_clause() {
    let db = db();
    db.execute("CREATE TABLE c(id INTEGER, z INTEGER)").unwrap();
    db.execute("INSERT INTO c SELECT i, i FROM generate_series(1, 10) AS t(i)").unwrap();
    let sql = "SELECT count(*) FROM a, b, c WHERE a.id = b.id AND b.id = c.id";
    let p = plan(&db, sql);
    assert_eq!(p.matches("HASH_JOIN").count(), 2, "{p}");
    let r = db.execute(sql).unwrap();
    assert_eq!(r.rows[0][0].to_string(), "10");
}

#[test]
fn limit_distinct_order_render() {
    let db = db();
    let p = plan(&db, "SELECT DISTINCT x FROM a ORDER BY x DESC LIMIT 5");
    assert!(p.contains("LIMIT"), "{p}");
    assert!(p.contains("ORDER_BY"), "{p}");
    assert!(p.contains("DISTINCT"), "{p}");
    assert!(p.contains("PROJECTION"), "{p}");
}

#[test]
fn aggregation_renders_group_by_node() {
    let db = db();
    let p = plan(&db, "SELECT x % 3, count(*) FROM a GROUP BY x % 3");
    assert!(p.contains("HASH_GROUP_BY"), "{p}");
}

#[test]
fn rows_scanned_reflects_pushdown() {
    // Filter pushdown must not change results even with chained filters.
    let db = db();
    for sql in [
        "SELECT count(*) FROM a WHERE x > 50 AND x < 150 AND id <> 40",
        "SELECT count(*) FROM a, b WHERE a.id = b.id AND a.x + b.y > 10",
    ] {
        let r1 = db.execute(sql).unwrap();
        // Same query through a subquery wrapper (defeats pushdown shape).
        let wrapped = format!("SELECT * FROM ({sql}) q");
        let r2 = db.execute(&wrapped).unwrap();
        assert_eq!(r1.rows, r2.rows, "{sql}");
    }
}
