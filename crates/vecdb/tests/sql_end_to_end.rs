//! End-to-end SQL tests for the quackdb engine.

use quackdb::Database;

fn db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE people(id INTEGER, name VARCHAR, age INTEGER, city VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES \
         (1, 'ann', 34, 'hanoi'), (2, 'bob', 28, 'hue'), (3, 'cat', 41, 'hanoi'), \
         (4, 'dan', 28, 'danang'), (5, 'eve', 55, 'hanoi')",
    )
    .unwrap();
    db
}

#[test]
fn select_filter_order() {
    let db = db();
    let r = db
        .execute("SELECT name FROM people WHERE city = 'hanoi' AND age > 30 ORDER BY age DESC")
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["eve", "cat", "ann"]);
}

#[test]
fn aggregates_and_group_by() {
    let db = db();
    let r = db
        .execute(
            "SELECT city, count(*) AS n, avg(age) AS mean \
             FROM people GROUP BY city ORDER BY n DESC, city",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][0].to_string(), "hanoi");
    assert_eq!(r.rows[0][1].to_string(), "3");
    let mean: f64 = match r.rows[0][2] {
        mduck_sql::Value::Float(f) => f,
        _ => panic!(),
    };
    assert!((mean - (34.0 + 41.0 + 55.0) / 3.0).abs() < 1e-9);
}

#[test]
fn global_aggregate_without_group() {
    let db = db();
    let r = db.execute("SELECT count(*), min(age), max(age), sum(age) FROM people").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "5");
    assert_eq!(r.rows[0][1].to_string(), "28");
    assert_eq!(r.rows[0][2].to_string(), "55");
    assert_eq!(r.rows[0][3].to_string(), "186");
}

#[test]
fn joins_hash_and_cross() {
    let db = db();
    db.execute("CREATE TABLE cities(name VARCHAR, region VARCHAR)").unwrap();
    db.execute("INSERT INTO cities VALUES ('hanoi', 'north'), ('hue', 'central')").unwrap();
    let r = db
        .execute(
            "SELECT p.name, c.region FROM people p, cities c \
             WHERE p.city = c.name ORDER BY p.id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 4);
    assert_eq!(r.rows[0][1].to_string(), "north");
    // Cross join counts.
    let r = db.execute("SELECT count(*) FROM people, cities").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "10");
}

#[test]
fn distinct_limit_offset() {
    let db = db();
    let r = db.execute("SELECT DISTINCT age FROM people ORDER BY age").unwrap();
    assert_eq!(r.rows.len(), 4);
    let r = db.execute("SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1").unwrap();
    let ids: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(ids, vec!["2", "3"]);
}

#[test]
fn ctes_and_subqueries() {
    let db = db();
    let r = db
        .execute(
            "WITH olds AS (SELECT * FROM people WHERE age > 30) \
             SELECT count(*) FROM olds",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "3");
    // CTE with column aliases referenced twice.
    let r = db
        .execute(
            "WITH t(n, a) AS (SELECT name, age FROM people) \
             SELECT t1.n FROM t t1, t t2 WHERE t1.a = t2.a AND t1.n <> t2.n ORDER BY t1.n",
        )
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["bob", "dan"]);
    // Scalar subquery.
    let r = db
        .execute("SELECT name FROM people WHERE age = (SELECT max(age) FROM people)")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "eve");
}

#[test]
fn correlated_all_subquery() {
    // Q7's shape: keep rows whose value <= ALL values in their group.
    let db = db();
    let r = db
        .execute(
            "SELECT p1.name FROM people p1 WHERE p1.age <= ALL \
             (SELECT p2.age FROM people p2 WHERE p1.city = p2.city) ORDER BY p1.name",
        )
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    // ann is youngest in hanoi, bob in hue, dan in danang.
    assert_eq!(names, vec!["ann", "bob", "dan"]);
}

#[test]
fn exists_and_in() {
    let db = db();
    let r = db
        .execute(
            "SELECT name FROM people p WHERE EXISTS \
             (SELECT 1 FROM people q WHERE q.city = p.city AND q.id <> p.id) ORDER BY name",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3); // the three hanoi residents
    let r = db
        .execute("SELECT count(*) FROM people WHERE city IN ('hue', 'danang')")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "2");
    let r = db
        .execute("SELECT count(*) FROM people WHERE id IN (SELECT id FROM people WHERE age = 28)")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "2");
}

#[test]
fn generate_series_and_expressions() {
    let db = Database::new();
    let r = db
        .execute("SELECT sum(i) FROM generate_series(1, 1000) AS t(i)")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "500500");
    let r = db.execute("SELECT 2 + 3 * 4, 'a' || 'b', 10 / 4, 10.0 / 4").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "14");
    assert_eq!(r.rows[0][1].to_string(), "ab");
    assert_eq!(r.rows[0][2].to_string(), "2");
    assert_eq!(r.rows[0][3].to_string(), "2.5");
}

#[test]
fn timestamps_and_intervals() {
    let db = Database::new();
    db.execute("CREATE TABLE e(at TIMESTAMPTZ)").unwrap();
    db.execute(
        "INSERT INTO e SELECT ('2025-08-11 12:00:00'::timestamp + INTERVAL (i || ' minutes')) \
         FROM generate_series(1, 3) AS t(i)",
    )
    .unwrap();
    let r = db.execute("SELECT min(at), max(at) FROM e").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "2025-08-11 12:01:00+00");
    assert_eq!(r.rows[0][1].to_string(), "2025-08-11 12:03:00+00");
    let r = db
        .execute("SELECT count(*) FROM e WHERE at > timestamptz '2025-08-11 12:01:30'")
        .unwrap();
    assert_eq!(r.rows[0][0].to_string(), "2");
}

#[test]
fn update_and_delete() {
    let db = db();
    db.execute("UPDATE people SET age = age + 1 WHERE city = 'hanoi'").unwrap();
    let r = db.execute("SELECT sum(age) FROM people WHERE city = 'hanoi'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "133");
    let r = db.execute("DELETE FROM people WHERE city = 'hue'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1");
    let r = db.execute("SELECT count(*) FROM people").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "4");
}

#[test]
fn insert_with_column_list_and_nulls() {
    let db = Database::new();
    db.execute("CREATE TABLE t(a INTEGER, b VARCHAR, c DOUBLE)").unwrap();
    db.execute("INSERT INTO t (b, a) VALUES ('x', 1)").unwrap();
    let r = db.execute("SELECT a, b, c FROM t").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1");
    assert_eq!(r.rows[0][1].to_string(), "x");
    assert!(r.rows[0][2].is_null());
    let r = db.execute("SELECT count(*) FROM t WHERE c IS NULL").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1");
    let r = db.execute("SELECT count(c) FROM t").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "0");
}

#[test]
fn case_expression_and_in_list() {
    let db = db();
    let r = db
        .execute(
            "SELECT name, CASE WHEN age < 30 THEN 'young' ELSE 'old' END AS bucket \
             FROM people ORDER BY id LIMIT 2",
        )
        .unwrap();
    assert_eq!(r.rows[0][1].to_string(), "old");
    assert_eq!(r.rows[1][1].to_string(), "young");
}

#[test]
fn explain_renders_tree() {
    let db = db();
    let r = db.execute("EXPLAIN SELECT name FROM people WHERE age > 30").unwrap();
    let text = r.rows[0][0].to_string();
    assert!(text.contains("PROJECTION"), "{text}");
    assert!(text.contains("SEQ_SCAN"), "{text}");
    assert!(text.contains("FILTER"), "{text}");
}

#[test]
fn errors_are_reported() {
    let db = db();
    assert!(db.execute("SELECT nope FROM people").is_err());
    assert!(db.execute("SELECT * FROM missing").is_err());
    assert!(db.execute("SELEC 1").is_err());
    assert!(db.execute("CREATE TABLE people(a INTEGER)").is_err());
    assert!(db.execute("SELECT age, name FROM people GROUP BY age").is_err());
}

#[test]
fn having_clause() {
    let db = db();
    let r = db
        .execute(
            "SELECT city, count(*) AS n FROM people GROUP BY city HAVING count(*) > 1 ORDER BY city",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].to_string(), "hanoi");
}

#[test]
fn order_by_expression_and_position() {
    let db = db();
    let r = db.execute("SELECT name, age FROM people ORDER BY 2 DESC LIMIT 1").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "eve");
    let r = db.execute("SELECT name FROM people ORDER BY age * -1 LIMIT 1").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "eve");
}

#[test]
fn show_tables_and_describe() {
    let db = db();
    let r = db.execute("SHOW TABLES").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].to_string(), "people");
    let r = db.execute("DESCRIBE people").unwrap();
    assert_eq!(r.rows.len(), 4);
    assert_eq!(r.rows[0][0].to_string(), "id");
    assert_eq!(r.rows[0][1].to_string(), "BIGINT");
    assert!(db.execute("DESCRIBE missing").is_err());
}
