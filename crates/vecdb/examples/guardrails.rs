//! Demonstrates the robustness surface: typed errors for hostile input,
//! per-query execution limits, and cross-thread cancellation.
//!
//! Run: `cargo run --release -p quackdb --example guardrails`

use quackdb::{Database, ExecGuard, ExecLimits};
use std::time::Duration;

fn show(db: &Database, sql: &str) {
    match db.execute(sql) {
        Ok(r) => println!("  OK   {sql:60} -> {} rows", r.rows.len()),
        Err(e) => println!("  ERR  {sql:60} -> {e}"),
    }
}

fn main() {
    let db = Database::new();

    println!("hostile inputs produce typed errors, never panics:");
    show(&db, "SELECT 1 / 0");
    show(&db, "SELECT 9223372036854775807 + 1");
    show(&db, "SELECT (-9223372036854775807 - 1) / -1");
    show(&db, "SELECT 'abc");
    show(&db, "CREAT\u{30C8}E INDE");
    show(&db, &format!("SELECT {}1{}", "(".repeat(200), ")".repeat(200)));

    println!("\nrow budget stops a runaway cross join:");
    db.execute("CREATE TABLE a(x BIGINT)").expect("create");
    db.execute("INSERT INTO a SELECT * FROM generate_series(1, 1000)").expect("fill");
    db.set_exec_limits(ExecLimits {
        row_budget: Some(100_000),
        ..ExecLimits::default()
    });
    show(&db, "SELECT count(*) FROM a, a a2, a a3");
    show(&db, "SELECT count(*) FROM a");

    println!("\ntimeout:");
    db.set_exec_limits(ExecLimits {
        timeout: Some(Duration::from_millis(50)),
        ..ExecLimits::default()
    });
    show(&db, "SELECT count(*) FROM a, a a2, a a3");

    println!("\ncross-thread cancellation:");
    db.set_exec_limits(ExecLimits::default());
    let guard = ExecGuard::new(&db.exec_limits());
    let cancel = guard.cancel_handle();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        cancel.cancel();
    });
    match db.execute_with_guard("SELECT count(*) FROM a, a a2, a a3", &guard) {
        Ok(r) => println!("  OK   -> {} rows", r.rows.len()),
        Err(e) => println!("  ERR  -> {e}"),
    }
}
