//! Columnar storage: typed column vectors with validity masks, and the
//! [`DataChunk`] unit of vectorized execution (2048 rows, like DuckDB).

use std::sync::Arc;

use mduck_sql::{ExtValue, LogicalType, SqlError, SqlResult, Value};

/// Rows per vectorized chunk.
pub const VECTOR_SIZE: usize = 2048;

/// A typed column with a validity mask. The payload vectors store a
/// default value in invalid slots.
#[derive(Debug, Clone)]
pub struct ColumnData {
    pub ty: LogicalType,
    pub validity: Vec<bool>,
    pub payload: Payload,
}

/// The typed payload of a column.
#[derive(Debug, Clone)]
pub enum Payload {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<Arc<str>>),
    Blob(Vec<Arc<[u8]>>),
    Timestamp(Vec<i64>),
    Date(Vec<i32>),
    Interval(Vec<(i32, i32, i64)>),
    Ext(Vec<Option<ExtValue>>),
    List(Vec<Option<Arc<Vec<Value>>>>),
}

impl ColumnData {
    /// An empty column of the given logical type.
    pub fn new(ty: &LogicalType) -> Self {
        let payload = match ty {
            LogicalType::Bool => Payload::Bool(Vec::new()),
            LogicalType::Int | LogicalType::Null | LogicalType::Any => Payload::Int(Vec::new()),
            LogicalType::Float => Payload::Float(Vec::new()),
            LogicalType::Text => Payload::Text(Vec::new()),
            LogicalType::Blob => Payload::Blob(Vec::new()),
            LogicalType::Timestamp => Payload::Timestamp(Vec::new()),
            LogicalType::Date => Payload::Date(Vec::new()),
            LogicalType::Interval => Payload::Interval(Vec::new()),
            LogicalType::Ext(_) => Payload::Ext(Vec::new()),
            LogicalType::List => Payload::List(Vec::new()),
        };
        ColumnData { ty: ty.clone(), validity: Vec::new(), payload }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append a runtime value (with implicit numeric coercion).
    pub fn push(&mut self, v: &Value) -> SqlResult<()> {
        if v.is_null() {
            self.push_null();
            return Ok(());
        }
        match (&mut self.payload, v) {
            (Payload::Bool(p), Value::Bool(b)) => p.push(*b),
            (Payload::Int(p), Value::Int(i)) => p.push(*i),
            (Payload::Int(p), Value::Float(f)) => p.push(*f as i64),
            (Payload::Float(p), Value::Float(f)) => p.push(*f),
            (Payload::Float(p), Value::Int(i)) => p.push(*i as f64),
            (Payload::Text(p), Value::Text(s)) => p.push(s.clone()),
            (Payload::Blob(p), Value::Blob(b)) => p.push(b.clone()),
            (Payload::Timestamp(p), Value::Timestamp(t)) => p.push(*t),
            (Payload::Timestamp(p), Value::Date(d)) => p.push(*d as i64 * 86_400_000_000),
            (Payload::Date(p), Value::Date(d)) => p.push(*d),
            (Payload::Interval(p), Value::Interval { months, days, usecs }) => {
                p.push((*months, *days, *usecs))
            }
            (Payload::Ext(p), Value::Ext(e)) => p.push(Some(e.clone())),
            (Payload::List(p), Value::List(l)) => p.push(Some(l.clone())),
            (payload, v) => {
                return Err(SqlError::execution(format!(
                    "cannot store {v:?} in a {payload:?} column"
                )))
            }
        }
        self.validity.push(true);
        Ok(())
    }

    /// Non-mutating twin of [`ColumnData::push`]: would this value be
    /// accepted, including the implicit coercions? Callers validate a
    /// whole batch with this before mutating anything, which is what
    /// makes multi-column appends atomic — after `accepts` passes, the
    /// pushes cannot fail halfway and leave ragged columns.
    pub fn accepts(&self, v: &Value) -> SqlResult<()> {
        if v.is_null() {
            return Ok(());
        }
        let ok = matches!(
            (&self.payload, v),
            (Payload::Bool(_), Value::Bool(_))
                | (Payload::Int(_), Value::Int(_) | Value::Float(_))
                | (Payload::Float(_), Value::Float(_) | Value::Int(_))
                | (Payload::Text(_), Value::Text(_))
                | (Payload::Blob(_), Value::Blob(_))
                | (Payload::Timestamp(_), Value::Timestamp(_) | Value::Date(_))
                | (Payload::Date(_), Value::Date(_))
                | (Payload::Interval(_), Value::Interval { .. })
                | (Payload::Ext(_), Value::Ext(_))
                | (Payload::List(_), Value::List(_))
        );
        if ok {
            Ok(())
        } else {
            Err(SqlError::execution(format!(
                "cannot store {v:?} in a {} column",
                self.ty.name()
            )))
        }
    }

    /// Keep only the first `len` rows (the rollback path of an atomic
    /// append).
    pub fn truncate(&mut self, len: usize) {
        self.validity.truncate(len);
        match &mut self.payload {
            Payload::Bool(p) => p.truncate(len),
            Payload::Int(p) => p.truncate(len),
            Payload::Float(p) => p.truncate(len),
            Payload::Text(p) => p.truncate(len),
            Payload::Blob(p) => p.truncate(len),
            Payload::Timestamp(p) => p.truncate(len),
            Payload::Date(p) => p.truncate(len),
            Payload::Interval(p) => p.truncate(len),
            Payload::Ext(p) => p.truncate(len),
            Payload::List(p) => p.truncate(len),
        }
    }

    pub fn push_null(&mut self) {
        match &mut self.payload {
            Payload::Bool(p) => p.push(false),
            Payload::Int(p) => p.push(0),
            Payload::Float(p) => p.push(0.0),
            Payload::Text(p) => p.push(Arc::from("")),
            Payload::Blob(p) => p.push(Arc::from(&[][..])),
            Payload::Timestamp(p) => p.push(0),
            Payload::Date(p) => p.push(0),
            Payload::Interval(p) => p.push((0, 0, 0)),
            Payload::Ext(p) => p.push(None),
            Payload::List(p) => p.push(None),
        }
        self.validity.push(false);
    }

    /// Read one value.
    pub fn get(&self, i: usize) -> Value {
        if !self.validity[i] {
            return Value::Null;
        }
        match &self.payload {
            Payload::Bool(p) => Value::Bool(p[i]),
            Payload::Int(p) => Value::Int(p[i]),
            Payload::Float(p) => Value::Float(p[i]),
            Payload::Text(p) => Value::Text(p[i].clone()),
            Payload::Blob(p) => Value::Blob(p[i].clone()),
            Payload::Timestamp(p) => Value::Timestamp(p[i]),
            Payload::Date(p) => Value::Date(p[i]),
            Payload::Interval(p) => {
                let (months, days, usecs) = p[i];
                Value::Interval { months, days, usecs }
            }
            Payload::Ext(p) => match &p[i] {
                Some(e) => Value::Ext(e.clone()),
                None => Value::Null,
            },
            Payload::List(p) => match &p[i] {
                Some(l) => Value::List(l.clone()),
                None => Value::Null,
            },
        }
    }

    /// Gather the rows selected by `sel` into a new column.
    pub fn gather(&self, sel: &[usize]) -> ColumnData {
        let mut out = ColumnData::new(&self.ty);
        out.validity.reserve(sel.len());
        for &i in sel {
            // Typed fast paths avoid Value boxing.
            if !self.validity[i] {
                out.push_null();
                continue;
            }
            match (&self.payload, &mut out.payload) {
                (Payload::Bool(a), Payload::Bool(b)) => b.push(a[i]),
                (Payload::Int(a), Payload::Int(b)) => b.push(a[i]),
                (Payload::Float(a), Payload::Float(b)) => b.push(a[i]),
                (Payload::Text(a), Payload::Text(b)) => b.push(a[i].clone()),
                (Payload::Blob(a), Payload::Blob(b)) => b.push(a[i].clone()),
                (Payload::Timestamp(a), Payload::Timestamp(b)) => b.push(a[i]),
                (Payload::Date(a), Payload::Date(b)) => b.push(a[i]),
                (Payload::Interval(a), Payload::Interval(b)) => b.push(a[i]),
                (Payload::Ext(a), Payload::Ext(b)) => b.push(a[i].clone()),
                (Payload::List(a), Payload::List(b)) => b.push(a[i].clone()),
                _ => unreachable!("same column type"),
            }
            out.validity.push(true);
        }
        out
    }

    /// Approximate bytes this column occupies, for per-query memory
    /// accounting. Fixed-width payloads are exact; var-width ones sum
    /// their payload lengths plus a small per-entry overhead. O(n) for
    /// var-width columns, so call once per materialized chunk, not per
    /// row.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.len() as u64;
        // Validity mask: one byte per row.
        n + match &self.payload {
            Payload::Bool(_) => n,
            Payload::Int(_) | Payload::Float(_) | Payload::Timestamp(_) => n * 8,
            Payload::Date(_) => n * 4,
            Payload::Interval(_) => n * 16,
            Payload::Text(p) => p.iter().map(|s| 16 + s.len() as u64).sum(),
            Payload::Blob(p) => p.iter().map(|b| 16 + b.len() as u64).sum(),
            Payload::Ext(p) => p
                .iter()
                .map(|e| 8 + e.as_ref().map_or(0, |e| e.obj.approx_bytes()))
                .sum(),
            Payload::List(p) => p
                .iter()
                .map(|l| {
                    24 + l
                        .as_ref()
                        .map_or(0, |l| l.iter().map(Value::approx_bytes).sum::<u64>())
                })
                .sum(),
        }
    }

    /// Append a slice of another column of the same type.
    pub fn extend_from(&mut self, other: &ColumnData, start: usize, len: usize) {
        for i in start..start + len {
            if !other.validity[i] {
                self.push_null();
            } else {
                self.push(&other.get(i)).expect("same type");
            }
        }
    }
}

/// A horizontal slice of vectors processed together.
#[derive(Debug, Clone)]
pub struct DataChunk {
    pub columns: Vec<ColumnData>,
    pub len: usize,
}

impl DataChunk {
    pub fn new(types: &[LogicalType]) -> Self {
        DataChunk { columns: types.iter().map(ColumnData::new).collect(), len: 0 }
    }

    pub fn from_columns(columns: Vec<ColumnData>) -> Self {
        let len = columns.first().map(ColumnData::len).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        DataChunk { columns, len }
    }

    pub fn push_row(&mut self, row: &[Value]) -> SqlResult<()> {
        debug_assert_eq!(row.len(), self.columns.len());
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v)?;
        }
        self.len += 1;
        Ok(())
    }

    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Approximate bytes of every column vector in this chunk.
    pub fn approx_bytes(&self) -> u64 {
        self.columns.iter().map(ColumnData::approx_bytes).sum()
    }

    /// Keep only the selected rows.
    pub fn select(&self, sel: &[usize]) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
            len: sel.len(),
        }
    }
}

/// A fully materialized intermediate relation (chunk list).
#[derive(Debug, Clone, Default)]
pub struct Chunks {
    pub chunks: Vec<DataChunk>,
}

impl Chunks {
    pub fn row_count(&self) -> usize {
        self.chunks.iter().map(|c| c.len).sum()
    }

    pub fn num_columns(&self) -> usize {
        self.chunks.first().map(|c| c.columns.len()).unwrap_or(0)
    }

    /// Approximate bytes of the whole materialized relation.
    pub fn approx_bytes(&self) -> u64 {
        self.chunks.iter().map(DataChunk::approx_bytes).sum()
    }

    /// Iterate all rows (materializing values).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.chunks.iter().flat_map(|c| (0..c.len).map(move |i| c.row(i)))
    }

    /// Flatten into a row list.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.iter_rows().collect()
    }

    /// Build from rows with known column types.
    pub fn from_rows(types: &[LogicalType], rows: &[Vec<Value>]) -> SqlResult<Chunks> {
        let mut out = Chunks::default();
        let mut current = DataChunk::new(types);
        for row in rows {
            current.push_row(row)?;
            if current.len >= VECTOR_SIZE {
                out.chunks.push(std::mem::replace(&mut current, DataChunk::new(types)));
            }
        }
        if current.len > 0 {
            out.chunks.push(current);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = ColumnData::new(&LogicalType::Int);
        c.push(&Value::Int(5)).unwrap();
        c.push_null();
        c.push(&Value::Float(7.0)).unwrap(); // coerces
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(7));
        assert!(c.push(&Value::text("x")).is_err());
    }

    #[test]
    fn accepts_mirrors_push_and_truncate_rolls_back() {
        let mut c = ColumnData::new(&LogicalType::Int);
        assert!(c.accepts(&Value::Int(1)).is_ok());
        assert!(c.accepts(&Value::Float(2.0)).is_ok()); // implicit coercion
        assert!(c.accepts(&Value::Null).is_ok());
        assert!(c.accepts(&Value::text("x")).is_err());
        c.push(&Value::Int(1)).unwrap();
        c.push(&Value::Int(2)).unwrap();
        c.push_null();
        c.truncate(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(0), Value::Int(1));
    }

    #[test]
    fn gather_selects() {
        let mut c = ColumnData::new(&LogicalType::Text);
        for s in ["a", "b", "c", "d"] {
            c.push(&Value::text(s)).unwrap();
        }
        let g = c.gather(&[3, 1]);
        assert_eq!(g.get(0), Value::text("d"));
        assert_eq!(g.get(1), Value::text("b"));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn chunk_roundtrip() {
        let types = vec![LogicalType::Int, LogicalType::Text];
        let rows = vec![
            vec![Value::Int(1), Value::text("one")],
            vec![Value::Null, Value::text("two")],
        ];
        let chunks = Chunks::from_rows(&types, &rows).unwrap();
        assert_eq!(chunks.row_count(), 2);
        assert_eq!(chunks.to_rows(), rows);
    }

    #[test]
    fn chunking_splits_at_vector_size() {
        let types = vec![LogicalType::Int];
        let rows: Vec<Vec<Value>> = (0..VECTOR_SIZE + 10).map(|i| vec![Value::Int(i as i64)]).collect();
        let chunks = Chunks::from_rows(&types, &rows).unwrap();
        assert_eq!(chunks.chunks.len(), 2);
        assert_eq!(chunks.chunks[0].len, VECTOR_SIZE);
        assert_eq!(chunks.row_count(), VECTOR_SIZE + 10);
    }
}
