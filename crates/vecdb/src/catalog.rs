//! Tables (columnar storage) and the database catalog.

use std::collections::HashMap;
use std::sync::Arc;

use mduck_sync::RwLock;

use mduck_sql::{Catalog, LogicalType, SqlError, SqlResult, Value};

use crate::column::{Chunks, ColumnData, DataChunk, VECTOR_SIZE};
use crate::index::TableIndex;

/// A base table: full columnar storage plus any attached indexes.
pub struct Table {
    pub name: String,
    pub column_names: Vec<String>,
    pub columns: Vec<ColumnData>,
    pub indexes: Vec<Box<dyn TableIndex>>,
}

impl Table {
    pub fn new(name: String, columns: Vec<(String, LogicalType)>) -> Self {
        Table {
            name,
            column_names: columns.iter().map(|(n, _)| n.to_ascii_lowercase()).collect(),
            columns: columns.iter().map(|(_, t)| ColumnData::new(t)).collect(),
            indexes: Vec::new(),
        }
    }

    pub fn row_count(&self) -> usize {
        self.columns.first().map(ColumnData::len).unwrap_or(0)
    }

    pub fn column_types(&self) -> Vec<LogicalType> {
        self.columns.iter().map(|c| c.ty.clone()).collect()
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.column_names.iter().position(|n| *n == lname)
    }

    /// Check, without mutating anything, that `rows` can be appended:
    /// arity and per-column type acceptance. After this returns `Ok`,
    /// the column phase of [`Table::append_rows`] cannot fail.
    pub fn validate_append(&self, rows: &[Vec<Value>]) -> SqlResult<()> {
        for row in rows {
            if row.len() != self.columns.len() {
                return Err(SqlError::execution(format!(
                    "INSERT has {} values, table {} has {} columns",
                    row.len(),
                    self.name,
                    self.columns.len()
                )));
            }
            for (c, v) in self.columns.iter().zip(row) {
                c.accepts(v)?;
            }
        }
        Ok(())
    }

    /// Append rows, feeding attached indexes through the index-first
    /// `Append` path (§4.2.1). Atomic: on any failure the columns are
    /// rolled back to their pre-call length, so a half-applied INSERT is
    /// never visible (statement atomicity depends on this).
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> SqlResult<()> {
        self.validate_append(rows)?;
        let first_row = self.row_count();
        for row in rows {
            for (c, v) in self.columns.iter_mut().zip(row) {
                if let Err(e) = c.push(v) {
                    // Unreachable after validation, but a defect here
                    // must degrade to an error, not to ragged columns.
                    for c in &mut self.columns {
                        c.truncate(first_row);
                    }
                    return Err(e);
                }
            }
        }
        for k in 0..self.indexes.len() {
            let col = self.indexes[k].column();
            let values: Vec<Value> = rows.iter().map(|r| r[col].clone()).collect();
            if let Err(e) = self.indexes[k].append(&values, first_row as u64) {
                for c in &mut self.columns {
                    c.truncate(first_row);
                }
                // Indexes fed so far hold entries for the rows just
                // rolled back; an index is only an access path, so
                // dropping them is safe where serving stale row ids
                // is not.
                let dropped: Vec<String> =
                    self.indexes.drain(..=k).map(|i| i.name().to_string()).collect();
                return Err(SqlError::execution(format!(
                    "{e}; index(es) {dropped:?} on table {} were dropped to preserve \
                     consistency and must be re-created",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// All values of one column (for bulk index construction).
    pub fn column_values(&self, col: usize) -> Vec<Value> {
        (0..self.row_count()).map(|i| self.columns[col].get(i)).collect()
    }

    /// The table as execution chunks.
    /// Number of [`VECTOR_SIZE`] chunks a full scan of this table yields.
    pub fn chunk_count(&self) -> usize {
        self.row_count().div_ceil(VECTOR_SIZE)
    }

    /// Materialize the `i`-th scan chunk (rows `i*VECTOR_SIZE ..`). The
    /// unit of work a morsel worker claims during a parallel scan.
    pub fn chunk_at(&self, i: usize) -> DataChunk {
        let n = self.row_count();
        let start = i * VECTOR_SIZE;
        let len = VECTOR_SIZE.min(n.saturating_sub(start));
        let mut cols = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            let mut nc = ColumnData::new(&c.ty);
            nc.extend_from(c, start, len);
            cols.push(nc);
        }
        DataChunk::from_columns(cols)
    }

    pub fn scan_chunks(&self) -> Chunks {
        let mut out = Chunks::default();
        for i in 0..self.chunk_count() {
            out.chunks.push(self.chunk_at(i));
        }
        out
    }

    /// Gather specific row ids (index scan result path).
    pub fn gather_rows(&self, row_ids: &[u64]) -> Chunks {
        let sel: Vec<usize> = row_ids.iter().map(|&r| r as usize).collect();
        let mut out = Chunks::default();
        for chunk_sel in sel.chunks(VECTOR_SIZE) {
            let cols: Vec<ColumnData> =
                self.columns.iter().map(|c| c.gather(chunk_sel)).collect();
            out.chunks.push(DataChunk::from_columns(cols));
        }
        out
    }

    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }
}

/// The database catalog: name → table.
#[derive(Default, Clone)]
pub struct DbCatalog {
    tables: Arc<RwLock<HashMap<String, Arc<RwLock<Table>>>>>,
}

impl DbCatalog {
    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<(String, LogicalType)>,
        if_not_exists: bool,
    ) -> SqlResult<()> {
        let lname = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&lname) {
            if if_not_exists {
                return Ok(());
            }
            return Err(SqlError::Catalog(format!("table {name:?} already exists")));
        }
        tables.insert(lname.clone(), Arc::new(RwLock::new(Table::new(lname, columns))));
        Ok(())
    }

    pub fn drop_table(&self, name: &str, if_exists: bool) -> SqlResult<()> {
        let lname = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.remove(&lname).is_none() && !if_exists {
            return Err(SqlError::Catalog(format!("table {name:?} does not exist")));
        }
        Ok(())
    }

    pub fn get(&self, name: &str) -> SqlResult<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Catalog(format!("table {name:?} does not exist")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl Catalog for DbCatalog {
    fn table_schema(&self, name: &str) -> Option<Vec<(String, LogicalType)>> {
        let t = self.tables.read().get(&name.to_ascii_lowercase())?.clone();
        let t = t.read();
        Some(
            t.column_names
                .iter()
                .cloned()
                .zip(t.columns.iter().map(|c| c.ty.clone()))
                .collect(),
        )
    }
}
