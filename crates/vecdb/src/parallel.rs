//! Morsel-driven parallel execution.
//!
//! The engine splits each stage's input — the list of 2048-row
//! [`crate::column::DataChunk`]s — into *morsels* (one chunk, or one
//! contiguous chunk range for order-sensitive aggregation) and dispatches
//! them to a [`std::thread::scope`] worker pool built on the in-repo
//! [`mduck_sync::MorselQueue`]. Three invariants make parallel results
//! byte-identical to the serial engine:
//!
//! 1. **Order-preserving reassembly.** Workers claim morsel indexes
//!    dynamically but tag every result with its input index; the
//!    coordinator reassembles outputs in input order.
//! 2. **Exact-only state merging.** Two-phase aggregation is used only
//!    for states that opt into [`mduck_sql::AggState::exact_merge`]
//!    (count, min/max, list, string_agg, extent, sequence builders);
//!    float sums fall back to the hybrid path — parallel expression
//!    evaluation, serial state folding in chunk order — because IEEE 754
//!    addition is not associative.
//! 3. **Shared guard.** The per-statement [`mduck_sql::ExecGuard`] is
//!    atomic state shared by reference with every worker, so row budget,
//!    deadline, and cancellation are charged globally; the first error
//!    stops the queue and the fleet drains.
//!
//! Worker panics are contained by the scope join and surfaced as
//! [`SqlError::Internal`] — never unwrapped.

use std::time::Instant;

use mduck_sql::{SqlError, SqlResult};
use mduck_sync::MorselQueue;

/// Minimum number of morsels before spinning up the pool is worth it.
pub const MIN_PARALLEL_MORSELS: usize = 2;

/// Aggregated actuals of one parallel stage execution, fed into
/// `EXPLAIN ANALYZE` and the metrics registry.
#[derive(Debug, Default, Clone)]
pub struct ParStats {
    /// Workers actually spawned (≤ configured threads).
    pub workers: usize,
    /// Summed per-worker busy time (total CPU time across threads).
    pub busy_ns: u64,
    /// Busy time of the slowest worker (the stage's critical path).
    pub max_worker_ns: u64,
    /// Morsels processed by each worker, in spawn order.
    pub morsels_per_worker: Vec<u64>,
}

impl ParStats {
    pub fn morsels(&self) -> u64 {
        self.morsels_per_worker.iter().sum()
    }
}

struct WorkerOut<T> {
    /// `(morsel index, result)` pairs, in claim order.
    items: Vec<(usize, T)>,
    busy_ns: u64,
    /// First error this worker hit, tagged with its morsel index.
    err: Option<(usize, SqlError)>,
}

/// Map `work` over morsel indexes `0..n` on up to `threads` workers and
/// return the results **in input order** plus the pool's actuals.
///
/// Runs serially (stats `None`) when the pool is not worth it. On error
/// the queue is stopped, the fleet drains, and the error with the lowest
/// morsel index is returned — the same error a serial left-to-right run
/// would have hit first, keeping failure behaviour deterministic.
pub fn morsel_map<T, F>(threads: usize, n: usize, work: F) -> SqlResult<(Vec<T>, Option<ParStats>)>
where
    T: Send,
    F: Fn(usize) -> SqlResult<T> + Sync,
{
    if threads <= 1 || n < MIN_PARALLEL_MORSELS {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(work(i)?);
        }
        return Ok((out, None));
    }

    let workers = threads.min(n);
    let queue = MorselQueue::new(n);
    let queue = &queue;
    let work = &work;
    // Span stacks are thread-local, so a worker thread would otherwise
    // record its span as a root: capture the coordinator's current span
    // and re-parent every worker span under it, keeping `mduck_spans()`
    // trees connected across the pool.
    let parent = mduck_obs::current_span_id();
    let joined: Vec<std::thread::Result<WorkerOut<T>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let _span = mduck_obs::span_with_parent("vecdb.worker", parent);
                    let start = Instant::now();
                    let mut items = Vec::new();
                    let mut err = None;
                    while let Some(i) = queue.claim() {
                        match work(i) {
                            Ok(t) => items.push((i, t)),
                            Err(e) => {
                                err = Some((i, e));
                                queue.stop();
                                break;
                            }
                        }
                    }
                    WorkerOut { items, busy_ns: start.elapsed().as_nanos() as u64, err }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut stats = ParStats { workers, ..ParStats::default() };
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut first_err: Option<(usize, SqlError)> = None;
    let mut panicked = false;
    for res in joined {
        match res {
            Ok(w) => {
                stats.busy_ns += w.busy_ns;
                stats.max_worker_ns = stats.max_worker_ns.max(w.busy_ns);
                stats
                    .morsels_per_worker
                    .push(w.items.len() as u64 + u64::from(w.err.is_some()));
                for (i, t) in w.items {
                    slots[i] = Some(t);
                }
                if let Some((i, e)) = w.err {
                    if first_err.as_ref().map_or(true, |(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
            // A worker panic is a bug by the engine's no-panic contract,
            // but it must degrade to an error, never an unwrap.
            Err(_) => panicked = true,
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    if panicked {
        return Err(SqlError::internal("parallel worker panicked"));
    }
    let out: SqlResult<Vec<T>> = slots
        .into_iter()
        .map(|s| s.ok_or_else(|| SqlError::internal("parallel worker dropped a morsel")))
        .collect();
    let m = mduck_obs::metrics();
    m.parallel_stages.inc(1);
    m.parallel_workers_spawned.inc(workers as u64);
    m.morsels_dispatched.inc(n as u64);
    Ok((out?, Some(stats)))
}

/// Split `0..n` into at most `parts` contiguous, near-equal ranges.
/// Two-phase aggregation partitions chunks this way (rather than claiming
/// single chunks dynamically) so each partial state sees its chunks in
/// serial order and partials merge back in range order.
pub fn contiguous_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_map_preserves_input_order() {
        let (out, stats) = morsel_map(4, 100, |i| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let stats = stats.expect("parallel path");
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.morsels(), 100);
        assert_eq!(stats.morsels_per_worker.len(), 4);
    }

    #[test]
    fn morsel_map_serial_fallbacks() {
        let (out, stats) = morsel_map(1, 10, |i| Ok(i)).unwrap();
        assert_eq!(out.len(), 10);
        assert!(stats.is_none(), "threads=1 must not spawn workers");
        let (out, stats) = morsel_map(8, 1, |i| Ok(i)).unwrap();
        assert_eq!(out, vec![0]);
        assert!(stats.is_none(), "one morsel must not spawn workers");
        let (out, _) = morsel_map::<usize, _>(4, 0, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn morsel_map_reports_lowest_index_error() {
        // Every odd morsel fails; the reported error must be morsel 1's
        // (the first a serial run would hit).
        let err = morsel_map(4, 64, |i| {
            if i % 2 == 1 {
                Err(SqlError::execution(format!("boom at {i}")))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "execution error: boom at 1", "{err}");
    }

    #[test]
    fn morsel_map_contains_worker_panics() {
        let err = morsel_map(2, 8, |i| {
            if i == 3 {
                panic!("worker bug");
            }
            Ok(i)
        })
        .unwrap_err();
        assert!(matches!(err, SqlError::Internal(_)), "{err}");
    }

    #[test]
    fn contiguous_ranges_cover_exactly() {
        for (n, parts) in [(10, 3), (2, 8), (7, 7), (1, 1), (100, 4)] {
            let ranges = contiguous_ranges(n, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous in order");
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..{n}");
        }
        assert!(contiguous_ranges(0, 4).is_empty());
        assert!(contiguous_ranges(4, 0).is_empty());
    }
}
