//! # quackdb — a columnar, vectorized, embeddable analytical SQL engine
//!
//! The DuckDB substrate of the MobilityDuck reproduction: in-process,
//! columnar storage, 2048-row vectorized execution, an extension registry
//! for user-defined types / casts / scalar functions / operators, a
//! pluggable index framework with optimizer scan injection (§4), and
//! DuckDB-style EXPLAIN rendering (Figure 1).
//!
//! ```
//! use quackdb::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE t(a INTEGER, b VARCHAR)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").unwrap();
//! let r = db.execute("SELECT b FROM t WHERE a = 2").unwrap();
//! assert_eq!(r.rows[0][0].to_string(), "two");
//! ```

pub mod catalog;
pub mod column;
pub mod database;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod index;
pub mod parallel;

pub use catalog::{DbCatalog, Table};
pub use column::{Chunks, ColumnData, DataChunk, Payload, VECTOR_SIZE};
pub use database::{Database, QueryResult};
pub use exec::{execute_select, EngineCtx, PhysOp};
pub use index::{IndexType, IndexTypeRegistry, TableIndex};
pub use mduck_sql::{CancelHandle, ExecGuard, ExecLimits};
